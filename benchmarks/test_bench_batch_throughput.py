"""Batch-checking throughput: programs/sec at jobs=1 vs jobs=4.

Two contracts are measured, not assumed:

* verdicts must be identical however the corpus is sharded, and on
  hardware with ≥4 cores the 4-worker run must clear 2x the
  sequential throughput (hardware-gated — a 1-core container cannot
  parallelise anything and must not fail CI for it);
* the single-core rate must beat the committed pre-optimization
  baseline (``benchmark-results/perf_baseline.json``) by the floor
  below, after scaling the baseline by the calibration spin so the
  gate follows the machine rather than the wall clock.  The
  profile-guided kernel PR measured 1.6–1.7x over its baseline on the
  reference container (the issue aimed for 3x; the honest measured
  multiple is recorded in the JSON artifact every run); the gate floor
  sits under that with margin for timer noise.
"""

import json
import os
import time

import pytest

from perf_common import load_baseline, machine_scale

from repro.batch import check_many
from repro.fuzz.gen import generate_program
from repro.logic.prove import Logic

CORPUS_SIZE = 200
CORPUS_SEED = 2016

#: required single-core speedup over the committed baseline (the
#: measured multiple on the reference container was 1.6-1.7x)
REQUIRED_SPEEDUP = 1.35


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("batch-corpus")
    paths = []
    for index in range(CORPUS_SIZE):
        spec = generate_program(CORPUS_SEED, index)
        path = root / f"prog{index:04}.rkt"
        path.write_text(spec.source)
        paths.append(str(path))
    return paths


def _timed(paths, jobs):
    start = time.perf_counter()
    report = check_many(paths, jobs=jobs, logic=Logic() if jobs == 1 else None)
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_bench_batch_throughput(benchmark, corpus_paths, capsys):
    # Warm interpreter/caches, then take the best of three sequential
    # runs — single-core rates on shared machines are noisy and the
    # gate should measure the code, not a scheduler hiccup.
    check_many(corpus_paths[:30], jobs=1, logic=Logic())
    seq_seconds = float("inf")
    for _ in range(3):
        sequential, elapsed = _timed(corpus_paths, jobs=1)
        seq_seconds = min(seq_seconds, elapsed)
    parallel, par_seconds = _timed(corpus_paths, jobs=4)

    # Hard invariant on any hardware: sharding never changes a verdict.
    assert [(v.path, v.ok, v.error) for v in sequential.verdicts] == [
        (v.path, v.ok, v.error) for v in parallel.verdicts
    ]

    seq_rate = len(corpus_paths) / seq_seconds
    par_rate = len(corpus_paths) / par_seconds
    speedup = par_rate / seq_rate
    cores = os.cpu_count() or 1

    baseline = load_baseline()
    scale = machine_scale(baseline)
    scaled_baseline_rate = baseline["batch_jobs1_programs_per_sec"] * scale
    speedup_vs_baseline = seq_rate / scaled_baseline_rate

    results = {
        "corpus_programs": len(corpus_paths),
        "cpu_count": cores,
        "jobs1_seconds": round(seq_seconds, 3),
        "jobs4_seconds": round(par_seconds, 3),
        "jobs1_programs_per_sec": round(seq_rate, 2),
        "jobs4_programs_per_sec": round(par_rate, 2),
        "speedup_jobs4_over_jobs1": round(speedup, 3),
        "baseline_jobs1_programs_per_sec": baseline[
            "batch_jobs1_programs_per_sec"
        ],
        "machine_scale_vs_baseline": round(scale, 3),
        "speedup_vs_baseline": round(speedup_vs_baseline, 3),
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/batch_throughput.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(
            f"batch throughput: jobs=1 {seq_rate:7.1f} prog/s | "
            f"jobs=4 {par_rate:7.1f} prog/s | "
            f"speedup {speedup:4.2f}x on {cores} core(s) | "
            f"{speedup_vs_baseline:4.2f}x vs baseline"
        )

    # Time one representative unit for the pytest-benchmark artifact.
    sample = corpus_paths[:20]
    benchmark(lambda: check_many(sample, jobs=1, logic=Logic()))

    assert speedup_vs_baseline >= REQUIRED_SPEEDUP, (
        f"single-core throughput regressed: {seq_rate:.1f} prog/s is "
        f"{speedup_vs_baseline:.2f}x the scaled baseline "
        f"({scaled_baseline_rate:.1f} prog/s), need ≥{REQUIRED_SPEEDUP}x "
        f"({json.dumps(results)})"
    )

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected ≥2x at jobs=4 on {cores} cores, got {speedup:.2f}x "
            f"({json.dumps(results)})"
        )


def test_bench_cache_warm_rerun(corpus_paths, tmp_path_factory, capsys):
    """Persistent-cache effect: a warm re-run must beat the cold run."""
    cache_dir = str(tmp_path_factory.mktemp("proof-cache"))
    _, cold_seconds = _timed_with_cache(corpus_paths, cache_dir)
    warm_report, warm_seconds = _timed_with_cache(corpus_paths, cache_dir)
    assert all(v.from_cache for v in warm_report.verdicts)
    with capsys.disabled():
        print(
            f"\npersistent cache: cold {cold_seconds:6.2f}s → "
            f"warm {warm_seconds:6.2f}s "
            f"({cold_seconds / max(warm_seconds, 1e-9):5.1f}x)"
        )
    assert warm_seconds < cold_seconds


def _timed_with_cache(paths, cache_dir):
    start = time.perf_counter()
    report = check_many(paths, jobs=1, logic=Logic(), cache_dir=cache_dir)
    return report, time.perf_counter() - start
