"""Batch-checking throughput: programs/sec at jobs=1 vs jobs=4.

The parallel pipeline's contract is measured, not assumed: verdicts
must be identical however the corpus is sharded, and on hardware with
≥4 cores the 4-worker run must clear 2x the sequential throughput.
On smaller machines the ratio is still measured and recorded in the
JSON artifact (``benchmark-results/batch_throughput.json``), but the
speedup assertion is hardware-gated — a 1-core container cannot
parallelise anything and must not fail CI for it.
"""

import json
import os
import time

import pytest

from repro.batch import check_many
from repro.fuzz.gen import generate_program
from repro.logic.prove import Logic

CORPUS_SIZE = 200
CORPUS_SEED = 2016


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("batch-corpus")
    paths = []
    for index in range(CORPUS_SIZE):
        spec = generate_program(CORPUS_SEED, index)
        path = root / f"prog{index:04}.rkt"
        path.write_text(spec.source)
        paths.append(str(path))
    return paths


def _timed(paths, jobs):
    start = time.perf_counter()
    report = check_many(paths, jobs=jobs, logic=Logic() if jobs == 1 else None)
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_bench_batch_throughput(benchmark, corpus_paths, capsys):
    sequential, seq_seconds = _timed(corpus_paths, jobs=1)
    parallel, par_seconds = _timed(corpus_paths, jobs=4)

    # Hard invariant on any hardware: sharding never changes a verdict.
    assert [(v.path, v.ok, v.error) for v in sequential.verdicts] == [
        (v.path, v.ok, v.error) for v in parallel.verdicts
    ]

    seq_rate = len(corpus_paths) / seq_seconds
    par_rate = len(corpus_paths) / par_seconds
    speedup = par_rate / seq_rate
    cores = os.cpu_count() or 1

    results = {
        "corpus_programs": len(corpus_paths),
        "cpu_count": cores,
        "jobs1_seconds": round(seq_seconds, 3),
        "jobs4_seconds": round(par_seconds, 3),
        "jobs1_programs_per_sec": round(seq_rate, 2),
        "jobs4_programs_per_sec": round(par_rate, 2),
        "speedup_jobs4_over_jobs1": round(speedup, 3),
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/batch_throughput.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(
            f"batch throughput: jobs=1 {seq_rate:7.1f} prog/s | "
            f"jobs=4 {par_rate:7.1f} prog/s | "
            f"speedup {speedup:4.2f}x on {cores} core(s)"
        )

    # Time one representative unit for the pytest-benchmark artifact.
    sample = corpus_paths[:20]
    benchmark(lambda: check_many(sample, jobs=1, logic=Logic()))

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected ≥2x at jobs=4 on {cores} cores, got {speedup:.2f}x "
            f"({json.dumps(results)})"
        )


def test_bench_cache_warm_rerun(corpus_paths, tmp_path_factory, capsys):
    """Persistent-cache effect: a warm re-run must beat the cold run."""
    cache_dir = str(tmp_path_factory.mktemp("proof-cache"))
    _, cold_seconds = _timed_with_cache(corpus_paths, cache_dir)
    warm_report, warm_seconds = _timed_with_cache(corpus_paths, cache_dir)
    assert all(v.from_cache for v in warm_report.verdicts)
    with capsys.disabled():
        print(
            f"\npersistent cache: cold {cold_seconds:6.2f}s → "
            f"warm {warm_seconds:6.2f}s "
            f"({cold_seconds / max(warm_seconds, 1e-9):5.1f}x)"
        )
    assert warm_seconds < cold_seconds


def _timed_with_cache(paths, cache_dir):
    start = time.perf_counter()
    report = check_many(paths, jobs=1, logic=Logic(), cache_dir=cache_dir)
    return report, time.perf_counter() - start
