"""Served vs cold check latency: the daemon's reason to exist.

Every one-shot ``repro check`` invocation pays interpreter start-up,
prim-environment construction and proof-engine cold-start before it
checks a single line.  The persistent service pays all of that once.
This benchmark measures the difference end to end, per module, over
the same generated corpus family the batch benchmarks use:

* **cold** — one ``python -m repro check <module>`` subprocess per
  module (exactly what a naive editor integration would shell out to);
* **warm** — one ``check`` request per module against a resident
  ``repro serve`` daemon over a unix socket, after a warm-up pass.

p50/p95/mean land in ``benchmark-results/server_latency.json`` and the
§-style table (``repro.study.report.server_latency_table``) is printed.
The assertion is conservative — warm median strictly below cold median
— because interpreter start-up alone dwarfs a warm round-trip on any
hardware.
"""

import json
import os
import statistics
import subprocess
import sys
import time

import pytest

import repro
from repro.fuzz.gen import generate_program
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig
from repro.study.report import server_latency_table

CORPUS_SIZE = 8
CORPUS_SEED = 2016


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("server-latency-corpus")
    paths = []
    for index in range(CORPUS_SIZE):
        path = root / f"prog{index:03}.rkt"
        path.write_text(generate_program(CORPUS_SEED, index).source)
        paths.append(str(path))
    return paths


def _percentiles(samples_ms):
    ordered = sorted(samples_ms)
    rank = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {
        "p50_ms": round(statistics.median(ordered), 2),
        "p95_ms": round(rank(0.95), 2),
        "mean_ms": round(statistics.fmean(ordered), 2),
        "samples": len(ordered),
    }


def _cold_samples(paths):
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    samples = []
    for path in paths:
        start = time.perf_counter()
        done = subprocess.run(
            [sys.executable, "-m", "repro", "check", path],
            capture_output=True,
            env=env,
        )
        samples.append((time.perf_counter() - start) * 1000.0)
        assert done.returncode == 0, done.stderr.decode()
    return samples


def _warm_samples(paths, tmp_path):
    daemon = CheckingServer(
        ServerConfig(socket_path=str(tmp_path / "bench.sock")), logic=Logic()
    )
    daemon.start()
    try:
        with Client(socket_path=daemon.config.socket_path) as client:
            warm_verdicts = [
                client.try_check([path])["verdicts"][0] for path in paths
            ]
            samples = []
            served_verdicts = []
            for path in paths:
                start = time.perf_counter()
                response = client.try_check([path])
                samples.append((time.perf_counter() - start) * 1000.0)
                served_verdicts.append(response["verdicts"][0])
    finally:
        daemon.stop()
    # warm-up and timed passes must agree (re-checking is idempotent)
    assert [(v["path"], v["ok"]) for v in warm_verdicts] == [
        (v["path"], v["ok"]) for v in served_verdicts
    ]
    return samples


def test_bench_server_latency(benchmark, corpus_paths, tmp_path, capsys):
    cold = _percentiles(_cold_samples(corpus_paths))
    warm = _percentiles(_warm_samples(corpus_paths, tmp_path))

    speedup = cold["p50_ms"] / warm["p50_ms"] if warm["p50_ms"] else float("inf")
    results = {
        "corpus_programs": len(corpus_paths),
        "corpus_seed": CORPUS_SEED,
        "cpu_count": os.cpu_count() or 1,
        "cold": cold,
        "warm": warm,
        "speedup_warm_over_cold_p50": round(speedup, 2),
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/server_latency.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(server_latency_table(results))

    # The service must beat cold-process invocation on the same corpus.
    assert warm["p50_ms"] < cold["p50_ms"], (
        f"warm daemon p50 {warm['p50_ms']}ms did not beat "
        f"cold process p50 {cold['p50_ms']}ms"
    )

    # One representative warm round-trip for the pytest-benchmark artifact.
    daemon = CheckingServer(
        ServerConfig(socket_path=str(tmp_path / "unit.sock")), logic=Logic()
    )
    daemon.start()
    try:
        client = Client(socket_path=daemon.config.socket_path)
        client.try_check([corpus_paths[0]])  # warm the engine
        benchmark(lambda: client.try_check([corpus_paths[0]]))
        client.close()
    finally:
        daemon.stop()
