"""Saturation throughput of the multi-lane daemon: clients × lanes.

The lane refactor's performance claim is deliberately modest — on
CPython, engine lanes share the GIL, so N lanes do not multiply
checking throughput.  What they buy under concurrent load is
*isolation* (one slow session cannot head-of-line-block every other
connection behind a single queue) and *fairness* (each lane drains its
own bounded queue).  This benchmark measures the whole curve so the
claim stays honest:

* **clients** ∈ {1, 2, 4, 8} concurrent connections, each pinned to a
  lane by its own affinity key and issuing a fixed stream of
  ``check_text`` requests (unique module names, so every request is a
  genuine session-store miss served by the warm engine);
* **lanes** ∈ {1, N}: the same workload against a single-lane and a
  multi-lane daemon.

The full matrix lands in ``benchmark-results/server_saturation.json``
(rendered by ``repro.study.report.server_saturation_table``) and CI
uploads it next to the latency artifact.  The gate is
hardware-tolerant: at every client count, multi-lane throughput must
stay within a loose noise floor of single-lane (≥ ``MIN_RATIO``×),
and the *median* ratio across the client curve must clear the tighter
``MIN_MEDIAN_RATIO`` — lanes must never cost throughput — and nothing
more is asserted on a one-core box.
"""

import json
import os
import statistics
import threading
import time

import pytest

from repro.fuzz.gen import generate_program
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig
from repro.study.report import server_saturation_table

CORPUS_SIZE = 6
CORPUS_SEED = 2016
CLIENT_COUNTS = (1, 2, 4, 8)
MULTI_LANES = 4
REQUESTS_PER_CLIENT = 24
#: each (clients, lanes) point is measured this many times; the best
#: run is reported (standard practice for throughput under scheduler
#: noise — the best run is the one least perturbed by the machine)
REPEATS = 2
#: multi-lane may not lose to single-lane beyond noise.  One-core CI
#: boxes jitter hard (single-lane itself varies ±40% between runs), so
#: the per-point floor is deliberately loose and the tighter check is
#: on the median ratio across the whole client curve.
MIN_RATIO = 0.4
MIN_MEDIAN_RATIO = 0.6


@pytest.fixture(scope="module")
def corpus():
    return [generate_program(CORPUS_SEED, index).source for index in range(CORPUS_SIZE)]


def _run_config(tmp_path, tag, lanes, clients, corpus):
    """Throughput of ``clients`` concurrent streams against ``lanes``."""
    daemon = CheckingServer(
        ServerConfig(
            socket_path=str(tmp_path / f"{tag}.sock"),
            lanes=lanes,
            max_queue_depth=256,
        ),
        logic=Logic(),
    )
    daemon.start()
    errors = []
    barrier = threading.Barrier(clients + 1)

    def stream(worker):
        try:
            with Client(
                socket_path=daemon.config.socket_path,
                affinity=f"bench-{worker}",
                retries=4,
                jitter_seed=worker,
            ) as client:
                # warm this connection's lane over the whole corpus, so
                # the timed region measures steady-state service
                # throughput, not each replica's one-time cache warming
                for index, source in enumerate(corpus):
                    client.check_text(f"warm-{worker}-{index}", source)
                barrier.wait(timeout=120.0)
                for step in range(REQUESTS_PER_CLIENT):
                    source = corpus[(worker + step) % len(corpus)]
                    response = client.check_text(f"w{worker}-r{step}", source)
                    if "ok" not in response:
                        errors.append(f"worker {worker}: malformed response")
        except Exception as exc:  # noqa: BLE001 — surfaced in the assert
            errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=stream, args=(w,), daemon=True)
        for w in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        barrier.wait(timeout=120.0)  # all warmed: start the clock together
        started = time.perf_counter()
        for thread in threads:
            thread.join(timeout=600.0)
        elapsed = time.perf_counter() - started
    finally:
        daemon.stop()
    assert not errors, errors[:3]
    total = clients * REQUESTS_PER_CLIENT
    return {
        "clients": clients,
        "lanes": lanes,
        "requests": total,
        "elapsed_seconds": round(elapsed, 3),
        "requests_per_second": round(total / elapsed, 2) if elapsed else 0.0,
    }


def test_bench_server_saturation(benchmark, corpus, tmp_path, capsys):
    matrix = []
    for clients in CLIENT_COUNTS:
        for lanes in (1, MULTI_LANES):
            runs = [
                _run_config(
                    tmp_path,
                    f"sat-l{lanes}-c{clients}-r{attempt}",
                    lanes,
                    clients,
                    corpus,
                )
                for attempt in range(REPEATS)
            ]
            best = max(runs, key=lambda row: row["requests_per_second"])
            best["runs"] = len(runs)
            matrix.append(best)

    results = {
        "corpus_programs": len(corpus),
        "corpus_seed": CORPUS_SEED,
        "cpu_count": os.cpu_count() or 1,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "multi_lanes": MULTI_LANES,
        "min_ratio_gate": MIN_RATIO,
        "min_median_ratio_gate": MIN_MEDIAN_RATIO,
        "matrix": matrix,
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/server_saturation.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(server_saturation_table(results))

    # the hardware-tolerant gate: lanes must never cost throughput
    # beyond noise — a loose floor at every point on the client curve,
    # and a tighter bound on the median ratio across the whole curve
    # (robust against one scheduler hiccup hitting one configuration)
    by_key = {(row["clients"], row["lanes"]): row for row in matrix}
    ratios = []
    for clients in CLIENT_COUNTS:
        single = by_key[(clients, 1)]["requests_per_second"]
        multi = by_key[(clients, MULTI_LANES)]["requests_per_second"]
        ratios.append(multi / single if single else 1.0)
        assert multi >= MIN_RATIO * single, (
            f"{clients} clients: {MULTI_LANES}-lane throughput "
            f"{multi} req/s fell below {MIN_RATIO}x single-lane {single} req/s"
        )
    median_ratio = statistics.median(ratios)
    assert median_ratio >= MIN_MEDIAN_RATIO, (
        f"median multi/single throughput ratio {median_ratio:.2f} across "
        f"{list(CLIENT_COUNTS)} clients fell below {MIN_MEDIAN_RATIO}"
    )

    # one representative warm multi-lane round-trip for pytest-benchmark
    daemon = CheckingServer(
        ServerConfig(socket_path=str(tmp_path / "unit.sock"), lanes=MULTI_LANES),
        logic=Logic(),
    )
    daemon.start()
    try:
        client = Client(socket_path=daemon.config.socket_path, affinity="unit")
        client.check_text("unit-warm", corpus[0])
        counter = iter(range(1 << 30))
        benchmark(
            lambda: client.check_text(f"unit-{next(counter)}", corpus[0])
        )
        client.close()
    finally:
        daemon.stop()
