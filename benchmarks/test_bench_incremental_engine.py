"""Supporting: the incremental proof engine pays for itself.

Two properties the PR 1 refactor claims, measured:

* **warm over cold** — re-checking a module against a warmed engine is
  markedly faster than the first check (content-addressed proof caches
  + theory sessions), with a non-trivial hit rate;
* **incremental theory contexts** — answering a goal stream through a
  persistent context beats re-encoding the assumption set per goal
  (the old `registry.entails` discipline).
"""

import random

from repro.checker.check import Checker
from repro.corpus.patterns import TIER_POOLS, instantiate
from repro.logic.prove import Logic
from repro.syntax.parser import parse_program
from repro.theories.linarith import LinearArithmeticTheory
from repro.tr.objects import Var, obj_int
from repro.tr.props import lin_le


def _module(n_programs: int) -> str:
    rng = random.Random(7)
    pool = TIER_POOLS["auto"]
    pieces = []
    for index in range(n_programs):
        pattern = pool[index % len(pool)]
        pieces.append(instantiate(pattern, rng, f"_inc_{index}").base)
    return "\n".join(pieces)


def test_bench_warm_recheck(benchmark, capsys):
    program = parse_program(_module(20))
    logic = Logic()  # private engine: hits measured from zero
    Checker(logic=logic).check_program(program)  # cold pass warms it

    def recheck():
        Checker(logic=logic).check_program(program)

    benchmark(recheck)

    stats = logic.stats
    with capsys.disabled():
        print()
        print(
            f"warm re-check: {stats.prove_hits}/{stats.prove_calls} proof "
            f"queries cached ({stats.prove_hit_rate:.0f}%), "
            f"{stats.session_hits} sessions reused"
        )
    assert stats.prove_hits > 0, "warm re-check must hit the proof cache"
    assert stats.session_hits > 0, "warm re-check must reuse theory sessions"


def test_bench_incremental_theory_context(benchmark):
    theory = LinearArithmeticTheory()
    x = Var("x")
    facts = [lin_le(obj_int(0), x)] + [
        lin_le(Var(f"v{i}"), Var(f"v{i+1}")) for i in range(12)
    ]
    goals = [lin_le(obj_int(0), x) for _ in range(50)] + [
        lin_le(Var("v0"), Var(f"v{i}")) for i in range(1, 13)
    ]

    def incremental():
        context = theory.context()
        for fact in facts:
            context.assert_prop(fact)
        return sum(1 for goal in goals if context.entails(goal))

    proved = benchmark(incremental)
    # the batch path must agree, goal for goal
    batch = sum(1 for goal in goals if theory.entails(facts, goal))
    assert proved == batch > 0
