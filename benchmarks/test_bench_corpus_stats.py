"""§5 corpus statistics: LoC and unique vector operations per library.

Paper: math 22,503 LoC / 301 ops; plot 14,987 / 655; pict3d 19,345 /
129; total > 56,000 LoC and 1085 unique vector operations.
"""

from repro.corpus.generator import build_all_libraries
from repro.corpus.profiles import PAPER_CORPUS
from repro.study.report import corpus_table


def test_bench_corpus_stats(benchmark, full_study, capsys):
    libraries = benchmark.pedantic(build_all_libraries, args=(1.0,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(corpus_table(full_study))

    for name, (paper_loc, paper_ops) in PAPER_CORPUS.items():
        lib = libraries[name]
        assert lib.ops == paper_ops, f"{name}: {lib.ops} ops vs paper {paper_ops}"
        assert abs(lib.loc - paper_loc) <= 20, (
            f"{name}: {lib.loc} LoC vs paper {paper_loc}"
        )

    total_ops = sum(lib.ops for lib in libraries.values())
    total_loc = sum(lib.loc for lib in libraries.values())
    assert total_ops == 1085
    assert total_loc > 56_000
