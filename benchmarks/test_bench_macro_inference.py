"""§4.4: inference through expanded iteration macros.

The Nat heuristic verifies forward loops and fails on reverse
iteration; disabling it loses the forward case too.  This bench
regenerates that 2×2 outcome table.
"""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError

FORWARD = """
(: vsum : (Vecof Int) -> Int)
(define (vsum A)
  (for/sum ([i (in-range (len A))])
    (safe-vec-ref A i)))
"""

REVERSE = """
(: rsum : (Vecof Int) -> Int)
(define (rsum A)
  (for/sum ([i (in-range (- (len A) 1) -1 -1)])
    (safe-vec-ref A i)))
"""


def _verifies(source: str, heuristic: bool) -> bool:
    try:
        check_program_text(source, nat_heuristic=heuristic)
        return True
    except CheckError:
        return False


def test_bench_macro_inference(benchmark, capsys):
    def outcome_table():
        return {
            ("forward", True): _verifies(FORWARD, True),
            ("forward", False): _verifies(FORWARD, False),
            ("reverse", True): _verifies(REVERSE, True),
            ("reverse", False): _verifies(REVERSE, False),
        }

    table = benchmark.pedantic(outcome_table, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("§4.4 — Nat heuristic on expanded for/sum loops")
        print(f"  {'loop':<10}{'heuristic on':>14}{'heuristic off':>15}")
        for loop in ("forward", "reverse"):
            on = "verified" if table[(loop, True)] else "rejected"
            off = "verified" if table[(loop, False)] else "rejected"
            print(f"  {loop:<10}{on:>14}{off:>15}")
        print("  (paper: heuristic verifies forward, fails on reverse)")

    assert table[("forward", True)] is True
    assert table[("reverse", True)] is False  # the paper's limitation
    assert table[("forward", False)] is False  # heuristic is load-bearing
    assert table[("reverse", False)] is False
