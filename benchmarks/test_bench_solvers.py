"""Supporting micro-benchmarks: solver throughput on checker-shaped
queries (the paper's solvers are Fourier-Motzkin and Z3's bitvectors;
ours are Fourier-Motzkin and bit-blasting + DPLL)."""

import random

from repro.solvers.bitblast import BitBlaster
from repro.solvers.linear import Constraint, fm_entails, fm_satisfiable
from repro.solvers.sat import solve
from repro.theories.bitvec import BitvectorTheory
from repro.tr.objects import BVExpr, Var, obj_int
from repro.tr.props import BVProp, lin_le


def _index_query(n_vars: int):
    """0 ≤ x0 < x1 < ... < x(n-1) ≤ bound ⊨ x0 < bound — FM's daily work."""
    assumptions = [Constraint.make({"x0": -1}, 0)]
    for i in range(n_vars - 1):
        assumptions.append(Constraint.make({f"x{i}": 1, f"x{i+1}": -1}, 1))
    assumptions.append(Constraint.make({f"x{n_vars-1}": 1, "bound": -1}, 0))
    goal = Constraint.make({"x0": 1, "bound": -1}, 1)
    return assumptions, goal


def test_bench_fm_entailment(benchmark):
    assumptions, goal = _index_query(8)
    result = benchmark(fm_entails, assumptions, goal)
    assert result is True


def test_bench_fm_satisfiable_random(benchmark):
    rng = random.Random(42)
    constraints = [
        Constraint.make(
            {f"v{rng.randrange(6)}": rng.choice([-2, -1, 1, 2]) for _ in range(3)},
            rng.randrange(-10, 10),
        )
        for _ in range(20)
    ]

    verdict = benchmark(fm_satisfiable, constraints)
    assert verdict in ("sat", "unsat", "unknown")


def test_bench_sat_pigeonhole(benchmark):
    holes = 5
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    cnf = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.append([-var(p1, h), -var(p2, h)])

    result = benchmark.pedantic(solve, args=(cnf,), rounds=1, iterations=1)
    assert not result.sat


def test_bench_bitblast_xtime_query(benchmark):
    """The exact solver query behind xtime's Byte obligation."""
    theory = BitvectorTheory()
    num = Var("num")
    assumptions = [lin_le(obj_int(0), num), lin_le(num, obj_int(255))]
    masked = BVExpr("and", (BVExpr("mul", (2, num), 8), 0xFF), 8)
    goal = lin_le(BVExpr("xor", (masked, 0x1B), 8), obj_int(255))

    result = benchmark.pedantic(
        theory.entails, args=(assumptions, goal), rounds=1, iterations=1
    )
    assert result is True
