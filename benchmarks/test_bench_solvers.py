"""Supporting micro-benchmarks: solver throughput on checker-shaped
queries (the paper's solvers are Fourier-Motzkin and Z3's bitvectors;
ours are dual simplex / CDCL with Fourier-Motzkin / DPLL as the
``legacy`` reference backends).

``test_bench_solver_cores_artifact`` is the fast-vs-legacy shoot-out:
it times both backends on the same checker-shaped workloads, writes
``benchmark-results/solver_cores.json``, and gates the ratios (the
stress shapes are where the incremental cores earn their keep; the
tier-1 micro shape is where they must at least break even).
"""

import json
import os
import random
import time

from repro.solvers.bitblast import BitBlaster
from repro.solvers.linear import (
    Constraint,
    IncrementalConstraintSet,
    fm_entails,
    fm_satisfiable,
)
from repro.solvers.sat import IncrementalSatSolver, solve
from repro.theories.bitvec import BitvectorTheory
from repro.tr.objects import BVExpr, Var, obj_int
from repro.tr.props import BVProp, lin_le


def _index_query(n_vars: int):
    """0 ≤ x0 < x1 < ... < x(n-1) ≤ bound ⊨ x0 < bound — FM's daily work."""
    assumptions = [Constraint.make({"x0": -1}, 0)]
    for i in range(n_vars - 1):
        assumptions.append(Constraint.make({f"x{i}": 1, f"x{i+1}": -1}, 1))
    assumptions.append(Constraint.make({f"x{n_vars-1}": 1, "bound": -1}, 0))
    goal = Constraint.make({"x0": 1, "bound": -1}, 1)
    return assumptions, goal


def test_bench_fm_entailment(benchmark):
    assumptions, goal = _index_query(8)
    result = benchmark(fm_entails, assumptions, goal)
    assert result is True


def test_bench_fm_satisfiable_random(benchmark):
    rng = random.Random(42)
    constraints = [
        Constraint.make(
            {f"v{rng.randrange(6)}": rng.choice([-2, -1, 1, 2]) for _ in range(3)},
            rng.randrange(-10, 10),
        )
        for _ in range(20)
    ]

    verdict = benchmark(fm_satisfiable, constraints)
    assert verdict in ("sat", "unsat", "unknown")


def test_bench_sat_pigeonhole(benchmark):
    holes = 5
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    cnf = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.append([-var(p1, h), -var(p2, h)])

    result = benchmark.pedantic(solve, args=(cnf,), rounds=1, iterations=1)
    assert not result.sat


def _checker_stress(seed=3, goals=400):
    """A vector-bounds proof context the checker produces constantly.

    31 assumptions: eight index variables with zero lower bounds, four
    length variables boxed above and below, a difference chain over the
    indices, and ``index ≤ length - 1`` links.  The goal stream cycles
    interval-dischargeable, relational, loose-difference and trivial
    lower-bound obligations — every goal distinct so facade memoisation
    cannot mask engine throughput.
    """
    rng = random.Random(seed)
    idx = [f"i{k}" for k in range(8)]
    lens = [f"n{k}" for k in range(4)]
    assumptions = [Constraint.make({v: -1}, 0) for v in idx]
    for k, v in enumerate(lens):
        assumptions.append(Constraint.make({v: 1}, -(16 + 8 * k)))
        assumptions.append(Constraint.make({v: -1}, 4 + k))
    for k in range(len(idx) - 1):
        assumptions.append(
            Constraint.make({idx[k]: 1, idx[k + 1]: -1}, -rng.randint(0, 2))
        )
    while len(assumptions) < 31:
        assumptions.append(
            Constraint.make({rng.choice(idx): 1, rng.choice(lens): -1}, 1)
        )
    stream = []
    for k in range(goals):
        mode = k % 4
        if mode == 0:
            # length cap — dischargeable from the asserted interval
            stream.append(Constraint.make({rng.choice(lens): 1}, -(41 + k)))
        elif mode == 1:
            # 3-atom capacity sum — interval arithmetic over the box
            a, b = rng.sample(lens, 2)
            stream.append(
                Constraint.make({a: 1, b: 1, rng.choice(idx): -1}, -(90 + k))
            )
        elif mode == 2:
            # loose length difference — still bounds-dischargeable
            a, b = rng.sample(lens, 2)
            stream.append(Constraint.make({a: 1, b: -1}, -(30 + k)))
        else:
            # index-vs-length relational: the genuine pivoting path
            stream.append(
                Constraint.make(
                    {rng.choice(idx): 1, rng.choice(lens): -1}, -(1 + k)
                )
            )
    return assumptions, stream


def _random_3sat(seed=42, n_vars=60, n_clauses=300):
    rng = random.Random(seed)
    return [
        [v if rng.random() < 0.5 else -v
         for v in rng.sample(range(1, n_vars + 1), 3)]
        for _ in range(n_clauses)
    ]


def _time_linear_stream(backend, assumptions, stream):
    ics = IncrementalConstraintSet(backend=backend)
    for con in assumptions:
        ics.add(con)
    ics.satisfiable()  # pay assert/first-check cost before the clock
    start = time.perf_counter()
    proved = sum(1 for goal in stream if ics.entails(goal))
    elapsed = time.perf_counter() - start
    return proved, elapsed


def _time_sat(backend, cnf, repeats=3):
    best, verdict = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solve(cnf, backend=backend)
        best = min(best, time.perf_counter() - start)
        verdict = result.sat
    return verdict, best


def _time_micro(backend, repeats=200):
    assumptions, goal = _index_query(8)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ics = IncrementalConstraintSet(backend=backend)
        for con in assumptions:
            ics.add(con)
        assert ics.entails(goal) is True
        best = min(best, time.perf_counter() - start)
    return best


def _time_warm(backend, rounds=50):
    """Warm incremental reuse: a pushed frame re-checking a fixed goal
    set — the daemon-lane pattern where memoisation must stay intact."""
    idx = [f"i{k}" for k in range(8)]
    assumptions = [Constraint.make({v: -1}, 0) for v in idx]
    assumptions.append(Constraint.make({"n0": 1}, -16))
    assumptions.append(Constraint.make({"n0": -1}, 4))
    # every index linked below its length: i ≤ n0 - 1 ≤ 15 < 50 + k
    assumptions.extend(Constraint.make({v: 1, "n0": -1}, 1) for v in idx)
    goals = [Constraint.make({f"i{k % 8}": 1}, -(50 + k)) for k in range(20)]
    ics = IncrementalConstraintSet(backend=backend)
    for con in assumptions:
        ics.add(con)
    ics.push()
    ics.add(Constraint.make({"i0": -1, "n0": 1}, -64))
    for goal in goals:
        ics.entails(goal)  # populate the memo
    start = time.perf_counter()
    for _ in range(rounds):
        for goal in goals:
            assert ics.entails(goal) is True
    elapsed = time.perf_counter() - start
    ics.pop()
    return elapsed / (rounds * len(goals))


def test_bench_solver_cores_artifact(capsys):
    assumptions, stream = _checker_stress()

    proved_fast, fast_s = _time_linear_stream("fast", assumptions, stream)
    proved_legacy, legacy_s = _time_linear_stream("legacy", assumptions, stream)
    # the fast core proves a superset of FM (integer reasoning), so
    # equality is asserted per-mode via the ratio workload being fixed
    assert proved_fast >= proved_legacy
    linear_ratio = legacy_s / fast_s

    cnf = _random_3sat()
    sat_fast, sat_fast_s = _time_sat("fast", cnf)
    sat_legacy, sat_legacy_s = _time_sat("legacy", cnf)
    assert sat_fast == sat_legacy
    sat_ratio = sat_legacy_s / sat_fast_s

    micro_fast = _time_micro("fast")
    micro_legacy = _time_micro("legacy")

    warm_fast = _time_warm("fast")
    warm_legacy = _time_warm("legacy")

    results = {
        "cpu_count": os.cpu_count() or 1,
        "linear_stress": {
            "assumptions": len(assumptions),
            "goals": len(stream),
            "proved_fast": proved_fast,
            "proved_legacy": proved_legacy,
            "fast_us_per_goal": round(fast_s / len(stream) * 1e6, 2),
            "legacy_us_per_goal": round(legacy_s / len(stream) * 1e6, 2),
            "speedup_fast_over_legacy": round(linear_ratio, 2),
        },
        "sat_300_clauses": {
            "clauses": len(cnf),
            "verdict": "sat" if sat_fast else "unsat",
            "fast_ms": round(sat_fast_s * 1e3, 3),
            "legacy_ms": round(sat_legacy_s * 1e3, 3),
            "speedup_fast_over_legacy": round(sat_ratio, 2),
        },
        "micro_index_query": {
            "fast_us": round(micro_fast * 1e6, 2),
            "legacy_us": round(micro_legacy * 1e6, 2),
        },
        "warm_incremental": {
            "fast_us_per_goal": round(warm_fast * 1e6, 3),
            "legacy_us_per_goal": round(warm_legacy * 1e6, 3),
        },
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/solver_cores.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(
            f"solver cores: linear stress {linear_ratio:5.1f}x | "
            f"sat-300 {sat_ratio:4.2f}x | "
            f"micro fast {micro_fast * 1e6:6.1f}us vs "
            f"legacy {micro_legacy * 1e6:6.1f}us | "
            f"warm {warm_fast * 1e6:5.2f}us/goal"
        )

    # Hardware-tolerant gates: the stress ratios are backend-vs-backend
    # on the same machine, so they survive slow containers; the micro
    # gate allows timer noise but not a regression.
    assert linear_ratio >= 5.0, json.dumps(results)
    assert sat_ratio >= 2.0, json.dumps(results)
    assert micro_fast <= micro_legacy * 1.25, json.dumps(results)
    assert warm_fast <= warm_legacy * 2.0, json.dumps(results)


def test_bench_incremental_sat_reuse(benchmark):
    """Warm assumption-based reuse on the SAT side: repeated
    check_sat under push/pop must stay cheap (learned clauses and
    watches survive the frame)."""
    cnf = _random_3sat(seed=7, n_vars=40, n_clauses=160)
    inc = IncrementalSatSolver(backend="fast")
    inc.add_clauses(cnf)
    assert inc.check_sat() in (True, False)

    def reuse():
        inc.push()
        inc.add_clause([1, 2, 3])
        verdict = inc.check_sat()
        inc.pop()
        return verdict

    benchmark(reuse)


def test_bench_bitblast_xtime_query(benchmark):
    """The exact solver query behind xtime's Byte obligation."""
    theory = BitvectorTheory()
    num = Var("num")
    assumptions = [lin_le(obj_int(0), num), lin_le(num, obj_int(255))]
    masked = BVExpr("and", (BVExpr("mul", (2, num), 8), 0xFF), 8)
    goal = lin_le(BVExpr("xor", (masked, 0x1B), 8), obj_int(255))

    result = benchmark.pedantic(
        theory.entails, args=(assumptions, goal), rounds=1, iterations=1
    )
    assert result is True
