"""Supporting: type-checking time scales with module size.

Section 4.1 motivates the algorithmic engineering ("efficient,
algorithmic subtyping") with type-checking time on real programs.
This bench checks concatenated modules of growing size and prints the
scaling series, asserting growth stays near-linear (no environment
blow-up from the hybrid representation).
"""

import random
import time

from repro.checker.check import Checker
from repro.corpus.patterns import TIER_POOLS, instantiate
from repro.syntax.parser import parse_program


def _module_of(n_programs: int) -> str:
    rng = random.Random(99)
    pool = TIER_POOLS["auto"]
    pieces = []
    for index in range(n_programs):
        pattern = pool[index % len(pool)]
        pieces.append(instantiate(pattern, rng, f"_sc_{index}").base)
    return "\n".join(pieces)


def _check_time(source: str) -> float:
    program = parse_program(source)
    start = time.perf_counter()
    Checker().check_program(program)
    return time.perf_counter() - start


def test_bench_checker_scaling(benchmark, capsys):
    sizes = (5, 10, 20, 40)
    sources = {n: _module_of(n) for n in sizes}

    # the benchmark measures the largest module
    benchmark.pedantic(
        _check_time, args=(sources[sizes[-1]],), rounds=1, iterations=1
    )

    timings = {n: _check_time(src) for n, src in sources.items()}
    with capsys.disabled():
        print()
        print("Checker scaling (auto-tier modules)")
        print(f"  {'definitions':>12}{'seconds':>10}{'ms/def':>9}")
        for n, seconds in timings.items():
            print(f"  {n:>12}{seconds:>10.3f}{1000 * seconds / n:>9.1f}")

    # near-linear: 8x the programs should cost well under 40x the time
    ratio = timings[sizes[-1]] / max(timings[sizes[0]], 1e-9)
    assert ratio < 40, f"superlinear checking: {ratio:.1f}x for 8x programs"
