"""§5 prelude: "we first enriched Typed Racket's base type environment,
modifying the type of 36 functions ... 7 vector operations, 16
arithmetic operations, 12 arithmetic fixnum operations ... and the
typing of Racket's equal?"."""

from repro.checker.prims import PRIMS, enriched_counts, prim_type


def test_bench_prim_env(benchmark, capsys):
    counts = benchmark(enriched_counts)

    with capsys.disabled():
        print()
        print("Enriched base-environment functions (measured vs paper)")
        for category, paper in (
            ("vector", 7),
            ("arithmetic", 16),
            ("fixnum", 12),
            ("equal?", 1),
            ("total", 36),
        ):
            print(f"  {category:<12}{counts.get(category, 0):>4}   (paper: {paper})")

    assert counts["vector"] == 7
    assert counts["arithmetic"] == 16
    assert counts["fixnum"] == 12
    assert counts["equal?"] == 1
    assert counts["total"] == 36


def test_bench_prim_env_figure3_shapes(benchmark):
    """Figure 3: predicates carry then/else type propositions."""

    def check_shapes():
        from repro.tr.props import IsType, NotType

        for name in ("int?", "bool?", "pair?"):
            ty = prim_type(name)
            assert isinstance(ty.result.then_prop, IsType)
            assert isinstance(ty.result.else_prop, NotType)
        return True

    assert benchmark(check_shapes)
