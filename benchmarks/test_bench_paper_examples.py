"""The paper's inline example programs: each must check (or fail)
exactly as the paper reports, and checking must stay fast enough for
interactive use."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError

MAX = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
"""

LSB = """
(: least-significant-bit : (U Int (Vecof Int)) -> Int)
(define (least-significant-bit n)
  (if (int? n)
      (if (even? n) 0 1)
      (if (< 0 (len n)) (vec-ref n (- (len n) 1)) 0)))
"""

DOT = """
(: safe-dot-prod : [A : (Vecof Int)]
                   [B : (Vecof Int) #:where (= (len B) (len A))] -> Int)
(define (safe-dot-prod A B)
  (for/sum ([i (in-range (len A))])
    (* (safe-vec-ref A i) (safe-vec-ref B i))))
(: dot-prod : (Vecof Int) (Vecof Int) -> Int)
(define (dot-prod A B)
  (unless (= (len A) (len B))
    (error "invalid vector lengths!"))
  (safe-dot-prod A B))
"""

XTIME = """
(: xtime : Byte -> Byte)
(define (xtime num)
  (let ([n (AND (* 2 num) 255)])
    (cond
      [(= 0 (AND num 128)) n]
      [else (XOR n 27)])))
"""

SWAP = """
(: vec-swap! : (Vecof Int) Int Int -> Void)
(define (vec-swap! vs i j)
  (unless (= i j)
    (cond
      [(and (< -1 i (len vs))
            (< -1 j (len vs)))
       (let ([i-val (safe-vec-ref vs i)])
         (let ([j-val (safe-vec-ref vs j)])
           (safe-vec-set! vs i j-val)
           (safe-vec-set! vs j i-val)))]
      [else (error "bad index(s)!")])))
"""

UNSOUND_DOT = """
(: safe-dot-prod : (Vecof Int) (Vecof Int) -> Int)
(define (safe-dot-prod A B)
  (for/sum ([i (in-range (len A))])
    (* (safe-vec-ref A i) (safe-vec-ref B i))))
"""


@pytest.mark.parametrize(
    "name,source",
    [
        ("fig1-max", MAX),
        ("sec2-lsb", LSB),
        ("sec2.1-dot-prod", DOT),
        ("sec2.2-xtime", XTIME),
        ("sec5.1-vec-swap", SWAP),
    ],
    ids=lambda v: v if isinstance(v, str) and not v.startswith("(") else None,
)
def test_bench_paper_example_checks(benchmark, name, source):
    benchmark.pedantic(check_program_text, args=(source,), rounds=1, iterations=1)


def test_bench_paper_error_box(benchmark):
    """§2.1's error box: safe-dot-prod without length knowledge fails,
    and the diagnostic names the offending argument."""

    def check_fails():
        with pytest.raises(CheckError) as exc:
            check_program_text(UNSOUND_DOT)
        return str(exc.value)

    message = benchmark.pedantic(check_fails, rounds=1, iterations=1)
    assert "expected" in message
