"""§1/§5 headline: ≈50% of all vector accesses verify automatically,
with no new annotations, across the 56k-LoC corpus.

Besides the paper's accuracy numbers, this bench gates the latency of
the underlying unit of work (classifying one representative automatic
access end-to-end) against the committed pre-optimization baseline in
``benchmark-results/perf_baseline.json``, scaled by the calibration
spin so the gate is hardware-tolerant.  The profile-guided kernel PR
measured ~1.7x over its baseline on the reference container (the
issue aimed for 2x; the honest measured multiple is written to the
JSON artifact every run); the gate floor sits under that with margin
for timer noise.
"""

import json
import os
import time

from perf_common import load_baseline, machine_scale

from repro.corpus.generator import build_all_libraries
from repro.study.casestudy import analyze_instance
from repro.study.report import headline

#: required speedup of analyze_instance over the committed baseline
#: (the measured multiple on the reference container was ~1.7x)
REQUIRED_SPEEDUP = 1.35


def test_bench_headline(benchmark, full_study, capsys):
    # Time the unit of work behind the headline: classifying one
    # representative automatic access end-to-end.
    from repro.corpus.patterns import instantiate
    import random

    instance = instantiate("dyn_check", random.Random(0), "_bench_h")
    benchmark(analyze_instance, instance)

    # Gate timing: best-of-three batches, independent of the
    # pytest-benchmark calibration above.
    analyze_instance(instance)
    per_call = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(50):
            analyze_instance(instance)
        per_call = min(per_call, (time.perf_counter() - start) / 50)

    baseline = load_baseline()
    scale = machine_scale(baseline)
    # A faster machine (scale > 1) is expected to finish the baseline
    # work proportionally sooner.
    scaled_baseline_ms = baseline["headline_analyze_ms"] / scale
    measured_ms = per_call * 1e3
    speedup_vs_baseline = scaled_baseline_ms / measured_ms

    results = {
        "analyze_instance_ms": round(measured_ms, 3),
        "baseline_analyze_ms": baseline["headline_analyze_ms"],
        "machine_scale_vs_baseline": round(scale, 3),
        "speedup_vs_baseline": round(speedup_vs_baseline, 3),
    }
    os.makedirs("benchmark-results", exist_ok=True)
    with open("benchmark-results/headline_latency.json", "w") as handle:
        json.dump(results, handle, indent=2)

    with capsys.disabled():
        print()
        print(headline(full_study))
        print(
            f"analyze_instance: {measured_ms:6.2f} ms "
            f"({speedup_vs_baseline:4.2f}x vs baseline)"
        )

    assert speedup_vs_baseline >= REQUIRED_SPEEDUP, (
        f"analyze_instance regressed: {measured_ms:.2f} ms is "
        f"{speedup_vs_baseline:.2f}x the scaled baseline "
        f"({scaled_baseline_ms:.2f} ms), need ≥{REQUIRED_SPEEDUP}x "
        f"({json.dumps(results)})"
    )

    measured = full_study.auto_percentage()
    assert 45.0 <= measured <= 60.0, f"headline auto-rate {measured:.1f}%"
    assert full_study.total_ops == 1085

    # §5.1: "In all, 72% of the vector accesses in the math library
    # were verifiable using these approaches."
    math = full_study.libraries["math"]
    verified = 100.0 * math.verified_ops / math.ops
    assert 69.0 <= verified <= 75.0, f"math verifiable {verified:.1f}%"
