"""§1/§5 headline: ≈50% of all vector accesses verify automatically,
with no new annotations, across the 56k-LoC corpus."""

from repro.corpus.generator import build_all_libraries
from repro.study.casestudy import analyze_instance
from repro.study.report import headline


def test_bench_headline(benchmark, full_study, capsys):
    # Time the unit of work behind the headline: classifying one
    # representative automatic access end-to-end.
    from repro.corpus.patterns import instantiate
    import random

    instance = instantiate("dyn_check", random.Random(0), "_bench_h")
    benchmark(analyze_instance, instance)

    with capsys.disabled():
        print()
        print(headline(full_study))

    measured = full_study.auto_percentage()
    assert 45.0 <= measured <= 60.0, f"headline auto-rate {measured:.1f}%"
    assert full_study.total_ops == 1085

    # §5.1: "In all, 72% of the vector accesses in the math library
    # were verifiable using these approaches."
    math = full_study.libraries["math"]
    verified = 100.0 * math.verified_ops / math.ops
    assert 69.0 <= verified <= 75.0, f"math verifiable {verified:.1f}%"
