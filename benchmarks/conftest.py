"""Shared fixtures for the benchmark harness.

The full-scale section 5 study (1085 access sites across the three
synthetic libraries) runs once per session and is shared by every
bench that reports a Figure-9-derived number.
"""

import pytest

from repro.study.casestudy import run_case_study


@pytest.fixture(scope="session")
def full_study():
    """The complete §5 case study at the paper's corpus size."""
    return run_case_study(scale=1.0)


@pytest.fixture(scope="session")
def mini_study():
    """A scaled-down study used for repeatable timing measurements."""
    return run_case_study(scale=0.05)
