"""§4.1 ablation: representative objects.

"Another valuable simplification which greatly reduced type checking
times was the use of representative members from alias-equivalent
classes of objects."  We check the same corpus slice with and without
eager representative substitution (the fallback exports alias classes
to the theories as explicit equations) and report the slowdown.
"""

import random
import time

from repro.checker.check import Checker
from repro.corpus.patterns import instantiate
from repro.logic.prove import Logic
from repro.study.casestudy import analyze_instance

#: alias-heavy idioms — local bindings of lengths and loop bounds
PATTERNS = ["dyn_check", "loop_sum", "guard", "last_elem", "vec_match"]


def _workload(use_representatives: bool):
    outcomes = []
    for index, pattern in enumerate(PATTERNS * 2):
        instance = instantiate(pattern, random.Random(index), f"_ab_{index}")
        factory = lambda: Checker(
            logic=Logic(use_representatives=use_representatives)
        )
        outcomes.append(tuple(analyze_instance(instance, factory)))
    return outcomes


def test_bench_ablation_representative_objects(benchmark, capsys):
    with_repr = benchmark.pedantic(
        _workload, args=(True,), rounds=1, iterations=1
    )

    start = time.perf_counter()
    without_repr = _workload(False)
    without_time = time.perf_counter() - start

    start = time.perf_counter()
    _workload(True)
    with_time = time.perf_counter() - start

    with capsys.disabled():
        print()
        print("§4.1 ablation — representative objects")
        print(f"  with representatives:    {with_time:8.3f}s")
        print(f"  without (equation export):{without_time:7.3f}s")
        if with_time > 0:
            print(f"  slowdown without:        {without_time / with_time:8.2f}x")

    # Precision must not regress: the same accesses verify either way.
    assert with_repr == without_repr
    # And the paper's performance claim should hold directionally.
    assert without_time >= with_time * 0.8
