"""Ablation: what do the solver-backed theories buy?

The paper's thesis is that occurrence typing *plus theories* verifies
real invariants that occurrence typing alone cannot.  This bench runs
a corpus slice with (a) the full theory registry, (b) no theories at
all (plain λTR-style occurrence typing), and reports the collapse in
automatically-verified accesses.
"""

import random

from repro.checker.check import Checker
from repro.corpus.patterns import instantiate
from repro.logic.prove import Logic
from repro.study.casestudy import analyze_instance
from repro.theories.registry import TheoryRegistry

PATTERNS = ["vec_match", "loop_sum", "guard", "dyn_check", "last_elem", "mod_index"]


def _auto_rate(checker_factory) -> float:
    total = auto = 0
    for index, pattern in enumerate(PATTERNS):
        instance = instantiate(pattern, random.Random(index), f"_th_{index}")
        observed = analyze_instance(instance, checker_factory)
        total += len(observed)
        auto += sum(1 for tier in observed if tier == "auto")
    return 100.0 * auto / total


def test_bench_ablation_theories(benchmark, capsys):
    with_theories = benchmark.pedantic(
        _auto_rate, args=(Checker,), rounds=1, iterations=1
    )
    without_theories = _auto_rate(
        lambda: Checker(logic=Logic(registry=TheoryRegistry()))
    )

    with capsys.disabled():
        print()
        print("Theory ablation — automatically verified accesses (auto-tier slice)")
        print(f"  occurrence typing + theories: {with_theories:6.0f}%")
        print(f"  occurrence typing alone:      {without_theories:6.0f}%")

    # With the linear theory the whole auto slice verifies; without it,
    # essentially nothing does — refinement obligations need a solver.
    assert with_theories == 100.0
    assert without_theories == 0.0
