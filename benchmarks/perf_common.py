"""Shared helpers for the hardware-tolerant performance gates.

The committed baseline (``benchmark-results/perf_baseline.json``)
records, for the representation that preceded the profile-guided
kernel work, the single-core throughput numbers *and* the duration of
a fixed pure-Python calibration spin on the machine that measured
them.  A gate re-times the same spin on the current machine and scales
the baseline by the ratio, so the comparison tracks "how much faster
is this code" rather than "how fast is this box" — a slower CI runner
lowers both sides of the inequality together.
"""

import json
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent.parent / (
    "benchmark-results/perf_baseline.json"
)


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def calibration_spin_seconds(rounds: int = 3) -> float:
    """Best-of-N duration of the fixed calibration workload."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i * i
        best = min(best, time.perf_counter() - start)
    return best


def machine_scale(baseline: dict) -> float:
    """How fast this machine is relative to the baseline machine.

    ``> 1`` means the current machine is faster, so the baseline's
    rates are scaled *up* (and its latencies down) before comparing.
    """
    return baseline["calibration_spin_seconds"] / calibration_spin_seconds()
