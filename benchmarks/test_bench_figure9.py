"""Figure 9: % of vector operations verifiable, per library and tier.

Regenerates the paper's stacked bar chart as a table (measured next to
the paper's numbers) and asserts the reproduction matches the paper's
percentages within a small tolerance.  The benchmark timing measures
per-access classification on a scaled corpus.
"""

import pytest

from repro.corpus.generator import build_all_libraries
from repro.corpus.profiles import PAPER_FIGURE9
from repro.study.casestudy import analyze_library, run_case_study
from repro.study.report import figure9_table

#: measured values may differ from the paper's by this many points
#: (rounding of integer op counts).
TOLERANCE = 2.0


def test_bench_figure9(benchmark, full_study, capsys):
    scaled = build_all_libraries(scale=0.05)

    def classify_scaled():
        return {
            name: analyze_library(lib) for name, lib in scaled.items()
        }

    benchmark.pedantic(classify_scaled, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(figure9_table(full_study))

    for library, tiers in PAPER_FIGURE9.items():
        lib = full_study.libraries[library]
        for tier, paper_pct in tiers.items():
            measured = lib.percentage(tier)
            assert abs(measured - paper_pct) <= TOLERANCE, (
                f"{library}/{tier}: measured {measured:.1f}%, paper {paper_pct}%"
            )

    # The qualitative shape: plot dominates automatically; pict3d is
    # annotation-heavy; only math has a modification tier.
    libs = full_study.libraries
    assert libs["plot"].percentage("auto") > 2 * libs["math"].percentage("auto")
    assert libs["pict3d"].percentage("annotation") > libs["pict3d"].percentage("auto")
    assert libs["math"].percentage("modification") > 0

    # Every access lands in the tier its idiom class predicts.
    for name, lib in full_study.libraries.items():
        assert lib.mismatches == [], f"{name}: {lib.mismatches[:5]}"
