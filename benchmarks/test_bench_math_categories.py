"""§5.1: the category breakdown of the math library's vector accesses.

Paper: automatically verified 25%; annotations added 34%; code
modified 13%; beyond scope 22%; unimplemented features 6%; unsafe
code: 2 operations (both correctly rejected and subsequently patched).
"""

import random

from repro.corpus.patterns import instantiate
from repro.study.casestudy import analyze_instance
from repro.study.report import math_categories_table

PAPER = {
    "auto": 25.0,
    "annotation": 34.0,
    "modification": 13.0,
    "beyond-scope": 22.0,
    "unimplemented": 6.0,
}
TOLERANCE = 2.0


def test_bench_math_categories(benchmark, full_study, capsys):
    # Time the annotation-tier workflow (check base, fail, check the
    # annotated variant) — the §5.1 manual-effort loop, mechanised.
    instance = instantiate("nat_loop", random.Random(0), "_bench_m")
    benchmark(analyze_instance, instance)

    with capsys.disabled():
        print()
        print(math_categories_table(full_study))

    math = full_study.libraries["math"]
    for tier, paper_pct in PAPER.items():
        measured = math.percentage(tier)
        assert abs(measured - paper_pct) <= TOLERANCE, (
            f"math/{tier}: measured {measured:.1f}%, paper {paper_pct}%"
        )

    # "we discovered 2 vector operations which made unsafe assumptions
    # about a mutable cache" — both must be flagged, neither verified.
    assert math.tier_counts.get("unsafe", 0) == 2
