#!/usr/bin/env python
"""Quickstart: check and run the paper's Figure 1 example.

``max`` is given a *refinement type*: its result is an Int that is at
least as large as both arguments.  Occurrence typing proves the body
against that type with no changes to the code — the conditional's
then/else propositions carry the needed linear-arithmetic facts.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro import CheckError, check_program_text, run_program_text

MAX_GOOD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))

(max 3 7)
(max -2 -9)
"""

# Swapping the branches violates the declared refinement.
MAX_BAD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) y x))
"""


def main() -> None:
    print("== Figure 1: max with refinement types ==\n")
    types = check_program_text(MAX_GOOD)
    print("type checked:")
    for name, ty in types.items():
        print(f"  {name} : {ty!r}")

    _defs, results = run_program_text(MAX_GOOD)
    print(f"\n(max 3 7)   = {results[0]}")
    print(f"(max -2 -9) = {results[1]}")

    print("\n== the swapped body is rejected ==\n")
    try:
        check_program_text(MAX_BAD)
    except CheckError as exc:
        print(f"rejected, as expected:\n{exc}")
    else:
        raise SystemExit("BUG: ill-typed max was accepted")


if __name__ == "__main__":
    main()
