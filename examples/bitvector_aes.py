#!/usr/bin/env python
"""Bitvector theory (section 2.2): verifying AES's ``xtime``.

``xtime`` multiplies an element of GF(2^8) by x, representing field
elements as bytes.  The type ``Byte`` is the refinement
``{b : Int | 0 ≤ b ≤ 255}``; proving the function returns a Byte
requires reasoning about ``AND``/``XOR``/``*`` at the bit level, which
the linear theory cannot do — the bitvector theory (bit-blasting + a
DPLL SAT solver standing in for the paper's Z3) discharges it.

Run:  PYTHONPATH=src python examples/bitvector_aes.py
"""

from repro import CheckError, check_program_text, run_program_text

XTIME = """
(: xtime : Byte -> Byte)
(define (xtime num)
  (let ([n (AND (* 2 num) 255)])
    (cond
      [(= 0 (AND num 128)) n]
      [else (XOR n 27)])))
"""

# Without the 0xff mask the doubled value may exceed a byte.
XTIME_UNMASKED = """
(: xtime : Byte -> Byte)
(define (xtime num) (* 2 num))
"""

# GF(2^8) multiplication by chained xtime: the FIPS-197 worked example
# computes 0x57 * 0x13 = 0xfe via xtime chains.
GF_DEMO = XTIME + """
(: gf-57-times-13 : -> Int)
(define (gf-57-times-13)
  (let ([a 87])                       ;; 0x57
    (let ([a2 (xtime a)])             ;; 0x57·x   = 0xae
      (let ([a4 (xtime a2)])          ;; 0x57·x²  = 0x47
        (let ([a8 (xtime a4)])        ;; 0x57·x³  = 0x8e
          ;; 0x13 = x⁴? no: 0x13 = b10011 → a ⊕ a2 ⊕ a8·x  — use the
          ;; standard decomposition 0x57·0x13 = 0x57·(1 ⊕ x ⊕ x⁴)
          (let ([a16 (xtime a8)])     ;; 0x57·x⁴ = 0x07
            (XOR (XOR a a2) a16)))))))

(gf-57-times-13)
"""


def main() -> None:
    print("== xtime verifies at Byte -> Byte ==\n")
    types = check_program_text(XTIME)
    print(f"  xtime : {types['xtime']!r}")

    _defs, results = run_program_text(
        XTIME + "(xtime 87) (xtime 174) (xtime 71) (xtime 142)"
    )
    chain = " -> ".join(f"0x{v:02x}" for v in (0x57,) + results)
    print(f"\n  xtime chain (FIPS-197): {chain}")

    print("\n== the unmasked version is rejected ==\n")
    try:
        check_program_text(XTIME_UNMASKED)
    except CheckError as exc:
        print(f"  rejected: {str(exc).splitlines()[0]}")

    print("\n== GF(2^8): 0x57 * 0x13 via xtime chains ==\n")
    check_program_text(GF_DEMO)
    _defs, results = run_program_text(GF_DEMO)
    print(f"  0x57 * 0x13 = 0x{results[0]:02x}  (FIPS-197 says 0xfe)")
    assert results[0] == 0xFE


if __name__ == "__main__":
    main()
