#!/usr/bin/env python
"""Occurrence typing basics (section 2): type tests narrow unions.

``least-significant-bit`` accepts either an integer or a vector of
bits; ``(int? n)`` narrows ``n`` to ``Int`` in the then-branch and to
``(Vecof Int)`` in the else-branch.  The example also shows mutation
(section 4.2) destroying occurrence information.

Run:  PYTHONPATH=src python examples/occurrence_basics.py
"""

from repro import CheckError, check_program_text, run_program_text

LSB = """
(: least-significant-bit : (U Int (Vecof Int)) -> Int)
(define (least-significant-bit n)
  (if (int? n)
      (if (even? n) 0 1)
      (if (< 0 (len n)) (vec-ref n (- (len n) 1)) 0)))

(least-significant-bit 6)
(least-significant-bit 7)
(least-significant-bit (vector 1 0 1))
"""

NO_TEST = """
(: f : (U Int (Vecof Int)) -> Int)
(define (f n) (+ n 1))
"""

MUTATION = """
(: f : (U Int Bool) -> Int)
(define (f x)
  (if (int? x)
      (begin (set! x #t) x)
      0))
"""


def main() -> None:
    print("== least-significant-bit over (U Int (Vecof Int)) ==\n")
    check_program_text(LSB)
    _defs, results = run_program_text(LSB)
    print(f"  (lsb 6)          = {results[0]}")
    print(f"  (lsb 7)          = {results[1]}")
    print(f"  (lsb #(1 0 1))   = {results[2]}")

    print("\n== using the union without a test is rejected ==\n")
    try:
        check_program_text(NO_TEST)
    except CheckError as exc:
        print(f"  rejected: {str(exc).splitlines()[0]}")

    print("\n== mutation invalidates occurrence information (§4.2) ==\n")
    try:
        check_program_text(MUTATION)
    except CheckError as exc:
        print(f"  rejected: {str(exc).splitlines()[0]}")
        print("  (x is set!-mutated, so the (int? x) test proves nothing)")


if __name__ == "__main__":
    main()
