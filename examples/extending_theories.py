#!/usr/bin/env python
"""Extending RTR with a new theory (section 3.4's recipe, applied live).

The paper integrates linear arithmetic and bitvectors, and anticipates
further theories.  This example shows the congruence (parity) theory
that ships with this reproduction — built exactly by the paper's
three-step recipe — and then registers a tiny *custom* theory at
runtime to show the plug-in surface.

Run:  PYTHONPATH=src python examples/extending_theories.py
"""

from repro import (
    CheckError,
    Checker,
    Logic,
    Theory,
    check_program_text,
    default_registry,
)
from repro.syntax.parser import parse_program
from repro.tr.props import Congruence

PARITY = """
(: double : Int -> [r : Int #:where (even r)])
(define (double x) (* 2 x))

(: next-even : Int -> [r : Int #:where (even r)])
(define (next-even n) (if (even? n) n (+ n 1)))
"""

WRONG_PARITY = """
(: f : Int -> [r : Int #:where (even r)])
(define (f x) (+ (* 2 x) 1))
"""

MOD_SEVEN = """
(: week-aligned : Int -> [r : Int #:where (divisible r 7)])
(define (week-aligned weeks) (* 7 weeks))
"""


class OptimistAboutThrees(Theory):
    """A deliberately silly custom theory: everything is ≡ 0 (mod 3).

    (Unsound, of course — it exists purely to show the plug-in API.)
    """

    name = "optimist-threes"

    def accepts(self, goal):
        return isinstance(goal, Congruence) and goal.modulus == 3

    def entails(self, assumptions, goal):
        return goal.residue == 0


def main() -> None:
    print("== the congruence theory (even?/odd? occurrence typing) ==\n")
    types = check_program_text(PARITY)
    for name, ty in types.items():
        print(f"  {name} : {ty!r}")

    print("\n== wrong parity is rejected ==\n")
    try:
        check_program_text(WRONG_PARITY)
    except CheckError as exc:
        print(f"  rejected: {str(exc).splitlines()[0]}")

    print("\n== beyond parity: divisibility by 7 ==\n")
    check_program_text(MOD_SEVEN)
    print("  week-aligned : verified (7·weeks ≡ 0 mod 7, residue-wise)")

    print("\n== registering a custom theory at runtime ==\n")
    program = parse_program(
        """
        (: claim : Int -> [r : Int #:where (divisible r 3)])
        (define (claim x) (+ x 1))
        """
    )
    try:
        Checker().check_program(program)
        print("  BUG: accepted without the custom theory")
    except CheckError:
        print("  default registry: correctly rejected (x+1 is not ≡ 0 mod 3)")

    registry = default_registry()
    registry.register(OptimistAboutThrees())
    Checker(logic=Logic(registry=registry)).check_program(program)
    print("  with OptimistAboutThrees registered: accepted")
    print("  (the registry trusts its solvers — soundness is the theory's job)")


if __name__ == "__main__":
    main()
