#!/usr/bin/env python
"""A miniature run of the section 5 case study (Figure 9).

Generates scaled-down synthetic math/plot/pict3d corpora, attempts to
replace every vector access with its ``safe-vec-`` counterpart, and
prints the Figure 9 table plus the §5.1 category breakdown.  Use
``--full`` to run at the paper's full corpus size (≈1 minute).

Run:  PYTHONPATH=src python examples/case_study_mini.py [--full]
"""

import sys
import time

from repro.study.casestudy import run_case_study
from repro.study.report import (
    corpus_table,
    figure9_table,
    headline,
    math_categories_table,
)


def main() -> None:
    scale = 1.0 if "--full" in sys.argv else 0.08
    label = "full" if scale == 1.0 else f"scale={scale}"
    print(f"Running the §5 case study ({label}) ...\n")
    start = time.time()
    result = run_case_study(scale=scale)
    elapsed = time.time() - start

    print(figure9_table(result))
    print()
    print(corpus_table(result))
    print()
    print(math_categories_table(result))
    print()
    print(headline(result))
    print(f"\nanalysed in {elapsed:.1f}s")

    mismatches = sum(len(lib.mismatches) for lib in result.libraries.values())
    print(f"expected-vs-observed tier mismatches: {mismatches}")


if __name__ == "__main__":
    main()
