#!/usr/bin/env python
"""Safe vector access (section 2.1): dot products and swaps.

Demonstrates the paper's "middle ground": a statically-verified
``safe-dot-prod`` whose type demands equal lengths, wrapped by a
``dot-prod`` that establishes the lengths with one dynamic check —
legacy callers keep calling ``dot-prod`` while verified code calls
``safe-dot-prod`` directly.

Also shows ``vec-swap!`` (section 5.1): unguarded, the safe accessors
do not verify; with two well-placed dynamic checks, four vector
operations verify at once.

Run:  PYTHONPATH=src python examples/safe_vectors.py
"""

from repro import CheckError, check_program_text, run_program_text

DOT_PROD = """
(: safe-dot-prod : [A : (Vecof Int)]
                   [B : (Vecof Int) #:where (= (len B) (len A))] -> Int)
(define (safe-dot-prod A B)
  (for/sum ([i (in-range (len A))])
    (* (safe-vec-ref A i)
       (safe-vec-ref B i))))

(: dot-prod : (Vecof Int) (Vecof Int) -> Int)
(define (dot-prod A B)
  (unless (= (len A) (len B))
    (error "invalid vector lengths!"))
  (safe-dot-prod A B))

(dot-prod (vector 1 2 3) (vector 4 5 6))
"""

UNGUARDED_SWAP = """
(: vec-swap! : (Vecof Int) Int Int -> Void)
(define (vec-swap! vs i j)
  (let ([i-val (safe-vec-ref vs i)])
    (let ([j-val (safe-vec-ref vs j)])
      (safe-vec-set! vs i j-val)
      (safe-vec-set! vs j i-val))))
"""

GUARDED_SWAP = """
(: vec-swap! : (Vecof Int) Int Int -> Void)
(define (vec-swap! vs i j)
  (unless (= i j)
    (cond
      [(and (< -1 i (len vs))
            (< -1 j (len vs)))
       (let ([i-val (safe-vec-ref vs i)])
         (let ([j-val (safe-vec-ref vs j)])
           (safe-vec-set! vs i j-val)
           (safe-vec-set! vs j i-val)))]
      [else (error "bad index(s)!")])))

(define v (vector 10 20 30))
(vec-swap! v 0 2)
(vec-ref v 0)
(vec-ref v 2)
"""


def main() -> None:
    print("== safe-dot-prod + dot-prod (the §2.1 middle ground) ==\n")
    check_program_text(DOT_PROD)
    _defs, results = run_program_text(DOT_PROD)
    print(f"(dot-prod #(1 2 3) #(4 5 6)) = {results[0]}  [verified accesses]")

    print("\n== vec-swap! without guards is rejected ==\n")
    try:
        check_program_text(UNGUARDED_SWAP)
    except CheckError as exc:
        message = str(exc).splitlines()[0]
        print(f"rejected: {message}")

    print("\n== vec-swap! with two added dynamic checks verifies ==\n")
    check_program_text(GUARDED_SWAP)
    _defs, results = run_program_text(GUARDED_SWAP)
    print(f"after (vec-swap! #(10 20 30) 0 2): v[0]={results[-2]} v[2]={results[-1]}")
    print("four safe vector operations verified (the §5.1 'Code modified' tier)")


if __name__ == "__main__":
    main()
