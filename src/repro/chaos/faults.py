"""Seeded fault injectors for the chaos scenarios.

Each injector provokes exactly one failure mode the service claims to
survive: a killed pool worker (PID watchdog + in-process fallback), a
torn or garbage cache shard (corruption tolerance + repair-on-flush),
and a theory dispatch that stalls or hangs (deadline abort + hung-lane
watchdog).  They are deliberately tiny and deterministic — a scenario
seeded the same way injects the same faults in the same order.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from typing import List, Optional

from ..batch import pipeline
from ..budget import current_budget

__all__ = [
    "suicidal_pool_workers",
    "corrupt_shards",
    "plant_torn_tmp",
    "truncate_meta",
    "ChaosDispatch",
]


# ----------------------------------------------------------------------
# pool workers
# ----------------------------------------------------------------------
def _suicidal_chunk_runner(args):  # pragma: no cover — dies before returning
    """Runs in the forked worker: an OOM kill / segfault, on schedule."""
    os.kill(os.getpid(), signal.SIGKILL)


@contextmanager
def suicidal_pool_workers():
    """Make every pool worker die mid-map while the block is active.

    Fork workers resolve the chunk runner by module attribute, so
    workers forked inside the block inherit the self-``SIGKILL``
    version — the worker takes its chunk down with it exactly the way
    an OOM kill would, *during* the map, which is the window the
    pool's PID watchdog guards.  (Killing an idle worker from outside
    instead can poison the pool's shared task-queue lock — a failure
    ``multiprocessing`` cannot recover from and not the seam under
    test.)
    """
    original = pipeline._run_chunk_warm
    pipeline._run_chunk_warm = _suicidal_chunk_runner
    try:
        yield
    finally:
        pipeline._run_chunk_warm = original


# ----------------------------------------------------------------------
# cache corruption
# ----------------------------------------------------------------------
def corrupt_shards(cache_dir: str, limit: int = 2) -> List[str]:
    """Overwrite up to ``limit`` shard files with garbage; returns paths."""
    shard_dir = os.path.join(cache_dir, "shards")
    victims: List[str] = []
    try:
        names = sorted(os.listdir(shard_dir))
    except OSError:
        return victims
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(shard_dir, name)
        with open(path, "w") as handle:
            handle.write('{"torn": tru')  # mid-token truncation
        victims.append(path)
        if len(victims) >= limit:
            break
    return victims


def plant_torn_tmp(cache_dir: str, age_seconds: float = 3600.0) -> str:
    """Leave a stale ``.tmp`` behind, as a crash mid-flush would."""
    shard_dir = os.path.join(cache_dir, "shards")
    os.makedirs(shard_dir, exist_ok=True)
    path = os.path.join(shard_dir, "ab.chaos-torn.tmp")
    with open(path, "w") as handle:
        handle.write('{"half": ')
    old = time.time() - age_seconds
    os.utime(path, (old, old))
    return path


def truncate_meta(cache_dir: str) -> str:
    """Truncate ``meta.json`` mid-object (a crash mid-write)."""
    path = os.path.join(cache_dir, "meta.json")
    with open(path, "w") as handle:
        handle.write('{"format"')
    return path


# ----------------------------------------------------------------------
# theory dispatch stalls
# ----------------------------------------------------------------------
class ChaosDispatch:
    """A dispatch wrapper that stalls or hangs chosen consultations.

    ``delay_seconds`` sleeps before delegating (a slow theory batch);
    ``hang=True`` never delegates and instead spins cooperatively —
    polling the active request budget exactly the way the kernel's own
    hot loops do — so a deadline or watchdog cancellation is the *only*
    way out, which is precisely the recovery path under test.
    ``skip_calls`` lets the first N consultations through unharmed.
    """

    def __init__(
        self,
        inner,
        delay_seconds: float = 0.0,
        hang: bool = False,
        skip_calls: int = 0,
        max_faults: Optional[int] = None,
    ) -> None:
        self.inner = inner
        self.delay_seconds = delay_seconds
        self.hang = hang
        self.skip_calls = skip_calls
        self.max_faults = max_faults
        self.calls = 0
        self.faults = 0

    def _maybe_fault(self) -> None:
        self.calls += 1
        if self.calls <= self.skip_calls:
            return
        if self.max_faults is not None and self.faults >= self.max_faults:
            return
        self.faults += 1
        if self.hang:
            # wedged "forever": only a cooperative cancellation ends it
            while True:
                time.sleep(0.01)
                budget = current_budget()
                if budget is not None:
                    budget.check()
        elif self.delay_seconds > 0:
            deadline = time.monotonic() + self.delay_seconds
            while time.monotonic() < deadline:
                time.sleep(0.01)
                budget = current_budget()
                if budget is not None:
                    budget.check()

    def decide(self, env, goals):
        self._maybe_fault()
        return self.inner.decide(env, goals)

    def decide_one(self, env, goal):
        self._maybe_fault()
        return self.inner.decide_one(env, goal)
