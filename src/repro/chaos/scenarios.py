"""Scripted failure scenarios against an in-process checking daemon.

Each scenario boots its own :class:`~repro.server.daemon.CheckingServer`
over a fresh engine, injects one class of fault
(:mod:`~repro.chaos.faults`), and then proves the service recovered by
running the same three closing assertions:

1. **the daemon still answers** — a ``ping`` (served off-lane) and a
   real engine request both succeed;
2. **verdicts equal a fresh engine** — the seeded workload re-checked
   through the daemon matches verdicts computed by a brand-new
   :class:`~repro.checker.check.Checker` outside the server;
3. **no connection waits forever** — every connection thread and
   in-flight job drains within a bounded grace period.

Scenarios run in-process (not against a spawned subprocess like the
fuzz farm) precisely so faults can be injected surgically: killing a
known pool worker, wrapping the live theory dispatch, corrupting the
exact shard files the daemon just flushed.
"""

from __future__ import annotations

import json
import os
import random
import socket as socket_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from ..checker.errors import CheckError
from ..fuzz.gen import generate_program
from ..fuzz.oracles import check_source, fresh_checker_factory
from ..logic.prove import Logic
from ..server.client import Client, ServerError
from ..server.daemon import CheckingServer, ServerConfig
from ..tr.pretty import pretty_type
from . import faults

__all__ = ["SCENARIOS", "ScenarioContext", "ScenarioResult", "build_workload"]

#: a source every theory backend must consult (refinement subtyping
#: forces linear-arithmetic entailments through the dispatch stage) —
#: used by the stall scenarios, which need a guaranteed dispatch call.
THEORY_HEAVY_SOURCE = """\
(: clamp : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (clamp x y) (if (> x y) x y))
(define a (clamp 3 7))
(define b (clamp a 11))
"""


@dataclass
class WorkloadProgram:
    name: str
    source: str
    ok: bool
    types: Dict[str, str]


@dataclass
class ScenarioContext:
    seed: int
    tmpdir: str
    workload: List[WorkloadProgram]
    jobs: int = 2
    #: harnesses started by the running scenario; the runner stops every
    #: one of them even when the scenario body raises mid-setup
    active: List["_Scenario"] = field(default_factory=list)

    def rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")


@dataclass
class ScenarioResult:
    name: str
    ok: bool
    duration_seconds: float
    details: Dict[str, Any] = field(default_factory=dict)
    error: str = ""

    def as_dict(self) -> Dict[str, Any]:
        summary = {
            "name": self.name,
            "ok": self.ok,
            "duration_seconds": round(self.duration_seconds, 3),
            "details": self.details,
        }
        if self.error:
            summary["error"] = self.error
        return summary


def build_workload(seed: int, count: int) -> List[WorkloadProgram]:
    """``count`` seeded generator programs with fresh-engine verdicts."""
    workload: List[WorkloadProgram] = []
    for index in range(count):
        spec = generate_program(seed, index)
        try:
            _program, types = check_source(spec.source, fresh_checker_factory)
            ok, pretty = True, {n: pretty_type(t) for n, t in types.items()}
        except (SyntaxError, CheckError, RecursionError):
            ok, pretty = False, {}
        workload.append(
            WorkloadProgram(f"chaos_w{index}", spec.source, ok, pretty)
        )
    return workload


class _Scenario:
    """Owns one in-process server + client pair and the closing checks."""

    def __init__(self, ctx: ScenarioContext, name: str, **config_overrides) -> None:
        self.ctx = ctx
        self.name = name
        self.socket_path = os.path.join(ctx.tmpdir, f"{name}.sock")
        settings = dict(
            socket_path=self.socket_path,
            jobs=ctx.jobs,
            group_max=8,
            hang_seconds=0.0,  # scenarios opt in explicitly
        )
        settings.update(config_overrides)
        # a fresh engine per scenario: no cross-scenario contamination,
        # and the "fresh engine" reference stays an honest comparison
        self.server = CheckingServer(ServerConfig(**settings), logic=Logic())
        ctx.active.append(self)
        self.server.start()

    def client(self, **kwargs) -> Client:
        kwargs.setdefault("timeout", 60.0)
        return Client(socket_path=self.socket_path, **kwargs)

    # closing assertions ------------------------------------------------
    def assert_recovered(self, details: Dict[str, Any]) -> None:
        with self.client(retries=3, jitter_seed=self.ctx.seed) as client:
            ping = client.ping()
            if not ping.get("ok"):
                raise AssertionError("daemon did not answer ping")
            details["engine_alive"] = ping.get("engine_alive")
            mismatches = []
            for program in self.ctx.workload:
                response = client.check_text(program.name, program.source)
                got_ok = bool(response.get("ok"))
                got_types = dict(response.get("types") or {})
                if got_ok != program.ok or (got_ok and got_types != program.types):
                    mismatches.append(program.name)
            if mismatches:
                raise AssertionError(
                    f"daemon verdicts diverged from fresh engine: {mismatches}"
                )
        details["workload_verified"] = len(self.ctx.workload)
        self._assert_drained(details)

    def _assert_drained(self, details: Dict[str, Any], grace: float = 10.0) -> None:
        """No connection thread or in-flight job outlives its request."""
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            threads = len(self.server._conn_threads)
            with self.server._inflight_lock:
                inflight = len(self.server._inflight)
            if threads == 0 and inflight == 0:
                details["connections_drained"] = True
                return
            time.sleep(0.05)
        raise AssertionError(
            f"connections did not drain: {threads} threads, "
            f"{inflight} in-flight jobs still live after {grace}s"
        )

    def stop(self) -> None:
        self.server.stop()


def _run(name: str):
    """Decorator: wrap a scenario body with timing/teardown/reporting."""

    def wrap(body: Callable[[ScenarioContext, Dict[str, Any]], "_Scenario"]):
        def scenario(ctx: ScenarioContext) -> ScenarioResult:
            started = time.monotonic()
            details: Dict[str, Any] = {}
            try:
                harness = body(ctx, details)
                harness.assert_recovered(details)
                return ScenarioResult(
                    name, True, time.monotonic() - started, details
                )
            except Exception as exc:
                return ScenarioResult(
                    name,
                    False,
                    time.monotonic() - started,
                    details,
                    error=f"{type(exc).__name__}: {exc}",
                )
            finally:
                # stop every harness the body started, even on a
                # mid-setup exception
                while ctx.active:
                    ctx.active.pop().stop()

        scenario.__name__ = name
        return scenario

    return wrap


# ----------------------------------------------------------------------
# 1. kill a pool worker mid-service
# ----------------------------------------------------------------------
@_run("worker_kill")
def scenario_worker_kill(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    harness = _Scenario(ctx, "worker_kill", jobs=max(2, ctx.jobs))
    paths = []
    for index, program in enumerate(ctx.workload[:4]):
        path = os.path.join(ctx.tmpdir, f"wk_{index}.rkt")
        with open(path, "w") as handle:
            handle.write(program.source)
        paths.append(path)
    expected = [p.ok for p in ctx.workload[:4]]
    with harness.client() as client:
        # the pool forks lazily, so workers forked inside this block
        # inherit a chunk runner that SIGKILLs its own process mid-map
        with faults.suicidal_pool_workers():
            response = client.try_check(paths)
            # the PID watchdog must detect the dead set and fall back
            # in-process — same verdicts, daemon alive
            got = [bool(v["ok"]) for v in response["verdicts"]]
            if got != expected:
                raise AssertionError(f"verdicts changed after worker kill: {got}")
            if harness.server.pool.alive:
                raise AssertionError("broken pool was never torn down")
        details["fell_back_in_process"] = True
        # next pooled batch re-forks a healthy pool
        response = client.try_check(paths)
        got = [bool(v["ok"]) for v in response["verdicts"]]
        if got != expected:
            raise AssertionError(f"verdicts changed after pool rebuild: {got}")
        details["pool_respawned"] = harness.server.pool.alive
        if not harness.server.pool.alive:
            raise AssertionError("pool did not re-fork after recovery")
    return harness


# ----------------------------------------------------------------------
# 2. tear/corrupt cache shard writes
# ----------------------------------------------------------------------
@_run("torn_cache_shard")
def scenario_torn_cache(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    cache_dir = os.path.join(ctx.tmpdir, "chaos-cache")
    harness = _Scenario(ctx, "torn_cache_shard", jobs=1, cache_dir=cache_dir)
    with harness.client() as client:
        for program in ctx.workload:
            client.check_text(program.name, program.source)
        client.reset()  # flush the persistent shards to disk
        victims = faults.corrupt_shards(cache_dir, limit=2)
        torn = faults.plant_torn_tmp(cache_dir)
        details["corrupted_shards"] = len(victims)
        if not victims:
            raise AssertionError("no shards were flushed; nothing to corrupt")
        client.reset()  # drop the in-memory view: re-reads hit the garbage
        for program in ctx.workload:
            response = client.check_text(program.name, program.source)
            if bool(response.get("ok")) != program.ok:
                raise AssertionError(
                    f"verdict changed over corrupt cache: {program.name}"
                )
        stats = client.stats()
        skipped = stats["server"]["robustness"].get("cache_shards_skipped", 0)
        details["cache_shards_skipped"] = skipped
        if not skipped:
            raise AssertionError("corrupt shards were never detected")
        client.reset()  # flush again: the rewrite repairs the shards
        for path in victims:
            if os.path.exists(path):
                with open(path) as handle:
                    json.load(handle)  # raises if still garbage
        details["repaired"] = True
        details["torn_tmp_planted"] = os.path.basename(torn)
    return harness


# ----------------------------------------------------------------------
# 3. hang a theory-goal batch (deadline + watchdog recovery)
# ----------------------------------------------------------------------
@_run("hung_goal")
def scenario_hung_goal(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    harness = _Scenario(ctx, "hung_goal", jobs=1, hang_seconds=0.75)
    server = harness.server
    with harness.client() as client:
        # (a) a hung consultation + deadline_ms → structured
        # deadline_exceeded within the deadline plus scheduling slack
        server.logic.dispatch = faults.ChaosDispatch(
            server.logic.dispatch, hang=True, max_faults=1
        )
        started = time.monotonic()
        try:
            client.check_text("hung_a", THEORY_HEAVY_SOURCE, deadline_ms=400)
        except ServerError as exc:
            elapsed = time.monotonic() - started
            if exc.code != "deadline_exceeded" or not exc.retryable:
                raise AssertionError(f"expected deadline_exceeded, got {exc}")
            details["deadline_elapsed_seconds"] = round(elapsed, 3)
            if elapsed > 5.0:
                raise AssertionError(f"deadline abort took {elapsed:.1f}s")
        else:
            raise AssertionError("hung request did not hit its deadline")
        # (b) the same hang with no deadline → the watchdog cancels it
        server.logic.dispatch = faults.ChaosDispatch(
            server.logic.dispatch, hang=True, max_faults=1
        )
        try:
            client.check_text("hung_b", THEORY_HEAVY_SOURCE)
        except ServerError as exc:
            if exc.code != "cancelled" or not exc.retryable:
                raise AssertionError(f"expected watchdog cancel, got {exc}")
        else:
            raise AssertionError("watchdog never cancelled the hung request")
        stats = client.stats()["server"]["robustness"]
        details["deadline_exceeded"] = stats["deadline_exceeded"]
        details["watchdog_cancels"] = stats["watchdog_cancels"]
        # (c) the very next request on the same lane is correct
        response = client.check_text("hung_after", THEORY_HEAVY_SOURCE)
        if not response.get("ok"):
            raise AssertionError("lane did not recover after cancellations")
    return harness


# ----------------------------------------------------------------------
# 4. drop the client socket mid-request
# ----------------------------------------------------------------------
@_run("client_disconnect")
def scenario_client_disconnect(
    ctx: ScenarioContext, details: Dict[str, Any]
) -> _Scenario:
    harness = _Scenario(ctx, "client_disconnect", jobs=1)
    program = ctx.workload[0]
    # (a) full request sent, socket dropped before reading the response
    raw = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    raw.connect(harness.socket_path)
    request = {"op": "check_text", "name": "dropped", "text": program.source}
    raw.sendall((json.dumps(request) + "\n").encode())
    raw.close()
    # (b) half a frame, then gone
    raw = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    raw.connect(harness.socket_path)
    raw.sendall(b'{"op": "check_te')
    raw.close()
    details["dropped_connections"] = 2
    return harness


# ----------------------------------------------------------------------
# 5. reset storm under concurrent load
# ----------------------------------------------------------------------
@_run("reset_storm")
def scenario_reset_storm(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    harness = _Scenario(ctx, "reset_storm", jobs=1, max_queue_depth=128)
    workers = 4
    iterations = 6
    errors: List[str] = []

    def storm(worker: int) -> None:
        rng = ctx.rng(f"storm{worker}")
        try:
            with harness.client(retries=4, jitter_seed=worker) as client:
                for step in range(iterations):
                    if rng.random() < 0.3:
                        client.reset()
                        continue
                    program = rng.choice(ctx.workload)
                    response = client.check_text(
                        f"{program.name}_t{worker}", program.source
                    )
                    if bool(response.get("ok")) != program.ok:
                        errors.append(
                            f"worker {worker} step {step}: verdict flipped "
                            f"for {program.name}"
                        )
        except Exception as exc:  # noqa: BLE001 — report, don't hang the storm
            errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=storm, args=(w,), daemon=True)
        for w in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    if any(thread.is_alive() for thread in threads):
        raise AssertionError("a storm thread is still blocked")
    if errors:
        raise AssertionError("; ".join(errors[:4]))
    details["storm_requests"] = workers * iterations
    return harness


# ----------------------------------------------------------------------
# 6. overload: shed past the queue cap, recover after
# ----------------------------------------------------------------------
@_run("overload_shed")
def scenario_overload_shed(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    harness = _Scenario(ctx, "overload_shed", jobs=1, max_queue_depth=1, group_max=1)
    server = harness.server
    # every theory consultation stalls 0.4s (cooperatively), so the lane
    # stays busy long enough for the burst below to overflow the queue
    server.logic.dispatch = faults.ChaosDispatch(
        server.logic.dispatch, delay_seconds=0.4, max_faults=2
    )
    outcomes: List[str] = []
    lock = threading.Lock()

    def submit(worker: int) -> None:
        try:
            with harness.client() as client:  # no retries: observe the shed
                client.check_text(f"burst{worker}", THEORY_HEAVY_SOURCE)
                outcome = "ok"
        except ServerError as exc:
            outcome = exc.code
        except Exception as exc:  # noqa: BLE001
            outcome = f"{type(exc).__name__}"
        with lock:
            outcomes.append(outcome)

    threads = [
        threading.Thread(target=submit, args=(w,), daemon=True) for w in range(6)
    ]
    for thread in threads:
        thread.start()
        time.sleep(0.02)  # a burst, but an ordered one (deterministic-ish)
    for thread in threads:
        thread.join(timeout=60.0)
    if any(thread.is_alive() for thread in threads):
        raise AssertionError("a burst connection is still blocked")
    shed = sum(1 for outcome in outcomes if outcome == "overloaded")
    served = sum(1 for outcome in outcomes if outcome == "ok")
    details["burst_outcomes"] = outcomes
    if shed == 0:
        raise AssertionError(f"queue cap never shed load: {outcomes}")
    if served == 0:
        raise AssertionError(f"every burst request failed: {outcomes}")
    stats_shed = harness.server.robustness["shed_overloaded"]
    if stats_shed < shed:
        raise AssertionError(
            f"shed counter ({stats_shed}) disagrees with responses ({shed})"
        )
    details["shed"] = shed
    details["served"] = served
    return harness


# ----------------------------------------------------------------------
# 7. kill one engine lane of a multi-lane daemon mid-campaign
# ----------------------------------------------------------------------
@_run("lane_kill")
def scenario_lane_kill(ctx: ScenarioContext, details: Dict[str, Any]) -> _Scenario:
    harness = _Scenario(
        ctx, "lane_kill", jobs=1, lanes=3, watchdog_interval=0.02
    )
    server = harness.server
    lanes = len(server.lanes)
    # derive one affinity key per lane from the daemon's own stable hash
    keys: Dict[int, str] = {}
    attempt = 0
    while len(keys) < lanes:
        key = f"chaos-key-{attempt}"
        keys.setdefault(CheckingServer.lane_index_for(key, lanes), key)
        attempt += 1
    details["affinity_keys"] = {str(l): k for l, k in sorted(keys.items())}
    program = ctx.workload[0]
    # warm every lane and pin the routing: each keyed client must land
    # on the lane its key hashes to
    for lane_index, key in sorted(keys.items()):
        with harness.client(affinity=key) as client:
            response = client.check_text(program.name, program.source)
            if response.get("lane") != lane_index:
                raise AssertionError(
                    f"affinity {key!r} landed on lane {response.get('lane')}, "
                    f"expected {lane_index}"
                )
    victim = 1
    server.poison_lane(victim)
    # while the victim is down (or respawning), the surviving lanes
    # keep answering — each through its pinned client
    for lane_index, key in sorted(keys.items()):
        if lane_index == victim:
            continue
        with harness.client(affinity=key) as client:
            response = client.check_text(f"{program.name}_during", program.source)
            if bool(response.get("ok")) != program.ok:
                raise AssertionError(
                    f"surviving lane {lane_index} verdict flipped during outage"
                )
    details["survivors_served"] = lanes - 1
    # the watchdog respawns the dead lane over its warm engine
    deadline = time.monotonic() + 10.0
    with harness.client() as probe:
        while time.monotonic() < deadline:
            ping = probe.ping()
            if ping.get("lanes_alive") == lanes:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("poisoned lane never respawned")
        restarts = probe.stats()["server"]["robustness"]["lane_restarts"]
    if restarts < 1:
        raise AssertionError("lane respawn was not counted")
    details["lane_restarts"] = restarts
    # and the respawned lane itself answers correctly again
    with harness.client(affinity=keys[victim]) as client:
        response = client.check_text(f"{program.name}_after", program.source)
        if response.get("lane") != victim:
            raise AssertionError("affinity no longer routes to the respawned lane")
        if bool(response.get("ok")) != program.ok:
            raise AssertionError("respawned lane verdict diverged")
    details["respawned_lane_serves"] = True
    return harness


#: name → scenario callable, in documentation order
SCENARIOS: Dict[str, Callable[[ScenarioContext], ScenarioResult]] = {
    "worker_kill": scenario_worker_kill,
    "torn_cache_shard": scenario_torn_cache,
    "hung_goal": scenario_hung_goal,
    "client_disconnect": scenario_client_disconnect,
    "reset_storm": scenario_reset_storm,
    "overload_shed": scenario_overload_shed,
    "lane_kill": scenario_lane_kill,
}
