"""Deterministic fault injection against the checking service.

The recovery seams this repo grew over time — corrupt-shard tolerance,
the pool's PID watchdog, epoch-guarded sessions, and now deadlines,
load shedding and lane supervision — stay broken until something
systematically provokes them.  This package is that something: seeded
fault injectors (:mod:`~repro.chaos.faults`), scripted failure
scenarios (:mod:`~repro.chaos.scenarios`) and a campaign runner
(:mod:`~repro.chaos.runner`) with a reproducible JSON summary.

Every scenario ends with the same three assertions: the daemon still
answers, its verdicts equal a fresh engine's, and no connection is
left waiting.  Drive it with ``repro chaos`` or ``repro fuzz --chaos``.
"""

from .runner import ChaosConfig, ChaosReport, run_chaos
from .scenarios import SCENARIOS

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos", "SCENARIOS"]
