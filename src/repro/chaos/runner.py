"""The chaos campaign runner: scenarios in, reproducible summary out.

A campaign is a seeded workload (generated programs with fresh-engine
reference verdicts) plus an ordered subset of
:data:`~repro.chaos.scenarios.SCENARIOS`.  The report digest covers
the seed, the scenario list and each scenario's pass/fail — so two
runs of the same campaign on the same code agree byte-for-byte on
everything except wall-clock durations.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .scenarios import SCENARIOS, ScenarioContext, ScenarioResult, build_workload

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign."""

    seed: int = 0
    #: scenario names to run, in order (None = all, documentation order)
    scenarios: Optional[Sequence[str]] = None
    #: generated programs in the verification workload
    workload_count: int = 6
    #: pool size handed to scenarios that fork (worker_kill needs >= 2)
    jobs: int = 2

    def scenario_names(self) -> List[str]:
        if self.scenarios is None:
            return list(SCENARIOS)
        unknown = [name for name in self.scenarios if name not in SCENARIOS]
        if unknown:
            raise ValueError(
                f"unknown chaos scenarios: {unknown}; "
                f"known: {', '.join(SCENARIOS)}"
            )
        return list(self.scenarios)


@dataclass
class ChaosReport:
    """The campaign summary (:meth:`as_dict` is the JSON artifact)."""

    config: ChaosConfig
    results: List[ScenarioResult] = field(default_factory=list)
    duration_seconds: float = 0.0

    @property
    def passed(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def failed(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and bool(self.results)

    def digest(self) -> str:
        """Stable over everything but wall-clock time."""
        body = json.dumps(
            {
                "seed": self.config.seed,
                "workload_count": self.config.workload_count,
                "scenarios": [
                    {"name": result.name, "ok": result.ok}
                    for result in self.results
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "workload_count": self.config.workload_count,
            "scenarios": [result.as_dict() for result in self.results],
            "passed": self.passed,
            "failed": self.failed,
            "ok": self.ok,
            "duration_seconds": round(self.duration_seconds, 3),
            "digest": self.digest(),
        }


def run_chaos(
    config: ChaosConfig, progress: Optional[Any] = None
) -> ChaosReport:
    """Run the campaign; ``progress`` (a callable) gets one line per scenario."""
    report = ChaosReport(config=config)
    started = time.monotonic()
    names = config.scenario_names()
    workload = build_workload(config.seed, config.workload_count)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        for name in names:
            ctx = ScenarioContext(
                seed=config.seed,
                tmpdir=tmpdir,
                workload=workload,
                jobs=config.jobs,
            )
            result = SCENARIOS[name](ctx)
            report.results.append(result)
            if progress is not None:
                status = "PASS" if result.ok else f"FAIL ({result.error})"
                progress(
                    f"chaos[{name}] {status} in {result.duration_seconds:.1f}s"
                )
    report.duration_seconds = time.monotonic() - started
    return report
