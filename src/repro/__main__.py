"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE...``   — type check RTR modules; prints each definition's
  type or the first error (exit 1 on any failure, with the offending
  file's path on stderr).
* ``run FILE...``     — type check, then evaluate; prints top-level
  results (exit 1 on static failure, 2 on runtime failure).
* ``eval 'EXPR'``     — check and evaluate a single expression.
* ``study [--scale S]`` — run the §5 case study and print Figure 9 and
  the §5.1 breakdown.
* ``fuzz``            — differential fuzzing: generate well-typed
  programs + ill-typed mutants, run the soundness oracles over shards,
  shrink any counterexamples (exit 1 if any oracle fired).
* ``profile``         — cProfile + engine stage timers over the pinned
  fuzz corpus; writes a top-frames JSON artifact with ``--json``.
* ``serve``           — run the persistent checking daemon (one warm
  engine, per-connection sessions; see ``docs/SERVER.md``).
* ``client``          — script the daemon: ``check`` / ``check-text``
  / ``eval`` / ``stats`` / ``ping`` / ``reset`` / ``shutdown``.
* ``chaos``           — seeded fault-injection campaign against an
  in-process daemon (kill workers, tear shards, hang theory goals);
  exit 1 if any scenario fails to recover.

Every failure path prints the offending program's path and returns a
nonzero exit status, so batch invocations (CI, fuzz jobs) fail loudly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .checker.check import Checker
from .checker.errors import CheckError
from .interp.eval import run_program
from .interp.values import RacketError, UnsafeMemoryError, value_repr
from .syntax.parser import ParseError, parse_program

__all__ = ["main"]

#: exit codes: static (parse/check) vs dynamic (evaluation) failure
EXIT_STATIC = 1
EXIT_DYNAMIC = 2


def _print_engine_stats(checker: Checker) -> None:
    from .study.report import engine_stats_table

    print()
    print(engine_stats_table(checker.logic.stats))


def _cmd_check(args: argparse.Namespace) -> int:
    from .batch import check_many
    from .study.report import engine_stats_table

    jobs = max(1, args.jobs)
    checker = Checker()  # jobs=1 threads the process-wide shared engine
    checker.logic.stats.reset()
    try:
        report = check_many(
            args.files,
            jobs=jobs,
            cache_dir=args.cache_dir,
            logic=checker.logic if jobs == 1 else None,
        )
    except OSError as exc:
        print(f"cache directory unusable: {exc}", file=sys.stderr)
        return EXIT_STATIC
    if report.jobs_degraded:
        print(
            f"note: --jobs {report.jobs_requested} degraded to "
            f"{report.jobs} (cpu count)",
            file=sys.stderr,
        )
    status = 0
    for verdict in report.verdicts:
        if not verdict.ok:
            print(f"{verdict.path}: FAILED\n{verdict.error}\n", file=sys.stderr)
            status = EXIT_STATIC
            continue
        print(f"{verdict.path}: OK")
        if args.verbose:
            for name, pretty in verdict.types.items():
                print(f"  {name} : {pretty}")
    if args.stats:
        print()
        print(engine_stats_table(report.stats))
    return status


def _run_one(checker: Checker, filename: str, unchecked: bool) -> int:
    """Check + evaluate one module; prints path-prefixed diagnostics."""
    try:
        source = Path(filename).read_text()
    except OSError as exc:
        print(f"{filename}: error: cannot read: {exc}", file=sys.stderr)
        return EXIT_STATIC
    try:
        program = parse_program(source)
        if not unchecked:
            checker.check_program(program)
    except (ParseError, CheckError) as exc:
        print(f"{filename}: error: {exc}", file=sys.stderr)
        return EXIT_STATIC
    try:
        _defs, results = run_program(program)
    except (RacketError, UnsafeMemoryError) as exc:
        print(f"{filename}: runtime error: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    for value in results:
        print(value_repr(value))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    checker = Checker()
    checker.logic.stats.reset()
    status = 0
    for filename in args.files:
        status = max(status, _run_one(checker, filename, args.unchecked))
    if args.stats:
        _print_engine_stats(checker)
    return status


def _cmd_eval(args: argparse.Namespace) -> int:
    checker = Checker()
    checker.logic.stats.reset()
    try:
        program = parse_program(args.expr)
        if not args.unchecked:
            checker.check_program(program)
    except (ParseError, CheckError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STATIC
    try:
        _defs, results = run_program(program)
    except (RacketError, UnsafeMemoryError) as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    for value in results:
        print(value_repr(value))
    if args.stats:
        _print_engine_stats(checker)
    return 0


def _stage_table(stage_ns) -> str:
    """Render an ``EngineStats.stage_ns`` breakdown, hottest first."""
    lines = ["engine stage breakdown (outermost brackets only):"]
    for stage, elapsed in sorted(stage_ns.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {stage:<10} {elapsed / 1e6:>10.1f} ms")
    if len(lines) == 1:
        lines.append("  (no stage timings recorded)")
    return "\n".join(lines)


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile + stage timers over the pinned fuzz corpus."""
    import cProfile
    import json
    import pstats
    import time

    from .fuzz.gen import generate_program
    from .logic.prove import Logic

    specs = [generate_program(args.seed, index) for index in range(args.count)]
    logic = Logic()
    logic.enable_stage_timers()
    checker = Checker(logic=logic)

    def drive():
        accepted = rejected = 0
        for spec in specs:
            try:
                checker.check_program(parse_program(spec.source))
                accepted += 1
            except (ParseError, CheckError):
                rejected += 1
        return accepted, rejected

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    accepted, rejected = drive()
    profiler.disable()
    wall = time.perf_counter() - started

    src_root = str(Path(__file__).resolve().parent.parent)
    rows = []
    for func, (_cc, ncalls, tottime, cumtime, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        filename, lineno, name = func
        if filename.startswith(src_root):
            filename = filename[len(src_root) + 1:]
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["tottime"], reverse=True)

    artifact = {
        "seed": args.seed,
        "count": args.count,
        "accepted": accepted,
        "rejected": rejected,
        "wall_seconds": round(wall, 3),
        "programs_per_second": round(args.count / wall, 2) if wall > 0 else 0.0,
        "stage_ns": dict(logic.stats.stage_ns),
        "top_functions": rows[: args.top],
    }
    print(
        f"profiled {args.count} corpus programs (seed {args.seed}): "
        f"{artifact['programs_per_second']} programs/sec, "
        f"{accepted} accepted / {rejected} rejected"
    )
    print()
    print(_stage_table(artifact["stage_ns"]))
    print()
    print(f"top {min(args.top, len(rows))} functions by self time:")
    for row in artifact["top_functions"]:
        print(
            f"  {row['tottime']:>9.4f}s  {row['ncalls']:>9}  {row['function']}"
        )
    if args.json is not None:
        rendered = json.dumps(artifact, indent=2, sort_keys=True)
        if args.json == "-":
            print(rendered)
        else:
            Path(args.json).write_text(rendered + "\n")
            print(f"\nprofile artifact written to {args.json}")
    return 0


def _write_campaign_json(summary, path: str) -> None:
    import json

    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if path == "-":
        print(rendered)
    else:
        Path(path).write_text(rendered + "\n")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import SCENARIOS, ChaosConfig, run_chaos

    if getattr(args, "list", False):
        for name in SCENARIOS:
            print(name)
        return 0
    config = ChaosConfig(
        seed=args.seed,
        scenarios=args.scenario or None,
        workload_count=args.workload,
        jobs=max(1, args.jobs),
    )
    try:
        config.scenario_names()
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return EXIT_STATIC
    report = run_chaos(config, progress=print)
    print()
    print(
        f"chaos campaign: {report.passed} passed / {report.failed} failed "
        f"in {report.duration_seconds:.1f}s  (seed {config.seed}, "
        f"digest {report.digest()})"
    )
    if args.json is not None:
        _write_campaign_json(report.as_dict(), args.json)
    if not report.ok:
        for result in report.results:
            if not result.ok:
                print(f"  FAIL {result.name}: {result.error}", file=sys.stderr)
        return EXIT_DYNAMIC
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.chaos:
        # chaos mode reuses the fuzz seed so `fuzz --seed N --chaos`
        # exercises recovery over the same generated workload slice
        args.workload = min(max(2, args.count), 12)
        args.scenario = None
        args.jobs = max(2, args.shards)
        args.list = False
        return _cmd_chaos(args)
    if args.farm:
        return _cmd_fuzz_farm(args)
    from .fuzz import FuzzConfig, run_fuzz
    from .study.bugs import triage
    from .study.report import fuzz_table

    config = FuzzConfig(
        seed=args.seed,
        count=args.count,
        shards=args.shards,
        checker="blind" if args.inject_bug else args.checker,
        mutants=not args.no_mutants,
        max_mutants=args.max_mutants,
        shrink_failures=not args.no_shrink,
        max_shrinks=args.max_shrinks,
        cache_dir=args.cache_dir,
        solver_oracle=args.solver_oracle,
        coverage=args.coverage,
        guided=args.guided,
        profile=args.profile,
    )
    try:
        report = run_fuzz(config)
    except OSError as exc:
        print(f"cache directory unusable: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    print(fuzz_table(report))
    if report.stage_ns is not None:
        print()
        print(_stage_table(report.stage_ns))
    if args.json is not None:
        summary = report.as_dict()
        if report.violations:
            summary["triage"] = [
                bug.as_dict() for bug in triage(report.violations)
            ]
        _write_campaign_json(summary, args.json)
    if report.violations:
        print()
        print(f"{len(report.violations)} violation(s):", file=sys.stderr)
        for violation in report.violations:
            print(file=sys.stderr)
            print(violation.describe(), file=sys.stderr)
            if violation.shrunk:
                print("  shrunk counterexample:", file=sys.stderr)
                for line in violation.shrunk.rstrip().splitlines():
                    print(f"    {line}", file=sys.stderr)
        return EXIT_STATIC
    return 0


def _cmd_fuzz_farm(args: argparse.Namespace) -> int:
    from .fuzz.farm import FarmConfig, run_farm
    from .study.bugs import triage

    config = FarmConfig(
        seed=args.seed,
        count=args.count,
        budget_seconds=args.budget_seconds,
        checker=args.checker,
        mutants=not args.no_mutants,
        max_mutants=args.max_mutants,
        connect_socket=args.connect,
        guided=args.guided,
    )
    try:
        report = run_farm(config)
    except (RuntimeError, OSError) as exc:
        print(f"farm: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    where = "spawned daemon" if report.spawned else f"daemon at {args.connect}"
    print("Fuzz farm campaign")
    print(f"  target: {where}")
    print(f"  programs / wire checks  {report.programs} / {report.checks}")
    print(f"  daemon accept / reject  "
          f"{report.daemon_accepted} / {report.daemon_rejected}")
    print(f"  divergences             {len(report.divergences)}")
    if report.coverage:
        print(f"  coverage points         {report.coverage['points']}")
        print(f"  coverage digest         {report.coverage['digest']}")
    print(f"  duration                {report.duration_seconds:.1f}s")
    print(f"  digest                  {report.digest()}")
    if args.json is not None:
        summary = report.as_dict()
        if report.divergences:
            summary["triage"] = [
                bug.as_dict() for bug in triage(report.divergences)
            ]
        _write_campaign_json(summary, args.json)
    if report.divergences:
        print()
        print(f"{len(report.divergences)} divergence(s):", file=sys.stderr)
        for violation in report.divergences:
            print(file=sys.stderr)
            print(violation.describe(), file=sys.stderr)
        return EXIT_STATIC
    return 0


def _cmd_bugs(args: argparse.Namespace) -> int:
    from .study.bugs import BUG_CATALOG
    from .study.report import bug_study_table

    if args.json:
        import json

        print(json.dumps([r.as_dict() for r in BUG_CATALOG], indent=2))
    else:
        print(bug_study_table())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import CheckingServer, ServerConfig

    if args.socket is None and args.port is None:
        print("serve: pass --socket PATH or --port N", file=sys.stderr)
        return EXIT_STATIC
    config = ServerConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        jobs=max(1, args.jobs),
        lanes=max(1, args.lanes),
        cache_dir=args.cache_dir,
        group_max=max(1, args.group_max),
        batch_window=max(0.0, args.batch_window) / 1000.0,
        max_queue_depth=max(0, args.max_queue_depth),
        default_deadline_ms=args.default_deadline_ms,
        hang_seconds=max(0.0, args.hang_seconds),
    )
    server = CheckingServer(config)
    try:
        kind, where = server.start()
    except OSError as exc:
        print(f"serve: cannot bind: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    if kind == "unix":
        print(
            f"listening on unix socket {where}  "
            f"(jobs={config.jobs}, lanes={config.lanes})"
        )
    else:
        host, port = where
        print(
            f"listening on {host}:{port}  "
            f"(jobs={config.jobs}, lanes={config.lanes})"
        )
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _client_connect(args):
    from .server import Client

    if args.socket is None and args.port is None:
        raise ValueError("pass --socket PATH or --port N")
    settings = dict(
        timeout=args.timeout,
        retries=max(0, args.retries),
        affinity=getattr(args, "affinity", None),
    )
    if args.socket is not None:
        return Client(socket_path=args.socket, **settings)
    return Client(host=args.host, port=args.port, **settings)


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .server import ServerError
    from .server.protocol import ProtocolError

    try:
        client = _client_connect(args)
    except (ValueError, OSError) as exc:
        print(f"client: cannot connect: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC
    try:
        with client:
            return _run_client_request(client, args)
    except ServerError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return EXIT_STATIC
    except (ProtocolError, OSError) as exc:
        print(f"client: connection failed: {exc}", file=sys.stderr)
        return EXIT_DYNAMIC


def _run_client_request(client, args: argparse.Namespace) -> int:
    import json

    request = args.request
    needed = {"check": 1, "check-text": 2, "eval": 1}.get(request, 0)
    if len(args.args) < needed:
        print(f"client: {request} needs at least {needed} argument(s)",
              file=sys.stderr)
        return EXIT_STATIC
    deadline_ms = args.deadline_ms
    if request == "check":
        response = client.try_check(args.args, deadline_ms=deadline_ms)
        if args.json:
            print(json.dumps(response, indent=2))
            return 0 if response["ok"] else EXIT_STATIC
        status = 0
        for verdict in response["verdicts"]:
            if verdict["ok"]:
                print(f"{verdict['path']}: OK")
            else:
                print(
                    f"{verdict['path']}: FAILED\n{verdict['error']}\n",
                    file=sys.stderr,
                )
                status = EXIT_STATIC
        return status
    if request == "check-text":
        name, source_path = args.args[0], args.args[1]
        text = sys.stdin.read() if source_path == "-" else Path(source_path).read_text()
        response = client.check_text(name, text, deadline_ms=deadline_ms)
        if args.json:
            print(json.dumps(response, indent=2))
            return 0 if response["ok"] else EXIT_STATIC
        if not response["ok"]:
            print(f"{name}: FAILED\n{response['error']}", file=sys.stderr)
            return EXIT_STATIC
        cached = " (cached)" if response.get("cached") else ""
        print(f"{name}: OK{cached}")
        for defn, pretty in response.get("types", {}).items():
            print(f"  {defn} : {pretty}")
        return 0
    if request == "eval":
        for rendered in client.eval(" ".join(args.args), deadline_ms=deadline_ms):
            print(rendered)
        return 0
    if request == "stats":
        print(json.dumps(client.stats(), indent=2))
        return 0
    if request == "ping":
        print(json.dumps(client.ping(), indent=2))
        return 0
    if request == "reset":
        print(json.dumps(client.reset()))
        return 0
    if request == "shutdown":
        print(json.dumps(client.shutdown()))
        return 0
    print(f"client: unknown request {request!r}", file=sys.stderr)
    return EXIT_STATIC


def _cmd_repl(args: argparse.Namespace) -> int:
    from .repl import repl

    repl()
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .study.casestudy import run_case_study
    from .study.report import (
        corpus_table,
        figure9_table,
        headline,
        math_categories_table,
    )

    result = run_case_study(scale=args.scale)
    print(figure9_table(result))
    print()
    print(corpus_table(result))
    print()
    print(math_categories_table(result))
    print()
    print(headline(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Refinement Typed Racket (λRTR) — PLDI 2016 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="type check RTR modules")
    check.add_argument("files", nargs="+")
    check.add_argument("-v", "--verbose", action="store_true",
                       help="print each definition's type")
    check.add_argument("--stats", action="store_true",
                       help="print proof-engine cache/theory statistics")
    check.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (forked); verdicts are "
                            "identical to sequential checking")
    check.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent proof-cache directory shared "
                            "across workers and runs")
    check.set_defaults(fn=_cmd_check)

    run = sub.add_parser("run", help="check and evaluate modules")
    run.add_argument("files", nargs="+")
    run.add_argument("--unchecked", action="store_true",
                     help="skip the type checker (dangerous)")
    run.add_argument("--stats", action="store_true",
                     help="print proof-engine cache/theory statistics")
    run.set_defaults(fn=_cmd_run)

    ev = sub.add_parser("eval", help="check and evaluate an expression")
    ev.add_argument("expr")
    ev.add_argument("--unchecked", action="store_true")
    ev.add_argument("--stats", action="store_true",
                    help="print proof-engine cache/theory statistics")
    ev.set_defaults(fn=_cmd_eval)

    study = sub.add_parser("study", help="run the §5 case study")
    study.add_argument("--scale", type=float, default=0.1,
                       help="corpus scale (1.0 = the paper's 1085 ops)")
    study.set_defaults(fn=_cmd_study)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of the checker (soundness oracles)"
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; fully determines every program")
    fuzz.add_argument("--count", type=int, default=200,
                      help="number of programs to generate")
    fuzz.add_argument("--shards", type=int, default=1,
                      help="worker shards (forked processes when available)")
    fuzz.add_argument("--checker", choices=["fresh", "shared"], default="fresh",
                      help="fresh Logic per shard, or the process-shared one")
    fuzz.add_argument("--inject-bug", action="store_true",
                      help="demo: fuzz a deliberately unsound checker "
                           "(refinement-blind) and watch the oracles fire")
    fuzz.add_argument("--no-mutants", action="store_true",
                      help="skip the ill-typed mutant (rejection) oracle")
    fuzz.add_argument("--max-mutants", type=int, default=4,
                      help="mutants checked per program")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="do not minimise failing programs")
    fuzz.add_argument("--max-shrinks", type=int, default=5,
                      help="failing programs to minimise")
    fuzz.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent proof-cache directory; campaigns "
                           "stop re-proving identical queries across "
                           "shards and runs")
    fuzz.add_argument("--solver-oracle", action="store_true",
                      help="differential solver oracle: check every "
                           "generated program under both the fast and "
                           "legacy solver backends and report verdict "
                           "divergences")
    fuzz.add_argument("--coverage", action="store_true",
                      help="collect per-program engine coverage vectors "
                           "and the coverage-novel seed corpus")
    fuzz.add_argument("--profile", action="store_true",
                      help="enable the engine's per-stage wall-clock "
                           "timers and print the summed breakdown")
    fuzz.add_argument("--guided", action="store_true",
                      help="coverage-guided scheduling: bias generator "
                           "family weights toward families still "
                           "reaching new engine coverage (implies "
                           "--coverage)")
    fuzz.add_argument("--json", default=None, metavar="PATH",
                      help="write the campaign summary (with triaged "
                           "violation groups) as JSON; - for stdout")
    fuzz.add_argument("--farm", action="store_true",
                      help="farm mode: run programs against a live "
                           "'repro serve' daemon (spawned unless "
                           "--connect) and diff its verdicts against a "
                           "local reference checker")
    fuzz.add_argument("--connect", default=None, metavar="SOCKET",
                      help="farm: unix socket of an already-running "
                           "daemon instead of spawning one")
    fuzz.add_argument("--budget-seconds", type=float, default=None,
                      help="farm: wall-clock budget (stops early even "
                           "if --count programs remain)")
    fuzz.add_argument("--chaos", action="store_true",
                      help="chaos mode: run the seeded fault-injection "
                           "scenarios (see 'repro chaos') over this "
                           "campaign's generated workload instead of "
                           "the differential oracles")
    fuzz.set_defaults(fn=_cmd_fuzz)

    profile = sub.add_parser(
        "profile",
        help="profile the checker over the pinned fuzz corpus "
             "(cProfile + engine stage timers)",
    )
    profile.add_argument("--seed", type=int, default=0,
                         help="corpus seed (same generator as fuzz)")
    profile.add_argument("--count", type=int, default=60,
                         help="corpus programs to check under the profiler")
    profile.add_argument("--top", type=int, default=25,
                         help="functions reported, by self time")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="write the profile artifact as JSON; "
                              "- for stdout")
    profile.set_defaults(fn=_cmd_profile)

    bugs = sub.add_parser(
        "bugs", help="print the fuzz-farm bug catalog (study/bugs.py)"
    )
    bugs.add_argument("--json", action="store_true",
                      help="print the catalog as JSON")
    bugs.set_defaults(fn=_cmd_bugs)

    serve = sub.add_parser(
        "serve", help="run the persistent checking daemon (docs/SERVER.md)"
    )
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="listen on a unix-domain socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind host (with --port)")
    serve.add_argument("--port", type=int, default=None,
                       help="listen on TCP (0 = ephemeral port)")
    serve.add_argument("-j", "--jobs", type=int, default=1,
                       help="resident worker processes for multi-file "
                            "check requests")
    serve.add_argument("--lanes", type=int, default=1,
                       help="warm engine lanes; each lane owns an engine "
                            "replica and a bounded queue, and connections "
                            "stick to one lane (optionally pinned by an "
                            "affinity key)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent proof-cache directory")
    serve.add_argument("--group-max", type=int, default=16,
                       help="max in-flight requests drained per engine group")
    serve.add_argument("--batch-window", type=float, default=0.0, metavar="MS",
                       help="theory-goal merge window in milliseconds")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="bounded request queue; requests past the "
                            "cap are shed immediately with a retryable "
                            "'overloaded' error (0 = unbounded)")
    serve.add_argument("--default-deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="deadline applied to engine requests that "
                            "carry no deadline_ms of their own")
    serve.add_argument("--hang-seconds", type=float, default=30.0,
                       help="hung-request watchdog: cancel any request "
                            "running longer than this (0 = disabled)")
    serve.set_defaults(fn=_cmd_serve)

    client = sub.add_parser(
        "client", help="send one request to a running daemon"
    )
    client.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon unix-domain socket")
    client.add_argument("--host", default="127.0.0.1",
                        help="daemon TCP host (with --port)")
    client.add_argument("--port", type=int, default=None,
                        help="daemon TCP port")
    client.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds")
    client.add_argument("--retries", type=int, default=0,
                        help="reissue retryable failures (overloaded, "
                             "deadline_exceeded) up to N times with "
                             "exponential backoff")
    client.add_argument("--affinity", default=None, metavar="KEY",
                        help="lane-affinity key: requests with the same "
                             "key always land on the same warm engine "
                             "lane of a multi-lane daemon")
    client.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS",
                        help="per-request deadline for check / "
                             "check-text / eval")
    client.add_argument("--json", action="store_true",
                        help="print the raw JSON response")
    client.add_argument("request",
                        choices=["check", "check-text", "eval", "stats",
                                 "ping", "reset", "shutdown"],
                        help="operation to perform")
    client.add_argument("args", nargs="*",
                        help="check: FILE...; check-text: NAME FILE|-; "
                             "eval: EXPR")
    client.set_defaults(fn=_cmd_client)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign against an in-process daemon",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed: workload, fault order and "
                            "report digest are all functions of it")
    chaos.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run only this scenario (repeatable, in "
                            "order); default: all of them")
    chaos.add_argument("--list", action="store_true",
                       help="list scenario names and exit")
    chaos.add_argument("--workload", type=int, default=6,
                       help="generated programs in the verification "
                            "workload")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="pool size for scenarios that fork workers")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="write the campaign report as JSON; - for "
                            "stdout")
    chaos.set_defaults(fn=_cmd_chaos)

    repl_cmd = sub.add_parser("repl", help="interactive read-check-eval loop")
    repl_cmd.set_defaults(fn=_cmd_repl)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
