"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE...``   — type check RTR modules; prints each definition's
  type or the first error (exit 1 on any failure).
* ``run FILE``        — type check, then evaluate; prints top-level results.
* ``eval 'EXPR'``     — check and evaluate a single expression.
* ``study [--scale S]`` — run the §5 case study and print Figure 9 and
  the §5.1 breakdown.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .checker.check import Checker
from .checker.errors import CheckError
from .interp.eval import run_program
from .interp.values import RacketError, value_repr
from .syntax.parser import ParseError, parse_program

__all__ = ["main"]


def _print_engine_stats(checker: Checker) -> None:
    from .study.report import engine_stats_table

    print()
    print(engine_stats_table(checker.logic.stats))


def _cmd_check(args: argparse.Namespace) -> int:
    status = 0
    checker = Checker()
    checker.logic.stats.reset()
    for filename in args.files:
        source = Path(filename).read_text()
        try:
            program = parse_program(source)
            types = checker.check_program(program)
        except (ParseError, CheckError) as exc:
            print(f"{filename}: FAILED\n{exc}\n", file=sys.stderr)
            status = 1
            continue
        print(f"{filename}: OK")
        if args.verbose:
            for name, ty in types.items():
                print(f"  {name} : {ty!r}")
    if args.stats:
        _print_engine_stats(checker)
    return status


def _cmd_run(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    checker = Checker()
    checker.logic.stats.reset()
    try:
        program = parse_program(source)
        if not args.unchecked:
            checker.check_program(program)
        _defs, results = run_program(program)
    except (ParseError, CheckError, RacketError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for value in results:
        print(value_repr(value))
    if args.stats:
        _print_engine_stats(checker)
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    checker = Checker()
    checker.logic.stats.reset()
    try:
        program = parse_program(args.expr)
        if not args.unchecked:
            checker.check_program(program)
        _defs, results = run_program(program)
    except (ParseError, CheckError, RacketError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for value in results:
        print(value_repr(value))
    if args.stats:
        _print_engine_stats(checker)
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from .repl import repl

    repl()
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .study.casestudy import run_case_study
    from .study.report import (
        corpus_table,
        figure9_table,
        headline,
        math_categories_table,
    )

    result = run_case_study(scale=args.scale)
    print(figure9_table(result))
    print()
    print(corpus_table(result))
    print()
    print(math_categories_table(result))
    print()
    print(headline(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Refinement Typed Racket (λRTR) — PLDI 2016 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="type check RTR modules")
    check.add_argument("files", nargs="+")
    check.add_argument("-v", "--verbose", action="store_true",
                       help="print each definition's type")
    check.add_argument("--stats", action="store_true",
                       help="print proof-engine cache/theory statistics")
    check.set_defaults(fn=_cmd_check)

    run = sub.add_parser("run", help="check and evaluate a module")
    run.add_argument("file")
    run.add_argument("--unchecked", action="store_true",
                     help="skip the type checker (dangerous)")
    run.add_argument("--stats", action="store_true",
                     help="print proof-engine cache/theory statistics")
    run.set_defaults(fn=_cmd_run)

    ev = sub.add_parser("eval", help="check and evaluate an expression")
    ev.add_argument("expr")
    ev.add_argument("--unchecked", action="store_true")
    ev.add_argument("--stats", action="store_true",
                    help="print proof-engine cache/theory statistics")
    ev.set_defaults(fn=_cmd_eval)

    study = sub.add_parser("study", help="run the §5 case study")
    study.add_argument("--scale", type=float, default=0.1,
                       help="corpus scale (1.0 = the paper's 1085 ops)")
    study.set_defaults(fn=_cmd_study)

    repl_cmd = sub.add_parser("repl", help="interactive read-check-eval loop")
    repl_cmd.set_defaults(fn=_cmd_repl)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
