"""The big-step reduction semantics of Figure 8.

``ρ ⊢ e ⇓ v`` — a direct transcription of the B-rules, extended with
the implementation forms (n-ary application, vectors, ``letrec``,
``set!``).  All non-``#f`` values are true in conditional tests
(B-IfTrue/B-IfFalse).
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, Tuple

from ..syntax.ast import (
    AnnE,
    AppE,
    BoolE,
    Define,
    Expr,
    FstE,
    IfE,
    IntE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    PrimE,
    Program,
    SetE,
    SndE,
    StrE,
    StructRefE,
    VarE,
    VecE,
)
from .delta import apply_prim
from .values import (
    Cell,
    Closure,
    PairV,
    PrimV,
    RacketError,
    RuntimeEnv,
    Value,
    is_truthy,
)

__all__ = ["evaluate", "run_program", "run_program_text"]

#: Loop iterations become Python recursion; give them room.
_MIN_RECURSION_LIMIT = 20_000


def _ensure_recursion_room() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


def evaluate(expr: Expr, env: Optional[RuntimeEnv] = None) -> Value:
    """``ρ ⊢ e ⇓ v``; raises RacketError for checked runtime errors."""
    _ensure_recursion_room()
    return _eval(expr, env if env is not None else {})


def _eval(expr: Expr, env: RuntimeEnv) -> Value:
    if isinstance(expr, IntE):
        return expr.value
    if isinstance(expr, BoolE):
        return expr.value
    if isinstance(expr, StrE):
        return expr.value
    if isinstance(expr, VarE):  # B-Var
        cell = env.get(expr.name)
        if cell is None:
            raise RacketError(f"unbound variable at runtime: {expr.name!r}")
        return cell.value
    if isinstance(expr, PrimE):
        return PrimV(expr.name)
    if isinstance(expr, LamE):  # B-Abs
        return Closure(expr.param_names(), expr.body, env)
    if isinstance(expr, AppE):  # B-Beta / B-Prim
        fn = _eval(expr.fn, env)
        args = tuple(_eval(arg, env) for arg in expr.args)
        return _apply(fn, args)
    if isinstance(expr, IfE):  # B-IfTrue / B-IfFalse
        if is_truthy(_eval(expr.test, env)):
            return _eval(expr.then, env)
        return _eval(expr.els, env)
    if isinstance(expr, LetE):  # B-Let
        value = _eval(expr.rhs, env)
        inner = dict(env)
        inner[expr.name] = Cell(value)
        return _eval(expr.body, inner)
    if isinstance(expr, LetRecE):
        inner = dict(env)
        cells = {}
        for name, _, _ in expr.bindings:
            cell = Cell(None)
            cells[name] = cell
            inner[name] = cell
        for name, _, lam in expr.bindings:
            cells[name].value = Closure(lam.param_names(), lam.body, inner, name)
        return _eval(expr.body, inner)
    if isinstance(expr, PairE):  # B-Pair
        return PairV(_eval(expr.fst, env), _eval(expr.snd, env))
    if isinstance(expr, FstE):  # B-Fst
        pair = _eval(expr.pair, env)
        if not isinstance(pair, PairV):
            raise RacketError("fst: not a pair")
        return pair.fst
    if isinstance(expr, SndE):  # B-Snd
        pair = _eval(expr.pair, env)
        if not isinstance(pair, PairV):
            raise RacketError("snd: not a pair")
        return pair.snd
    if isinstance(expr, VecE):
        return [_eval(elem, env) for elem in expr.elems]
    if isinstance(expr, SetE):
        cell = env.get(expr.name)
        if cell is None:
            raise RacketError(f"set!: unbound variable {expr.name!r}")
        cell.value = _eval(expr.rhs, env)
        from .values import VOID_VALUE

        return VOID_VALUE
    if isinstance(expr, AnnE):
        return _eval(expr.expr, env)
    if isinstance(expr, StructRefE):
        raise RacketError("struct fields are not supported")
    raise RacketError(f"cannot evaluate {expr!r}")


def _apply(fn: Value, args: Tuple[Value, ...]) -> Value:
    if isinstance(fn, Closure):
        if len(fn.params) != len(args):
            raise RacketError(
                f"{fn.name}: expected {len(fn.params)} arguments, got {len(args)}"
            )
        inner = dict(fn.env)
        for name, value in zip(fn.params, args):
            inner[name] = Cell(value)
        return _eval(fn.body, inner)
    if isinstance(fn, PrimV):
        return apply_prim(fn.name, args)
    raise RacketError(f"application of a non-procedure: {fn!r}")


def run_program(program: Program) -> Tuple[Dict[str, Value], Tuple[Value, ...]]:
    """Evaluate a module: returns (definition values, body values).

    Definitions may be mutually recursive (cells are pre-allocated, as
    Racket's module top level behaves).
    """
    _ensure_recursion_room()
    env: RuntimeEnv = {}
    for define in program.defines:
        env[define.name] = Cell(None)
    for define in program.defines:
        env[define.name].value = _eval(define.expr, env)
    results = tuple(_eval(expr, env) for expr in program.body)
    return {name: cell.value for name, cell in env.items()}, results


def run_program_text(source: str) -> Tuple[Dict[str, Value], Tuple[Value, ...]]:
    """Parse, expand and run a module from source text (no type check)."""
    from ..syntax.parser import parse_program

    return run_program(parse_program(source))
