"""Big-step semantics (Fig. 8) and runtime values."""

from .eval import evaluate, run_program, run_program_text
from .values import RacketError, UnsafeMemoryError

__all__ = [
    "evaluate", "run_program", "run_program_text",
    "RacketError", "UnsafeMemoryError",
]
