"""Runtime values for the big-step semantics (Figure 8).

Racket values are modelled directly: integers and booleans as Python
``int``/``bool``, strings as ``str``, mutable vectors as Python lists,
pairs as :class:`PairV`, procedures as :class:`Closure` (carrying the
captured runtime environment ρ, as in the paper's ``[ρ, λx:τ.e]``) or
:class:`PrimV`.

Runtime environments map names to :class:`Cell` boxes so that ``set!``
is visible through closures — the behaviour section 4.2's mutation
discussion depends on.

Two distinct error channels mirror the paper's discussion of safety:

* :class:`RacketError` — a *checked* runtime error (``error``,
  ``vec-ref`` out of bounds, division by zero).  Well-typed programs
  may raise these; they are graceful.
* :class:`UnsafeMemoryError` — an *unchecked* memory access went wrong
  (``unsafe-vec-ref`` out of bounds).  The soundness theorem says
  well-typed programs never raise this; the property-based soundness
  suite asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Value",
    "PairV",
    "Closure",
    "PrimV",
    "VoidV",
    "VOID_VALUE",
    "Cell",
    "RuntimeEnv",
    "RacketError",
    "UnsafeMemoryError",
    "is_truthy",
    "value_repr",
]


class RacketError(Exception):
    """A checked runtime error — (error "...") or a guarded primitive."""


class UnsafeMemoryError(Exception):
    """An unchecked (unsafe-) operation violated its contract.

    A well-typed program raising this is a soundness bug.
    """


@dataclass
class PairV:
    """An immutable cons pair."""

    fst: Any
    snd: Any

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PairV) and self.fst == other.fst and self.snd == other.snd

    def __repr__(self) -> str:
        return f"(cons {value_repr(self.fst)} {value_repr(self.snd)})"


class VoidV:
    """The unit value returned by effectful operations."""

    _instance: Optional["VoidV"] = None

    def __new__(cls) -> "VoidV":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<void>"


VOID_VALUE = VoidV()


class Cell:
    """A mutable binding box (shared by closures, assigned by set!)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"#<cell {value_repr(self.value)}>"


RuntimeEnv = Dict[str, Cell]


@dataclass
class Closure:
    """``[ρ, λx̄:τ̄.e]`` — a function value with its captured environment."""

    params: Tuple[str, ...]
    body: Any  # Expr; typed as Any to avoid an import cycle
    env: RuntimeEnv
    name: str = "<anonymous>"

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


@dataclass(frozen=True)
class PrimV:
    """A primitive operation as a first-class value."""

    name: str

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


Value = Any  # int | bool | str | list | PairV | Closure | PrimV | VoidV


def is_truthy(value: Value) -> bool:
    """Racket truthiness: everything but ``#f`` is true (B-IfTrue)."""
    return value is not False


def value_repr(value: Value) -> str:
    if value is True:
        return "#t"
    if value is False:
        return "#f"
    if isinstance(value, list):
        return "#(" + " ".join(value_repr(v) for v in value) + ")"
    if isinstance(value, str):
        return repr(value)
    return repr(value)
