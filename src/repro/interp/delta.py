"""δ: runtime behaviour of the primitive operations (B-Prim).

Every name in the Δ table (:mod:`repro.checker.prims`) has an
implementation here; a test asserts the two tables stay in sync.

Note the paper's definition ``(define safe-vec-ref unsafe-vec-ref)``:
the safe variants perform *no* runtime check — their safety is exactly
the static guarantee.  To make soundness empirically falsifiable, the
unsafe/safe accessors raise :class:`UnsafeMemoryError` on a bad index
(simulating memory unsafety), while the checked ``vec-ref`` raises the
graceful :class:`RacketError`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from .values import (
    PairV,
    RacketError,
    UnsafeMemoryError,
    VOID_VALUE,
    Value,
    value_repr,
)

__all__ = ["DELTA", "apply_prim"]

_FIXNUM_BOUND = 2**62


def _require_int(value: Value, who: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RacketError(f"{who}: expected an integer, got {value_repr(value)}")
    return value


def _require_vec(value: Value, who: str) -> list:
    if not isinstance(value, list):
        raise RacketError(f"{who}: expected a vector, got {value_repr(value)}")
    return value


def _checked_index(vec: list, index: Value, who: str) -> int:
    i = _require_int(index, who)
    if not 0 <= i < len(vec):
        raise RacketError(f"{who}: index {i} out of range for length {len(vec)}")
    return i


def _unsafe_index(vec: list, index: Value, who: str) -> int:
    i = _require_int(index, who)
    if not 0 <= i < len(vec):
        raise UnsafeMemoryError(
            f"{who}: unchecked access at {i} in a vector of length {len(vec)}"
        )
    return i


def _fx(value: int, who: str) -> int:
    if not -_FIXNUM_BOUND <= value < _FIXNUM_BOUND:
        raise RacketError(f"{who}: fixnum overflow")
    return value


def _div_guard(b: int, who: str) -> int:
    if b == 0:
        raise RacketError(f"{who}: division by zero")
    return b


def _is_int(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _error_prim(msg: Value) -> Value:
    raise RacketError(msg if isinstance(msg, str) else value_repr(msg))


def _equal(a: Value, b: Value) -> bool:
    if isinstance(a, PairV) and isinstance(b, PairV):
        return _equal(a.fst, b.fst) and _equal(a.snd, b.snd)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    return a == b


DELTA: Dict[str, Tuple[int, Callable[..., Value]]] = {
    # predicates
    "not": (1, lambda x: x is False),
    "int?": (1, _is_int),
    "bool?": (1, lambda x: isinstance(x, bool)),
    "pair?": (1, lambda x: isinstance(x, PairV)),
    "str?": (1, lambda x: isinstance(x, str)),
    "void?": (1, lambda x: x is VOID_VALUE),
    "zero?": (1, lambda a: _require_int(a, "zero?") == 0),
    "even?": (1, lambda a: _require_int(a, "even?") % 2 == 0),
    "odd?": (1, lambda a: _require_int(a, "odd?") % 2 == 1),
    # arithmetic (16)
    "+": (2, lambda a, b: _require_int(a, "+") + _require_int(b, "+")),
    "-": (2, lambda a, b: _require_int(a, "-") - _require_int(b, "-")),
    "*": (2, lambda a, b: _require_int(a, "*") * _require_int(b, "*")),
    "quotient": (2, lambda a, b: int(
        _require_int(a, "quotient") / _div_guard(_require_int(b, "quotient"), "quotient")
    )),
    "remainder": (2, lambda a, b: _require_int(a, "remainder")
                  - int(a / _div_guard(_require_int(b, "remainder"), "remainder")) * b),
    "modulo": (2, lambda a, b: _require_int(a, "modulo")
               % _div_guard(_require_int(b, "modulo"), "modulo")),
    "abs": (1, lambda a: abs(_require_int(a, "abs"))),
    "min": (2, lambda a, b: min(_require_int(a, "min"), _require_int(b, "min"))),
    "max": (2, lambda a, b: max(_require_int(a, "max"), _require_int(b, "max"))),
    "add1": (1, lambda a: _require_int(a, "add1") + 1),
    "sub1": (1, lambda a: _require_int(a, "sub1") - 1),
    "=": (2, lambda a, b: _require_int(a, "=") == _require_int(b, "=")),
    "<": (2, lambda a, b: _require_int(a, "<") < _require_int(b, "<")),
    "<=": (2, lambda a, b: _require_int(a, "<=") <= _require_int(b, "<=")),
    ">": (2, lambda a, b: _require_int(a, ">") > _require_int(b, ">")),
    ">=": (2, lambda a, b: _require_int(a, ">=") >= _require_int(b, ">=")),
    # fixnum (12) — same semantics with overflow checks
    "fx+": (2, lambda a, b: _fx(a + b, "fx+")),
    "fx-": (2, lambda a, b: _fx(a - b, "fx-")),
    "fx*": (2, lambda a, b: _fx(a * b, "fx*")),
    "fx=": (2, lambda a, b: a == b),
    "fx<": (2, lambda a, b: a < b),
    "fx<=": (2, lambda a, b: a <= b),
    "fx>": (2, lambda a, b: a > b),
    "fx>=": (2, lambda a, b: a >= b),
    "fxabs": (1, lambda a: _fx(abs(a), "fxabs")),
    "fxmin": (2, lambda a, b: min(a, b)),
    "fxmax": (2, lambda a, b: max(a, b)),
    "fxmodulo": (2, lambda a, b: a % _div_guard(b, "fxmodulo")),
    # vectors
    "len": (1, lambda v: len(_require_vec(v, "len"))),
    "vec-ref": (2, lambda v, i: _require_vec(v, "vec-ref")[
        _checked_index(_require_vec(v, "vec-ref"), i, "vec-ref")
    ]),
    "vec-set!": (3, lambda v, i, x: _vec_set(
        _require_vec(v, "vec-set!"),
        _checked_index(_require_vec(v, "vec-set!"), i, "vec-set!"),
        x,
    )),
    # The safe variants are the unsafe ones (the paper's definition):
    # the bounds obligation was discharged statically.
    "safe-vec-ref": (2, lambda v, i: _require_vec(v, "safe-vec-ref")[
        _unsafe_index(_require_vec(v, "safe-vec-ref"), i, "safe-vec-ref")
    ]),
    "safe-vec-set!": (3, lambda v, i, x: _vec_set(
        _require_vec(v, "safe-vec-set!"),
        _unsafe_index(_require_vec(v, "safe-vec-set!"), i, "safe-vec-set!"),
        x,
    )),
    "unsafe-vec-ref": (2, lambda v, i: _require_vec(v, "unsafe-vec-ref")[
        _unsafe_index(_require_vec(v, "unsafe-vec-ref"), i, "unsafe-vec-ref")
    ]),
    "unsafe-vec-set!": (3, lambda v, i, x: _vec_set(
        _require_vec(v, "unsafe-vec-set!"),
        _unsafe_index(_require_vec(v, "unsafe-vec-set!"), i, "unsafe-vec-set!"),
        x,
    )),
    "make-vec": (2, lambda n, x: _make_vec(n, x)),
    "vec-fill!": (2, lambda v, x: _vec_fill(_require_vec(v, "vec-fill!"), x)),
    # equal?
    "equal?": (2, _equal),
    # bitvector operations (byte-oriented, on non-negative integers)
    "AND": (2, lambda a, b: _require_int(a, "AND") & _require_int(b, "AND")),
    "OR": (2, lambda a, b: _require_int(a, "OR") | _require_int(b, "OR")),
    "XOR": (2, lambda a, b: _require_int(a, "XOR") ^ _require_int(b, "XOR")),
    "NOT": (1, lambda a: (~_require_int(a, "NOT")) & 0xFF),
    "SHL": (2, lambda a, b: _require_int(a, "SHL") << _require_int(b, "SHL")),
    "SHR": (2, lambda a, b: _require_int(a, "SHR") >> _require_int(b, "SHR")),
    # misc
    "void": (0, lambda: VOID_VALUE),
    "error": (1, _error_prim),
    "string-length": (1, lambda s: len(s)),
    "string-ref": (2, lambda s, i: ord(s[_checked_index(list(s), i, "string-ref")])),
    "safe-string-ref": (2, lambda s, i: ord(s[_unsafe_index(list(s), i, "safe-string-ref")])),
    "string-append": (2, lambda a, b: a + b),
}


def _vec_set(vec: list, index: int, value: Value) -> Value:
    vec[index] = value
    return VOID_VALUE


def _make_vec(n: Value, fill: Value) -> list:
    size = _require_int(n, "make-vec")
    if size < 0:
        raise RacketError("make-vec: negative length")
    return [fill] * size


def _vec_fill(vec: list, value: Value) -> Value:
    for i in range(len(vec)):
        vec[i] = value
    return VOID_VALUE


def apply_prim(name: str, args: Tuple[Value, ...]) -> Value:
    entry = DELTA.get(name)
    if entry is None:
        raise RacketError(f"unknown primitive {name!r}")
    arity, fn = entry
    if len(args) != arity:
        raise RacketError(f"{name}: expected {arity} arguments, got {len(args)}")
    return fn(*args)
