"""Type checker diagnostics."""

from __future__ import annotations

from typing import Optional

__all__ = ["CheckError", "UnsupportedFeature", "UnboundVariable", "ArityError"]


class CheckError(Exception):
    """A type error, formatted like the paper's example error box::

        Type Checker error in (safe-vec-ref B i)
        argument 2, expected:
          (Refine [i : Int] (∧ (≤ 0 i) (< i (len B))))
        but given: Int
    """

    def __init__(self, message: str, expr: Optional[object] = None):
        self.expr = expr
        if expr is not None:
            message = f"Type Checker error in {expr!r}\n{message}"
        super().__init__(message)


class UnsupportedFeature(CheckError):
    """A language feature RTR recognises but does not verify.

    Section 5.1's "Unimplemented features" category (e.g. dependent
    record fields): programs using these features fail with this error,
    which the case-study harness counts separately.
    """


class UnboundVariable(CheckError):
    """Reference to a variable not in scope."""


class ArityError(CheckError):
    """Application with the wrong number of arguments."""
