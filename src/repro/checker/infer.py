"""Local type inference (sections 4.3 and 4.4).

Two inference problems arise when scaling λRTR to real programs:

1. **Polymorphic instantiation** (§4.3).  Typed Racket uses local type
   inference (Pierce & Turner); the paper extends the constraint
   generation judgment with the CG-Ref rules so that it recurses
   through refinement types.  :func:`instantiate_poly` implements that
   constraint generation: lower bounds are gathered for each unknown
   type variable by matching the actual argument types (with
   refinements stripped, CG-RefLower) against the declared domains
   (recursing under refinements, CG-Ref), then each variable is solved
   as the union of its lower bounds.

2. **Loop-lambda domains** (§4.4).  Post-expansion ``for`` loops bind
   un-annotatable λ parameters.  :func:`candidate_signatures`
   reproduces the paper's heuristic: parameters that flow (directly or
   indirectly) into a vector-index position are tried at ``Nat``
   instead of ``Int``; if the heuristic signature fails, plain ``Int``
   is retried.  (The paper notes — and our benches reproduce — that
   this fails for reverse iteration.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..tr.parse import NAT
from ..tr.types import (
    BOOL,
    BOT,
    INT,
    TOP,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Type,
    Union,
    Vec,
    make_union,
)
from ..tr.subst import type_subst_tvars
from ..syntax.ast import (
    AnnE,
    AppE,
    Expr,
    FstE,
    IfE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    PrimE,
    SetE,
    SndE,
    StructRefE,
    VarE,
    VecE,
)

__all__ = ["instantiate_poly", "candidate_signatures", "index_flow_vars"]

#: Primitives whose second argument is an index into a sized value.
_INDEX_PRIMS = {
    "vec-ref",
    "vec-set!",
    "safe-vec-ref",
    "safe-vec-set!",
    "unsafe-vec-ref",
    "unsafe-vec-set!",
    "string-ref",
    "safe-string-ref",
}


# ----------------------------------------------------------------------
# polymorphic instantiation (CG rules)
# ----------------------------------------------------------------------
def _strip_refinements(ty: Type) -> Type:
    """CG-RefLower: ``{x:τ|ψ} <: σ`` generates the constraints of ``τ <: σ``."""
    while isinstance(ty, Refine):
        ty = ty.base
    return ty


def _generate(formal: Type, actual: Type, unknowns: FrozenSet[str],
              bounds: Dict[str, List[Type]]) -> None:
    """Collect lower bounds for ``unknowns`` from ``actual <: formal``."""
    if isinstance(formal, Refine):
        # CG-Ref / CG-RefUpper: recurse into the refined type.
        _generate(formal.base, actual, unknowns, bounds)
        return
    actual = _strip_refinements(actual)
    if isinstance(formal, TVar) and formal.name in unknowns:
        bounds[formal.name].append(actual)
        return
    if isinstance(actual, Union) and not isinstance(formal, Union):
        # e.g. a conditional join of refined vectors against (Vecof A):
        # every member contributes its bounds.
        for member in actual.members:
            _generate(formal, member, unknowns, bounds)
        return
    if isinstance(formal, Vec) and isinstance(actual, Vec):
        _generate(formal.elem, actual.elem, unknowns, bounds)
        return
    if isinstance(formal, Pair) and isinstance(actual, Pair):
        _generate(formal.fst, actual.fst, unknowns, bounds)
        _generate(formal.snd, actual.snd, unknowns, bounds)
        return
    if isinstance(formal, Union) and isinstance(actual, Union):
        return  # no structural guidance
    if isinstance(formal, Fun) and isinstance(actual, Fun):
        if formal.arity == actual.arity:
            for (_, f_dom), (_, a_dom) in zip(formal.args, actual.args):
                _generate(a_dom, f_dom, unknowns, bounds)  # contravariant
            _generate(formal.result.type, actual.result.type, unknowns, bounds)


def instantiate_poly(poly: Poly, arg_types: Sequence[Type]) -> Optional[Fun]:
    """Solve a polymorphic application's type variables (§4.3).

    Returns the instantiated monomorphic function type, or ``None`` if
    the body is not a function or arities mismatch.  Unconstrained
    variables solve to ⊥ (the standard local-type-inference choice for
    a variable appearing only covariantly).
    """
    body = poly.body
    if not isinstance(body, Fun) or body.arity != len(arg_types):
        return None
    unknowns = frozenset(poly.tvars)
    bounds: Dict[str, List[Type]] = {name: [] for name in poly.tvars}
    for (_, formal), actual in zip(body.args, arg_types):
        _generate(formal, actual, unknowns, bounds)
    solution: Dict[str, Type] = {}
    for name in poly.tvars:
        lower = bounds[name]
        solution[name] = make_union(lower) if lower else BOT
    instantiated = type_subst_tvars(body, solution)
    assert isinstance(instantiated, Fun)
    return instantiated


# ----------------------------------------------------------------------
# the §4.4 Nat heuristic for loop lambdas
# ----------------------------------------------------------------------
def _free_vars(expr: Expr, acc: Set[str]) -> None:
    if isinstance(expr, VarE):
        acc.add(expr.name)
    elif isinstance(expr, LamE):
        _free_vars(expr.body, acc)
    elif isinstance(expr, AppE):
        _free_vars(expr.fn, acc)
        for arg in expr.args:
            _free_vars(arg, acc)
    elif isinstance(expr, IfE):
        _free_vars(expr.test, acc)
        _free_vars(expr.then, acc)
        _free_vars(expr.els, acc)
    elif isinstance(expr, LetE):
        _free_vars(expr.rhs, acc)
        _free_vars(expr.body, acc)
    elif isinstance(expr, LetRecE):
        for _, _, lam in expr.bindings:
            _free_vars(lam, acc)
        _free_vars(expr.body, acc)
    elif isinstance(expr, PairE):
        _free_vars(expr.fst, acc)
        _free_vars(expr.snd, acc)
    elif isinstance(expr, (FstE, SndE)):
        _free_vars(expr.pair, acc)
    elif isinstance(expr, VecE):
        for elem in expr.elems:
            _free_vars(elem, acc)
    elif isinstance(expr, (AnnE, StructRefE)):
        _free_vars(expr.expr, acc)
    elif isinstance(expr, SetE):
        _free_vars(expr.rhs, acc)


def _index_positions(expr: Expr, direct: Set[str],
                     let_rhs: Dict[str, Set[str]]) -> None:
    """Record vars in index positions and let-binding dataflow edges."""
    if isinstance(expr, AppE):
        if (
            isinstance(expr.fn, PrimE)
            and expr.fn.name in _INDEX_PRIMS
            and len(expr.args) >= 2
        ):
            vars_in_index: Set[str] = set()
            _free_vars(expr.args[1], vars_in_index)
            direct.update(vars_in_index)
        _index_positions(expr.fn, direct, let_rhs)
        for arg in expr.args:
            _index_positions(arg, direct, let_rhs)
    elif isinstance(expr, LamE):
        _index_positions(expr.body, direct, let_rhs)
    elif isinstance(expr, IfE):
        _index_positions(expr.test, direct, let_rhs)
        _index_positions(expr.then, direct, let_rhs)
        _index_positions(expr.els, direct, let_rhs)
    elif isinstance(expr, LetE):
        rhs_vars: Set[str] = set()
        _free_vars(expr.rhs, rhs_vars)
        let_rhs.setdefault(expr.name, set()).update(rhs_vars)
        _index_positions(expr.rhs, direct, let_rhs)
        _index_positions(expr.body, direct, let_rhs)
    elif isinstance(expr, LetRecE):
        for _, _, lam in expr.bindings:
            _index_positions(lam, direct, let_rhs)
        _index_positions(expr.body, direct, let_rhs)
    elif isinstance(expr, PairE):
        _index_positions(expr.fst, direct, let_rhs)
        _index_positions(expr.snd, direct, let_rhs)
    elif isinstance(expr, (FstE, SndE)):
        _index_positions(expr.pair, direct, let_rhs)
    elif isinstance(expr, VecE):
        for elem in expr.elems:
            _index_positions(elem, direct, let_rhs)
    elif isinstance(expr, (AnnE, StructRefE)):
        _index_positions(expr.expr, direct, let_rhs)
    elif isinstance(expr, SetE):
        _index_positions(expr.rhs, direct, let_rhs)


def index_flow_vars(body: Expr) -> FrozenSet[str]:
    """Variables that flow, directly or indirectly, into an index slot.

    The indirect case covers the expansion's ``(define i pos)``: ``i``
    is used as an index and is let-bound to ``pos``, so ``pos`` flows
    too.  Computed as a fixpoint over let-binding edges.
    """
    direct: Set[str] = set()
    let_rhs: Dict[str, Set[str]] = {}
    _index_positions(body, direct, let_rhs)
    flowing = set(direct)
    changed = True
    while changed:
        changed = False
        for name, rhs_vars in let_rhs.items():
            if name in flowing and not rhs_vars <= flowing:
                flowing |= rhs_vars
                changed = True
    return frozenset(flowing)


def candidate_signatures(lam: LamE) -> Iterator[Tuple[Tuple[Type, ...], Type]]:
    """Candidate (domains, range) signatures for an unannotated loop λ.

    Explicit parameter annotations are always respected.  For the rest,
    the first candidate applies the Nat heuristic to index-flowing
    parameters; later candidates fall back to ``Int`` everywhere, and a
    few alternative ranges cover non-numeric accumulators.
    """
    flowing = index_flow_vars(lam.body)

    def domains(use_heuristic: bool) -> Tuple[Type, ...]:
        out: List[Type] = []
        for name, ann in lam.params:
            if ann is not None:
                out.append(ann)
            elif use_heuristic and name in flowing:
                out.append(NAT)
            else:
                out.append(INT)
        return tuple(out)

    heuristic = domains(True)
    plain = domains(False)
    # Nat is tried before Int: a more specific range helps enclosing
    # obligations (e.g. a Nat-returning definition), and loops whose
    # accumulator is a plain Int fail it quickly and fall through.
    ranges = (NAT, INT, BOOL, VOID, TOP)
    seen: Set[Tuple[Tuple[Type, ...], Type]] = set()
    for rng in ranges:
        for doms in (heuristic, plain):
            key = (doms, rng)
            if key not in seen:
                seen.add(key)
                yield key
