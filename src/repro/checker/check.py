"""The λRTR typing judgment (Figure 4), made algorithmic (section 4.1).

``Checker.synth`` assigns every expression a type-result
``(τ ; ψ+ | ψ- ; o)``.  Subsumption is inlined: elimination positions
perform explicit proof obligations (``Γ ⊢ o ∈ τ`` via the logic), and
existential binders on sub-results are propagated upward rather than
simplified at each step — both techniques the paper describes for
scaling the declarative system.

Highlights:

* **T-App** substitutes actual symbolic objects into dependent domains
  and the range (the lifting substitution ``R[x ⟹τ o]``); arguments
  with null objects are opened as existentials.
* **T-If** projects then/else propositions into the branches, detects
  dead branches (Γ ⊢ ff) so the `dot-prod` dynamic-check idiom works,
  and joins branch results.
* **T-Let** records the binding's type, its then/else disjunction
  ``ψx``, and the alias ``x ≡ o₁`` — eagerly collapsed onto a
  representative object (section 4.1).
* **letrec** (the residue of the ``for`` macros) infers un-annotatable
  λ domains with the section 4.4 Nat heuristic.
* **Mutation** (section 4.2): ``set!`` targets get no symbolic object,
  so no occurrence information is ever learned from tests on them.
"""

from __future__ import annotations

import gc
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.env import Env
from ..logic.prove import Logic
from ..syntax.ast import (
    AnnE,
    AppE,
    BoolE,
    Define,
    Expr,
    FstE,
    IfE,
    IntE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    PrimE,
    Program,
    SetE,
    SndE,
    StrE,
    StructRefE,
    VarE,
    VecE,
)
from ..tr.objects import (
    FST,
    LEN,
    NULL,
    SND,
    LinExpr,
    Obj,
    Var,
    lin_scale,
    obj_field,
    obj_int,
    obj_pair,
)
from ..tr.props import (
    FF,
    IsType,
    Prop,
    TT,
    lin_eq,
    make_alias,
    make_and,
    make_is,
    make_not,
    make_or,
)
from ..tr.results import (
    TypeResult,
    fresh_name,
    reset_fresh_names,
    result_of_type,
    true_result,
)
from ..tr.subst import close_result, lift_subst, result_subst, type_subst
from ..tr.types import (
    BOT,
    BOOL,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    FalseT,
    Fun,
    Pair,
    Poly,
    Refine,
    TrueT,
    Type,
    Union,
    Vec,
    make_union,
)
from .errors import ArityError, CheckError, UnboundVariable, UnsupportedFeature
from .infer import candidate_signatures, instantiate_poly
from .mutation import mutated_variables
from .prims import prim_type
from ..tr.parse import NAT
from ..tr.pretty import pretty_result, pretty_type

__all__ = ["Checker", "check_program_text", "shared_logic"]

#: The process-wide default proof engine.  Hash-consing makes its caches
#: content-addressed (exact environment fingerprints + goals), so
#: sharing them across checker instances is sound — a hit returns
#: precisely what the search would recompute — and lets repeated checks
#: of overlapping programs (REPL turns, watch modes, corpora) reuse
#: proofs and theory translations instead of starting cold.
_SHARED_LOGIC: Optional[Logic] = None


def shared_logic() -> Logic:
    """The lazily-created process-wide :class:`Logic` instance."""
    global _SHARED_LOGIC
    if _SHARED_LOGIC is None:
        _SHARED_LOGIC = Logic()
    return _SHARED_LOGIC


class Checker:
    """The RTR type checker."""

    def __init__(self, logic: Optional[Logic] = None, nat_heuristic: bool = True):
        #: one Logic threads the whole program (and, by default, the
        #: whole process): environments, proof caches and theory
        #: sessions persist across every judgment the checker consults.
        self.logic = logic if logic is not None else shared_logic()
        #: section 4.4's inference heuristic; off reverts to plain Int.
        self.nat_heuristic = nat_heuristic
        self._mutated: frozenset = frozenset()
        #: declared types of mutable bindings — set! must preserve them
        #: (including refinements, which would otherwise be unpacked
        #: into the environment and lost).
        self._declared: Dict[str, Type] = {}

    def _bind(self, env: Env, name: str, ty: Type) -> Env:
        """Record a binding; mutable bindings keep their declared type.

        Singleton boolean types are widened for mutable bindings (as
        Typed Racket generalises literal types at mutable positions),
        so ``(let ([flag #t]) (set! flag #f) ...)`` checks.
        """
        if name in self._mutated:
            if isinstance(ty, (TrueT, FalseT)):
                ty = BOOL
            self._declared[name] = ty
        return self.logic.extend(env, IsType(Var(name), ty))

    # ==================================================================
    # programs
    # ==================================================================
    def check_program(self, program: Program) -> Dict[str, Type]:
        """Check a whole module; returns the type of each definition.

        Raises :class:`CheckError` (or a subclass) on the first
        ill-typed definition or body expression.
        """
        # Checking allocates heavily (environment snapshots, interned
        # nodes) and, like the solver cores, creates almost no cyclic
        # garbage — the exceptions caught during loop-signature
        # inference are the lone source, and they are reclaimed when
        # collection resumes.  Pausing the cyclic collector for the
        # duration keeps generation scans out of the hot path.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._check_program(program)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _check_program(self, program: Program) -> Dict[str, Type]:
        # Restart the fresh-name counter at the program's floor: names
        # drawn during checking are deterministic per program (so
        # re-checks hit the content-addressed caches) yet can never
        # collide with — or be captured by — any ``%``-name already
        # embedded in the program's types (see Program.fresh_floor).
        reset_fresh_names(getattr(program, "fresh_floor", 0))
        self._mutated = mutated_variables(program)
        env = Env()
        types: Dict[str, Type] = {}
        # Annotated definitions are in scope everywhere (mutual recursion).
        for define in program.defines:
            if define.annotation is not None:
                env = self._bind(env, define.name, define.annotation)
                types[define.name] = define.annotation
        for define in program.defines:
            if define.annotation is not None:
                self.check_against(env, define.expr, define.annotation)
            else:
                if isinstance(define.expr, LamE) and any(
                    ann is None for _, ann in define.expr.params
                ):
                    # Unannotated function definition: apply the same
                    # candidate inference as loop lambdas (§4.4).
                    fun_ty = self._infer_loop_signature(
                        env, define.name, define.expr
                    )
                    types[define.name] = fun_ty
                    env = self._bind(env, define.name, fun_ty)
                    continue
                result = self.synth(env, define.expr)
                result = close_result(result)
                types[define.name] = result.type
                env = self._bind(env, define.name, result.type)
                if define.name not in self._mutated and not result.obj.is_null():
                    env = self.logic.extend(
                        env, make_alias(Var(define.name), result.obj)
                    )
        for expr in program.body:
            self.synth(env, expr)
        return types

    # ==================================================================
    # synthesis:  Γ ⊢ e : (τ ; ψ+ | ψ- ; o)
    # ==================================================================
    def synth(self, env: Env, expr: Expr) -> TypeResult:
        if isinstance(expr, IntE):
            # Theory-enriched T-Int: the literal is its own object.
            return true_result(INT, obj_int(expr.value))
        if isinstance(expr, BoolE):
            if expr.value:
                return TypeResult(TRUE, TT, FF, NULL)
            return TypeResult(FALSE, FF, TT, NULL)
        if isinstance(expr, StrE):
            return true_result(STR)
        if isinstance(expr, PrimE):
            return true_result(prim_type(expr.name))
        if isinstance(expr, VarE):
            return self._synth_var(env, expr)
        if isinstance(expr, LamE):
            return self._synth_lambda(env, expr)
        if isinstance(expr, AppE):
            return self._synth_app(env, expr)
        if isinstance(expr, IfE):
            return self._synth_if(env, expr)
        if isinstance(expr, LetE):
            return self._synth_let(env, expr)
        if isinstance(expr, LetRecE):
            return self._synth_letrec(env, expr)
        if isinstance(expr, PairE):
            return self._synth_pair(env, expr)
        if isinstance(expr, FstE):
            return self._synth_field(env, expr.pair, FST, expr)
        if isinstance(expr, SndE):
            return self._synth_field(env, expr.pair, SND, expr)
        if isinstance(expr, VecE):
            return self._synth_vector(env, expr)
        if isinstance(expr, SetE):
            return self._synth_set(env, expr)
        if isinstance(expr, AnnE):
            return self._synth_ann(env, expr)
        if isinstance(expr, StructRefE):
            raise UnsupportedFeature(
                "dependent record fields are not supported by RTR", expr
            )
        raise CheckError(f"cannot type check {expr!r}", expr)

    # ------------------------------------------------------------- T-Var
    def _synth_var(self, env: Env, expr: VarE) -> TypeResult:
        if expr.name in self._mutated:
            # section 4.2: no symbolic object for mutable variables.
            # Reads see the declared type — an invariant every set!
            # preserves — never occurrence-refined information.
            ty = self._declared.get(expr.name)
            if ty is None:
                ty = self.logic._lookup(env, Var(expr.name), 0)
            if ty is None:
                raise UnboundVariable(f"unbound variable {expr.name!r}", expr)
            return TypeResult(ty, TT, TT, NULL)
        ty = self.logic._lookup(env, Var(expr.name), 0)
        if ty is None:
            raise UnboundVariable(f"unbound variable {expr.name!r}", expr)
        obj = Var(expr.name)
        return TypeResult(ty, make_not(obj, FALSE), make_is(obj, FALSE), obj)

    # ------------------------------------------------------------- T-Abs
    def _synth_lambda(self, env: Env, expr: LamE) -> TypeResult:
        args: List[Tuple[str, Type]] = []
        inner = env
        for name, ann in expr.params:
            if ann is None:
                raise CheckError(
                    "cannot infer a type for this λ parameter; "
                    "add an annotation or an expected type",
                    expr,
                )
            args.append((name, ann))
            inner = self._bind(inner, name, ann)
        body_result = self.synth(inner, expr.body)
        return true_result(Fun(tuple(args), body_result))

    # ------------------------------------------------------------- T-App
    def _synth_app(self, env: Env, expr: AppE) -> TypeResult:
        fn_result = self.synth(env, expr.fn)
        env, binders = self._open(env, fn_result)
        fn_ty = fn_result.type
        while isinstance(fn_ty, Refine):
            fn_ty = fn_ty.base

        arg_results: List[TypeResult] = []
        arg_objs: List[Obj] = []
        arg_types: List[Type] = []
        correlations: List[Prop] = []
        for arg in expr.args:
            result = self.synth(env, arg)
            env, opened = self._open(env, result)
            binders += opened
            arg_results.append(result)
            arg_types.append(result.type)
            obj = result.obj
            if obj.is_null():
                # Lifting substitution's existential side, done eagerly.
                fresh = fresh_name("arg")
                fresh_var = Var(fresh)
                env = self.logic.extend(env, IsType(fresh_var, result.type))
                # Keep the argument's then/else knowledge: the fresh
                # witness is non-#f exactly when ψ+ held (the T-Let ψx
                # trick) — this is what makes `(not (int? x))` informative.
                correlation = make_or(
                    (
                        make_and((make_not(fresh_var, FALSE), result.then_prop)),
                        make_and((make_is(fresh_var, FALSE), result.else_prop)),
                    )
                )
                env = self.logic.extend(env, correlation)
                if correlation != TT:
                    correlations.append(correlation)
                binders += ((fresh, result.type),)
                obj = fresh_var
            arg_objs.append(obj)

        if isinstance(fn_ty, Poly):
            instantiated = instantiate_poly(fn_ty, arg_types)
            if instantiated is None:
                raise CheckError(
                    f"cannot instantiate polymorphic type {fn_ty!r}", expr
                )
            fn_ty = instantiated
        if not isinstance(fn_ty, Fun):
            raise CheckError(f"application of a non-function: {fn_result.type!r}", expr)
        if fn_ty.arity != len(expr.args):
            raise ArityError(
                f"expected {fn_ty.arity} arguments, got {len(expr.args)}", expr
            )

        mapping: Dict[str, Obj] = {}
        for position, ((formal, domain), obj) in enumerate(
            zip(fn_ty.args, arg_objs), start=1
        ):
            expected = type_subst(domain, mapping)
            if not self.logic.proves(env, IsType(obj, expected)):
                raise CheckError(
                    f"argument {position}, expected:\n"
                    f"  {pretty_type(expected)}\n"
                    f"but given: {pretty_type(arg_results[position - 1].type)}",
                    expr,
                )
            mapping[formal] = obj

        result = result_subst(fn_ty.result, mapping)
        result = self._patch_multiplication(expr, arg_objs, result)
        if correlations:
            extra = make_and(correlations)
            result = TypeResult(
                result.type,
                make_and((result.then_prop, extra)),
                make_and((result.else_prop, extra)),
                result.obj,
                result.binders,
            )
        return result.with_binders(binders)

    def _patch_multiplication(
        self, expr: AppE, arg_objs: Sequence[Obj], result: TypeResult
    ) -> TypeResult:
        """``(* c e)`` with a literal factor is linear: give it an object."""
        if not (isinstance(expr.fn, PrimE) and expr.fn.name in ("*", "fx*")):
            return result
        if len(arg_objs) != 2 or not result.obj.is_null():
            return result
        left, right = arg_objs
        scaled: Optional[Obj] = None
        if isinstance(left, LinExpr) and left.is_constant():
            scaled = lin_scale(left.const, right)
        elif isinstance(right, LinExpr) and right.is_constant():
            scaled = lin_scale(right.const, left)
        if scaled is None or scaled.is_null():
            return result
        return TypeResult(
            result.type, result.then_prop, result.else_prop, scaled, result.binders
        )

    # -------------------------------------------------------------- T-If
    def _synth_if(self, env: Env, expr: IfE) -> TypeResult:
        test = self.synth(env, expr.test)
        env, binders = self._open(env, test)
        then_env = self.logic.extend(env, test.then_prop)
        else_env = self.logic.extend(env, test.else_prop)

        then_result = self._synth_branch(then_env, expr.then)
        else_result = self._synth_branch(else_env, expr.els)
        then_result = close_result(then_result)
        else_result = close_result(else_result)

        joined_type = make_union((then_result.type, else_result.type))
        then_prop = make_or(
            (
                make_and((test.then_prop, then_result.then_prop)),
                make_and((test.else_prop, else_result.then_prop)),
            )
        )
        else_prop = make_or(
            (
                make_and((test.then_prop, then_result.else_prop)),
                make_and((test.else_prop, else_result.else_prop)),
            )
        )
        obj = NULL
        if not then_result.obj.is_null() and not else_result.obj.is_null():
            if env.canon_obj(then_result.obj) == env.canon_obj(else_result.obj):
                obj = then_result.obj
        return TypeResult(joined_type, then_prop, else_prop, obj, binders)

    def _synth_branch(self, env: Env, expr: Expr) -> TypeResult:
        """Check a conditional branch; a dead branch contributes ⊥.

        Γ ⊢ ff admits any typing for the branch, so we do not descend
        into it — this is what lets `(unless guard (error ...))` inform
        the rest of the body.
        """
        if self.logic.proves(env, FF):
            return TypeResult(BOT, FF, FF, NULL)
        return self.synth(env, expr)

    # ------------------------------------------------------------- T-Let
    def _bind_let(self, env: Env, expr: LetE) -> Tuple[Env, TypeResult, Tuple]:
        """T-Let's environment work for one binding; returns (env', rhs, binders)."""
        rhs = self.synth(env, expr.rhs)
        env, binders = self._open(env, rhs)
        name = expr.name
        var = Var(name)
        env = self._bind(env, name, rhs.type)
        if name not in self._mutated:
            occurrence = make_or(
                (
                    make_and((make_not(var, FALSE), rhs.then_prop)),
                    make_and((make_is(var, FALSE), rhs.else_prop)),
                )
            )
            env = self.logic.extend(env, occurrence)
            if not rhs.obj.is_null():
                env = self.logic.extend(env, make_alias(var, rhs.obj))
        return env, rhs, binders

    def _synth_let(self, env: Env, expr: LetE) -> TypeResult:
        # Whole let *spines* are synthesised by one call: chains of
        # bindings are how macro towers and long bodies lower, so their
        # length tracks the program and must not consume Python stack.
        spine: List[Tuple[str, TypeResult, Tuple]] = []
        current: Expr = expr
        while isinstance(current, LetE):
            env, rhs, binders = self._bind_let(env, current)
            spine.append((current.name, rhs, binders))
            current = current.body
        out = self.synth(env, current)
        for name, rhs, binders in reversed(spine):
            obj = NULL if name in self._mutated else rhs.obj
            out = lift_subst(out, name, rhs.type, obj)
            out = out.with_binders(binders)
        return out

    # ------------------------------------------------------------ letrec
    def _synth_letrec(self, env: Env, expr: LetRecE) -> TypeResult:
        signatures: List[Type] = []
        inferred_env = env
        unresolved: List[int] = []
        for index, (name, annotation, lam) in enumerate(expr.bindings):
            if annotation is not None:
                signatures.append(annotation)
                inferred_env = self.logic.extend(
                    inferred_env, IsType(Var(name), annotation)
                )
            else:
                signatures.append(TOP)  # placeholder
                unresolved.append(index)
        for index in unresolved:
            name, _, lam = expr.bindings[index]
            fun_ty = self._infer_loop_signature(inferred_env, name, lam)
            signatures[index] = fun_ty
            inferred_env = self.logic.extend(inferred_env, IsType(Var(name), fun_ty))
        for (name, annotation, lam), signature in zip(expr.bindings, signatures):
            if annotation is not None:
                self.check_against(inferred_env, lam, signature)
            # inferred signatures were already validated during inference
        body = self.synth(inferred_env, expr.body)
        for (name, _, _), signature in zip(expr.bindings, signatures):
            body = lift_subst(body, name, signature, NULL)
        return body

    def _infer_loop_signature(self, env: Env, name: str, lam: LamE) -> Fun:
        """Try candidate domains/ranges for an unannotated loop λ (§4.4)."""
        last_error: Optional[CheckError] = None
        for domains, rng in candidate_signatures(lam):
            if not self.nat_heuristic and any(d == NAT for d in domains):
                continue
            candidate = Fun(
                tuple(zip(lam.param_names(), domains)), result_of_type(rng)
            )
            trial_env = self.logic.extend(env, IsType(Var(name), candidate))
            try:
                self.check_against(trial_env, lam, candidate)
                return candidate
            except CheckError as exc:
                last_error = exc
        raise CheckError(
            f"could not infer a type for the loop function {name!r}"
            + (f"\nlast attempt failed with:\n{last_error}" if last_error else ""),
            lam,
        )

    # ------------------------------------------------------ T-Cons / T-Fst
    def _synth_pair(self, env: Env, expr: PairE) -> TypeResult:
        fst = self.synth(env, expr.fst)
        env, binders = self._open(env, fst)
        snd = self.synth(env, expr.snd)
        env, more = self._open(env, snd)
        binders += more
        # T-Cons's lifting substitutions: components without objects get
        # existential witnesses, so ⟨o₁, o₂⟩ survives (and field access
        # on the pair normalises back to the component objects).
        objs: List[Obj] = []
        for component in (fst, snd):
            obj = component.obj
            if obj.is_null():
                fresh = fresh_name("elem")
                env = self.logic.extend(env, IsType(Var(fresh), component.type))
                binders += ((fresh, component.type),)
                obj = Var(fresh)
            objs.append(obj)
        return TypeResult(
            Pair(fst.type, snd.type), TT, FF, obj_pair(objs[0], objs[1]), binders
        )

    def _synth_field(self, env: Env, pair_expr: Expr, field: str, expr: Expr) -> TypeResult:
        result = self.synth(env, pair_expr)
        env, binders = self._open(env, result)
        component = _pair_component(result.type, field)
        if component is None:
            # Perhaps the environment knows more than the raw type.
            if not result.obj.is_null():
                known = self.logic._lookup(env, result.obj, 0)
                if known is not None:
                    component = _pair_component(known, field)
        if component is None:
            raise CheckError(
                f"{field} of a non-pair: {result.type!r}", expr
            )
        obj = obj_field(field, result.obj) if not result.obj.is_null() else NULL
        return TypeResult(
            component, make_not(obj, FALSE), make_is(obj, FALSE), obj, binders
        )

    # ------------------------------------------------------------ vectors
    def _synth_vector(self, env: Env, expr: VecE) -> TypeResult:
        binders: Tuple[Tuple[str, Type], ...] = ()
        elem_types: List[Type] = []
        for elem in expr.elems:
            result = self.synth(env, elem)
            env, opened = self._open(env, result)
            binders += opened
            elem_types.append(close_result(result).type)
        elem_ty = make_union(elem_types) if elem_types else BOT
        name = fresh_name("vec")
        refined = Refine(
            name,
            Vec(elem_ty),
            lin_eq(obj_field(LEN, Var(name)), obj_int(len(expr.elems))),
        )
        return TypeResult(refined, TT, FF, NULL, binders)

    # -------------------------------------------------------------- set!
    def _synth_set(self, env: Env, expr: SetE) -> TypeResult:
        declared = self._declared.get(expr.name)
        if declared is None:
            declared = env.var_type(expr.name)
        if declared is None:
            declared = self.logic._lookup(env, Var(expr.name), 0)
        if declared is None:
            raise UnboundVariable(f"set! of unbound variable {expr.name!r}", expr)
        rhs = self.synth(env, expr.rhs)
        env, _ = self._open(env, rhs)
        self._check_result_against(env, rhs, declared, expr)
        return true_result(VOID)

    # --------------------------------------------------------------- ann
    def _synth_ann(self, env: Env, expr: AnnE) -> TypeResult:
        if isinstance(expr.expr, LamE):
            self.check_against(env, expr.expr, expr.type)
            return true_result(expr.type)
        result = self.synth(env, expr.expr)
        inner_env, binders = self._open(env, result)
        self._check_result_against(inner_env, result, expr.type, expr)
        return TypeResult(
            expr.type, result.then_prop, result.else_prop, result.obj, binders
        )

    def _check_result_against(
        self, env: Env, result: TypeResult, expected: Type, expr: Expr
    ) -> None:
        obj = result.obj
        if obj.is_null():
            fresh = fresh_name("ascribe")
            env = self.logic.extend(env, IsType(Var(fresh), result.type))
            obj = Var(fresh)
        if not self.logic.proves(env, IsType(obj, expected)):
            raise CheckError(
                f"expected:\n  {pretty_type(expected)}\n"
                f"but given: {pretty_type(result.type)}",
                expr,
            )

    # ==================================================================
    # checking mode (annotated definitions / ascribed lambdas)
    # ==================================================================
    def check_against(self, env: Env, expr: Expr, expected: Type) -> None:
        if isinstance(expr, LamE) and isinstance(expected, Poly):
            # Rigid type variables: just check the body against the Fun.
            self.check_against(env, expr, expected.body)
            return
        if isinstance(expr, LamE) and isinstance(expected, Fun):
            self._check_lambda(env, expr, expected)
            return
        if isinstance(expr, AnnE):
            self.check_against(env, expr.expr, expr.type)
            result = true_result(expr.type)
            self._check_result_against(env, result, expected, expr)
            return
        result = self.synth(env, expr)
        env, _ = self._open(env, result)
        self._check_result_against(env, result, expected, expr)

    def _check_lambda(self, env: Env, lam: LamE, expected: Fun) -> None:
        if len(lam.params) != expected.arity:
            raise ArityError(
                f"λ has {len(lam.params)} parameters but its type expects "
                f"{expected.arity}",
                lam,
            )
        mapping: Dict[str, Obj] = {}
        inner = env
        for (param, _), (formal, domain) in zip(lam.params, expected.args):
            declared = type_subst(domain, mapping)
            inner = self._bind(inner, param, declared)
            mapping[formal] = Var(param)
        expected_result = result_subst(expected.result, mapping)
        self.check_expr(inner, lam.body, expected_result)

    # ------------------------------------------------------------------
    # expression checking mode: push the expected result into branches,
    # the algorithmic counterpart of T-Subsume applied under T-If/T-Let.
    # ------------------------------------------------------------------
    def check_expr(self, env: Env, expr: Expr, expected: TypeResult) -> None:
        # let spines are walked by a loop (stack-free, like _synth_let)
        while isinstance(expr, LetE):
            env, _rhs, _binders = self._bind_let(env, expr)
            expr = expr.body
        if isinstance(expr, IfE):
            test = self.synth(env, expr.test)
            env, _ = self._open(env, test)
            then_env = self.logic.extend(env, test.then_prop)
            else_env = self.logic.extend(env, test.else_prop)
            if not self.logic.proves(then_env, FF):
                self.check_expr(then_env, expr.then, expected)
            if not self.logic.proves(else_env, FF):
                self.check_expr(else_env, expr.els, expected)
            return
        if isinstance(expr, AnnE) and not isinstance(expr.expr, LamE):
            result = self.synth(env, expr)
            env, _ = self._open(env, result)
            if not self.logic.result_subtype(env, result, expected):
                raise CheckError(
                    f"expected result:\n  {pretty_result(expected)}\n"
                    f"but computed: {pretty_result(close_result(result))}",
                    expr,
                )
            return
        result = self.synth(env, expr)
        env, _ = self._open(env, result)
        core = TypeResult(
            result.type, result.then_prop, result.else_prop, result.obj, ()
        )
        if not self.logic.result_subtype(env, core, expected):
            raise CheckError(
                f"expected result:\n  {pretty_result(expected)}\n"
                f"but computed: {pretty_result(close_result(result))}",
                expr,
            )

    # ==================================================================
    # helpers
    # ==================================================================
    def _open(
        self, env: Env, result: TypeResult
    ) -> Tuple[Env, Tuple[Tuple[str, Type], ...]]:
        """Open a result's existential binders into the environment."""
        for name, ty in result.binders:
            env = self.logic.extend(env, IsType(Var(name), ty))
        return env, result.binders


def _pair_component(ty: Type, field: str) -> Optional[Type]:
    while isinstance(ty, Refine):
        ty = ty.base
    if isinstance(ty, Pair):
        return ty.fst if field == FST else ty.snd
    if isinstance(ty, Union) and ty.members:
        parts = [_pair_component(m, field) for m in ty.members]
        if all(p is not None for p in parts):
            return make_union(parts)  # type: ignore[arg-type]
    return None


def check_program_text(source: str, **kwargs) -> Dict[str, Type]:
    """Parse, expand and type check a whole module from source text."""
    from ..syntax.parser import parse_program

    program = parse_program(source)
    return Checker(**kwargs).check_program(program)
