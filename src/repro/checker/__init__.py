"""The λRTR type checker (Fig. 4) and its supporting passes."""

from .check import Checker, check_program_text
from .errors import ArityError, CheckError, UnboundVariable, UnsupportedFeature

__all__ = [
    "Checker", "check_program_text",
    "CheckError", "UnsupportedFeature", "UnboundVariable", "ArityError",
]
