"""Δ: the primitive type environment (Figure 3 + the section 5 enrichment).

The paper enriched the types of 36 base-environment functions to carry
theory propositions and symbolic objects: 7 vector operations, 16
arithmetic operations, 12 fixnum operations, and ``equal?``.  This
module reconstructs that environment:

* predicates emit then/else type propositions (Figure 3);
* arithmetic emits linear-arithmetic objects and comparison
  propositions (section 3.4's enrichment of T-Int and friends);
* vector operations relate results to the ``len`` field, with
  ``safe-vec-ref``/``safe-vec-set!`` demanding provably-valid indices
  (section 2.1);
* bitwise operations emit bitvector terms and propositions
  (section 2.2);
* ``equal?``'s then-proposition is an object alias.

Each entry records a category so the benchmark reproducing the §5
"modified the type of 36 functions" claim can recount them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..tr.objects import (
    BVExpr,
    LEN,
    Var,
    lin_add,
    lin_scale,
    lin_sub,
    obj_field,
    obj_int,
)
from ..tr.parse import BYTE, FIXNUM, NAT
from ..tr.props import (
    FF,
    IsType,
    NotType,
    TT,
    lin_eq,
    make_congruence,
    lin_ge,
    lin_gt,
    lin_le,
    lin_lt,
    make_alias,
    make_and,
    make_or,
    negate_prop,
)
from ..tr.results import TypeResult, result_of_type, true_result
from ..tr.types import (
    BOOL,
    BOT,
    INT,
    STR,
    TOP,
    VOID,
    FALSE,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Type,
    Vec,
)

__all__ = [
    "PrimEntry",
    "PRIMS",
    "prim_type",
    "is_prim_name",
    "PRIM_ALIASES",
    "resolve_prim_name",
    "enriched_counts",
]

#: Width tag attached to bitvector terms built by the byte-oriented ops.
BV_WIDTH = 8


@dataclass(frozen=True)
class PrimEntry:
    """One Δ entry: the primitive's type plus its §5 category tag."""

    name: str
    type: Type
    category: str  # predicate | arithmetic | fixnum | vector | bitvector | misc
    enriched: bool = True  # does the type carry theory props/objects?


def _fun(args, result: TypeResult) -> Fun:
    return Fun(tuple(args), result)


def _pred(name: str, ty: Type) -> PrimEntry:
    """Figure 3 predicate shape: x:⊤ → (B ; x ∈ τ | x ∉ τ ; ∅)."""
    x = Var("x")
    result = TypeResult(BOOL, IsType(x, ty), NotType(x, ty))
    return PrimEntry(name, _fun([("x", TOP)], result), "predicate")


def _cmp(name: str, then_builder, else_builder, domain: Type = INT,
         category: str = "arithmetic") -> PrimEntry:
    a, b = Var("a"), Var("b")
    result = TypeResult(BOOL, then_builder(a, b), else_builder(a, b))
    return PrimEntry(name, _fun([("a", domain), ("b", domain)], result), category)


def _arith(name: str, obj_builder, domain: Type = INT,
           category: str = "arithmetic") -> PrimEntry:
    a, b = Var("a"), Var("b")
    result = true_result(INT, obj_builder(a, b))
    return PrimEntry(name, _fun([("a", domain), ("b", domain)], result), category)


def _bounded(name: str, prop_builder, domain: Type = INT,
             category: str = "arithmetic") -> PrimEntry:
    """Binary op whose result is described by a range refinement."""
    a, b, r = Var("a"), Var("b"), Var("r")
    refined = Refine("r", INT, prop_builder(r, a, b))
    result = true_result(refined)
    return PrimEntry(name, _fun([("a", domain), ("b", domain)], result), category)


def _index_of(vec_name: str) -> Type:
    i = Var("i")
    return Refine(
        "i",
        INT,
        make_and((lin_le(obj_int(0), i), lin_lt(i, obj_field(LEN, Var(vec_name))))),
    )


def _bv_binop(name: str, op: str, prop_builder) -> PrimEntry:
    a, b, r = Var("a"), Var("b"), Var("r")
    obj = BVExpr(op, (a, b), BV_WIDTH)
    refined = Refine("r", INT, prop_builder(r, a, b))
    result = TypeResult(refined, TT, FF, obj)
    return PrimEntry(name, _fun([("a", NAT), ("b", NAT)], result), "bitvector")


def _build_prims() -> Dict[str, PrimEntry]:
    prims: Dict[str, PrimEntry] = {}

    def add(entry: PrimEntry) -> None:
        prims[entry.name] = entry

    a, b, n, r, x, v = Var("a"), Var("b"), Var("n"), Var("r"), Var("x"), Var("v")

    # -------------------------------------------------- predicates (Fig. 3)
    not_result = TypeResult(BOOL, IsType(x, FALSE), NotType(x, FALSE))
    add(PrimEntry("not", _fun([("x", TOP)], not_result), "predicate"))
    add(_pred("int?", INT))
    add(_pred("bool?", BOOL))
    add(_pred("pair?", Pair(TOP, TOP)))
    add(_pred("str?", STR))
    add(_pred("void?", VOID))

    # --------------------------------------------- arithmetic (16 functions)
    add(_arith("+", lin_add))
    add(_arith("-", lin_sub))
    # ``*`` is non-linear: the checker special-cases literal factors; the
    # base type returns no object.
    add(PrimEntry("*", _fun([("a", INT), ("b", INT)], true_result(INT)), "arithmetic"))
    add(PrimEntry("quotient", _fun([("a", INT), ("b", INT)], true_result(INT)),
                  "arithmetic"))
    add(PrimEntry("remainder", _fun([("a", INT), ("b", INT)], true_result(INT)),
                  "arithmetic"))
    # (modulo a b) for b > 0 yields 0 ≤ r < b; we expose the b > 0 half.
    add(_bounded("modulo", lambda r_, a_, b_: make_or((
        make_and((lin_le(obj_int(0), r_), lin_lt(r_, b_))),
        lin_le(b_, obj_int(0)),
    ))))
    add(PrimEntry(
        "abs",
        _fun(
            [("a", INT)],
            true_result(Refine("r", INT, make_and((
                lin_le(obj_int(0), Var("r")),
                make_or((lin_eq(Var("r"), a), lin_eq(lin_add(Var("r"), a), obj_int(0)))),
            )))),
        ),
        "arithmetic",
    ))
    add(_bounded("min", lambda r_, a_, b_: make_and((
        lin_le(r_, a_), lin_le(r_, b_), make_or((lin_eq(r_, a_), lin_eq(r_, b_))),
    ))))
    add(_bounded("max", lambda r_, a_, b_: make_and((
        lin_ge(r_, a_), lin_ge(r_, b_), make_or((lin_eq(r_, a_), lin_eq(r_, b_))),
    ))))
    add(PrimEntry(
        "add1",
        _fun([("a", INT)], true_result(INT, lin_add(a, obj_int(1)))),
        "arithmetic",
    ))
    add(PrimEntry(
        "sub1",
        _fun([("a", INT)], true_result(INT, lin_sub(a, obj_int(1)))),
        "arithmetic",
    ))
    add(_cmp("=", lin_eq, lambda l, r_: negate_prop(lin_eq(l, r_))))
    add(_cmp("<", lin_lt, lambda l, r_: lin_le(r_, l)))
    add(_cmp("<=", lin_le, lambda l, r_: lin_lt(r_, l)))
    add(_cmp(">", lin_gt, lambda l, r_: lin_ge(r_, l)))
    add(_cmp(">=", lin_ge, lambda l, r_: lin_gt(r_, l)))

    # ------------------------------------------------ fixnum (12 functions)
    add(_arith("fx+", lin_add, FIXNUM, "fixnum"))
    add(_arith("fx-", lin_sub, FIXNUM, "fixnum"))
    add(PrimEntry("fx*", _fun([("a", FIXNUM), ("b", FIXNUM)], true_result(INT)),
                  "fixnum"))
    add(_cmp("fx=", lin_eq, lambda l, r_: negate_prop(lin_eq(l, r_)), FIXNUM, "fixnum"))
    add(_cmp("fx<", lin_lt, lambda l, r_: lin_le(r_, l), FIXNUM, "fixnum"))
    add(_cmp("fx<=", lin_le, lambda l, r_: lin_lt(r_, l), FIXNUM, "fixnum"))
    add(_cmp("fx>", lin_gt, lambda l, r_: lin_ge(r_, l), FIXNUM, "fixnum"))
    add(_cmp("fx>=", lin_ge, lambda l, r_: lin_gt(r_, l), FIXNUM, "fixnum"))
    add(PrimEntry(
        "fxabs",
        _fun([("a", FIXNUM)], true_result(Refine("r", INT, lin_le(obj_int(0), Var("r"))))),
        "fixnum",
    ))
    add(_bounded("fxmin", lambda r_, a_, b_: make_and((
        lin_le(r_, a_), lin_le(r_, b_), make_or((lin_eq(r_, a_), lin_eq(r_, b_))),
    )), FIXNUM, "fixnum"))
    add(_bounded("fxmax", lambda r_, a_, b_: make_and((
        lin_ge(r_, a_), lin_ge(r_, b_), make_or((lin_eq(r_, a_), lin_eq(r_, b_))),
    )), FIXNUM, "fixnum"))
    add(_bounded("fxmodulo", lambda r_, a_, b_: make_or((
        make_and((lin_le(obj_int(0), r_), lin_lt(r_, b_))),
        lin_le(b_, obj_int(0)),
    )), FIXNUM, "fixnum"))

    # --------------------------------------------------- vector operations
    A = TVar("A")
    add(PrimEntry(
        "len",
        Poly(("A",), _fun([("v", Vec(A))],
                          true_result(NAT, obj_field(LEN, v)))),
        "vector",
    ))
    add(PrimEntry(
        "vec-ref",
        Poly(("A",), _fun([("v", Vec(A)), ("i", INT)], result_of_type(A))),
        "vector",
    ))
    add(PrimEntry(
        "safe-vec-ref",
        Poly(("A",), _fun([("v", Vec(A)), ("i", _index_of("v"))],
                          result_of_type(A))),
        "vector",
    ))
    add(PrimEntry(
        "vec-set!",
        Poly(("A",), _fun([("v", Vec(A)), ("i", INT), ("x", A)],
                          true_result(VOID))),
        "vector",
    ))
    add(PrimEntry(
        "safe-vec-set!",
        Poly(("A",), _fun([("v", Vec(A)), ("i", _index_of("v")), ("x", A)],
                          true_result(VOID))),
        "vector",
    ))
    add(PrimEntry(
        "make-vec",
        Poly(("A",), _fun(
            [("n", NAT), ("x", A)],
            true_result(Refine("v", Vec(A),
                               lin_eq(obj_field(LEN, Var("v")), n))),
        )),
        "vector",
    ))
    add(PrimEntry(
        "vec-fill!",
        Poly(("A",), _fun([("v", Vec(A)), ("x", A)], true_result(VOID))),
        "vector",
    ))
    # The raw unsafe accessors exist but are *not* enriched: they are the
    # paper's ``unsafe-vec-ref`` — no runtime check, no refined domain.
    add(PrimEntry(
        "unsafe-vec-ref",
        Poly(("A",), _fun([("v", Vec(A)), ("i", INT)], result_of_type(A))),
        "vector",
        enriched=False,
    ))
    add(PrimEntry(
        "unsafe-vec-set!",
        Poly(("A",), _fun([("v", Vec(A)), ("i", INT), ("x", A)],
                          true_result(VOID))),
        "vector",
        enriched=False,
    ))

    # --------------------------------------------------------------- equal?
    eq_result = TypeResult(BOOL, make_alias(a, b), TT)
    add(PrimEntry("equal?", _fun([("a", TOP), ("b", TOP)], eq_result), "equal?"))

    # ------------------------------------------------- bitvector operations
    add(_bv_binop("AND", "and", lambda r_, a_, b_: make_and((
        lin_le(obj_int(0), r_), lin_le(r_, a_), lin_le(r_, b_),
    ))))
    add(_bv_binop("OR", "or", lambda r_, a_, b_: make_and((
        lin_ge(r_, a_), lin_ge(r_, b_), lin_le(r_, lin_add(a_, b_)),
    ))))
    add(_bv_binop("XOR", "xor", lambda r_, a_, b_: make_and((
        lin_le(obj_int(0), r_), lin_le(r_, lin_add(a_, b_)),
    ))))
    not_obj = BVExpr("not", (a,), BV_WIDTH)
    add(PrimEntry(
        "NOT",
        _fun([("a", BYTE)],
             TypeResult(BYTE, TT, FF, not_obj)),
        "bitvector",
    ))
    shl_obj = BVExpr("shl", (a, b), BV_WIDTH)
    add(PrimEntry(
        "SHL",
        _fun([("a", NAT), ("b", NAT)],
             TypeResult(Refine("r", INT, lin_le(obj_int(0), Var("r"))), TT, FF, shl_obj)),
        "bitvector",
    ))
    shr_obj = BVExpr("lshr", (a, b), BV_WIDTH)
    add(PrimEntry(
        "SHR",
        _fun([("a", NAT), ("b", NAT)],
             TypeResult(Refine("r", INT, make_and((
                 lin_le(obj_int(0), Var("r")), lin_le(Var("r"), a),
             ))), TT, FF, shr_obj)),
        "bitvector",
    ))

    # -------------------------------------------------------- miscellaneous
    add(PrimEntry("void", _fun([], true_result(VOID)), "misc", enriched=False))
    add(PrimEntry("error", _fun([("msg", STR)], TypeResult(BOT, FF, FF)),
                  "misc", enriched=False))
    # Strings carry the same ``len`` field as vectors: string-length's
    # symbolic object lets the linear theory prove string indices safe
    # (the "other theories" extension the paper's conclusion anticipates).
    add(PrimEntry(
        "string-length",
        _fun([("s", STR)], true_result(NAT, obj_field(LEN, Var("s")))),
        "misc",
    ))
    add(PrimEntry(
        "string-ref",
        _fun([("s", STR), ("i", INT)], true_result(INT)),
        "misc",
        enriched=False,
    ))
    add(PrimEntry(
        "safe-string-ref",
        _fun([("s", STR), ("i", _index_of("s"))], true_result(INT)),
        "misc",
    ))
    add(PrimEntry("string-append",
                  _fun([("a", STR), ("b", STR)], true_result(STR)),
                  "misc", enriched=False))
    add(PrimEntry("zero?", _fun(
        [("a", INT)],
        TypeResult(BOOL, lin_eq(a, obj_int(0)), negate_prop(lin_eq(a, obj_int(0)))),
    ), "predicate"))
    # even?/odd? emit congruence-theory propositions — the §3.4 recipe
    # applied a third time (see repro/theories/congruence.py).
    add(PrimEntry("even?", _fun(
        [("a", INT)],
        TypeResult(BOOL, make_congruence(a, 2, 0), make_congruence(a, 2, 1)),
    ), "predicate"))
    add(PrimEntry("odd?", _fun(
        [("a", INT)],
        TypeResult(BOOL, make_congruence(a, 2, 1), make_congruence(a, 2, 0)),
    ), "predicate"))
    return prims


PRIMS: Dict[str, PrimEntry] = _build_prims()

#: Racket-surface aliases accepted by the parser.
PRIM_ALIASES: Dict[str, str] = {
    "vector-length": "len",
    "vector-ref": "vec-ref",
    "vector-set!": "vec-set!",
    "safe-vector-ref": "safe-vec-ref",
    "safe-vector-set!": "safe-vec-set!",
    "unsafe-vector-ref": "unsafe-vec-ref",
    "unsafe-vector-set!": "unsafe-vec-set!",
    "make-vector": "make-vec",
    "vector-fill!": "vec-fill!",
    "bitwise-and": "AND",
    "bitwise-ior": "OR",
    "bitwise-xor": "XOR",
    "bitwise-not": "NOT",
    "integer?": "int?",
    "boolean?": "bool?",
    "string?": "str?",
    "string-len": "string-length",
    "≤": "<=",
    "≥": ">=",
}


def resolve_prim_name(name: str) -> Optional[str]:
    if name in PRIMS:
        return name
    return PRIM_ALIASES.get(name)


def is_prim_name(name: str) -> bool:
    return resolve_prim_name(name) is not None


def prim_type(name: str) -> Type:
    resolved = resolve_prim_name(name)
    if resolved is None:
        raise KeyError(f"unknown primitive {name!r}")
    return PRIMS[resolved].type


def enriched_counts() -> Dict[str, int]:
    """Recount the §5 claim: 36 enriched base-environment functions."""
    counts: Dict[str, int] = {}
    for entry in PRIMS.values():
        if entry.enriched and entry.category in (
            "arithmetic", "fixnum", "vector", "equal?"
        ):
            counts[entry.category] = counts.get(entry.category, 0) + 1
    counts["total"] = sum(counts.values())
    return counts
