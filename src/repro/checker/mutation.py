"""The preliminary mutation pass (section 4.2).

"First, a preliminary pass identifies which variables and fields may be
mutated during program execution.  The type checker then proceeds to
type check the program, omitting symbolic objects for mutable
variables..."

Because the parser α-renames every binder to a unique name, the set of
``set!`` targets is exactly the set of mutable bindings — no scope
tracking is needed here.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from ..syntax.ast import (
    AnnE,
    AppE,
    Define,
    Expr,
    FstE,
    IfE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    Program,
    SetE,
    SndE,
    StructRefE,
    VecE,
)

__all__ = ["mutated_variables", "mutated_in_expr"]


def mutated_in_expr(expr: Expr, acc: Set[str]) -> None:
    """Accumulate the ``set!`` targets appearing anywhere in ``expr``."""
    if isinstance(expr, SetE):
        acc.add(expr.name)
        mutated_in_expr(expr.rhs, acc)
    elif isinstance(expr, LamE):
        mutated_in_expr(expr.body, acc)
    elif isinstance(expr, AppE):
        mutated_in_expr(expr.fn, acc)
        for arg in expr.args:
            mutated_in_expr(arg, acc)
    elif isinstance(expr, IfE):
        mutated_in_expr(expr.test, acc)
        mutated_in_expr(expr.then, acc)
        mutated_in_expr(expr.els, acc)
    elif isinstance(expr, LetE):
        mutated_in_expr(expr.rhs, acc)
        mutated_in_expr(expr.body, acc)
    elif isinstance(expr, LetRecE):
        for _, _, lam in expr.bindings:
            mutated_in_expr(lam, acc)
        mutated_in_expr(expr.body, acc)
    elif isinstance(expr, PairE):
        mutated_in_expr(expr.fst, acc)
        mutated_in_expr(expr.snd, acc)
    elif isinstance(expr, (FstE, SndE)):
        mutated_in_expr(expr.pair, acc)
    elif isinstance(expr, VecE):
        for elem in expr.elems:
            mutated_in_expr(elem, acc)
    elif isinstance(expr, AnnE):
        mutated_in_expr(expr.expr, acc)
    elif isinstance(expr, StructRefE):
        mutated_in_expr(expr.expr, acc)
    # atoms: nothing to do


def mutated_variables(program: Program) -> FrozenSet[str]:
    """All variables the program may mutate (unique post-α-renaming)."""
    acc: Set[str] = set()
    for define in program.defines:
        mutated_in_expr(define.expr, acc)
    for expr in program.body:
        mutated_in_expr(expr, acc)
    return frozenset(acc)
