"""The preliminary mutation pass (section 4.2).

"First, a preliminary pass identifies which variables and fields may be
mutated during program execution.  The type checker then proceeds to
type check the program, omitting symbolic objects for mutable
variables..."

Because the parser α-renames every binder to a unique name, the set of
``set!`` targets is exactly the set of mutable bindings — no scope
tracking is needed here.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from ..syntax.ast import (
    AnnE,
    AppE,
    Define,
    Expr,
    FstE,
    IfE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    Program,
    SetE,
    SndE,
    StructRefE,
    VecE,
)

__all__ = ["mutated_variables", "mutated_in_expr"]


def mutated_in_expr(expr: Expr, acc: Set[str]) -> None:
    """Accumulate the ``set!`` targets appearing anywhere in ``expr``.

    Iterative: the walk covers whole modules before checking begins,
    and expression nesting tracks program depth.
    """
    stack = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, SetE):
            acc.add(current.name)
            stack.append(current.rhs)
        elif isinstance(current, LamE):
            stack.append(current.body)
        elif isinstance(current, AppE):
            stack.append(current.fn)
            stack.extend(current.args)
        elif isinstance(current, IfE):
            stack.append(current.test)
            stack.append(current.then)
            stack.append(current.els)
        elif isinstance(current, LetE):
            stack.append(current.rhs)
            stack.append(current.body)
        elif isinstance(current, LetRecE):
            for _, _, lam in current.bindings:
                stack.append(lam)
            stack.append(current.body)
        elif isinstance(current, PairE):
            stack.append(current.fst)
            stack.append(current.snd)
        elif isinstance(current, (FstE, SndE)):
            stack.append(current.pair)
        elif isinstance(current, VecE):
            stack.extend(current.elems)
        elif isinstance(current, AnnE):
            stack.append(current.expr)
        elif isinstance(current, StructRefE):
            stack.append(current.expr)
        # atoms: nothing to do


def mutated_variables(program: Program) -> FrozenSet[str]:
    """All variables the program may mutate (unique post-α-renaming)."""
    acc: Set[str] = set()
    for define in program.defines:
        mutated_in_expr(define.expr, acc)
    for expr in program.body:
        mutated_in_expr(expr, acc)
    return frozenset(acc)
