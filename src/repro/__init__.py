"""Occurrence Typing Modulo Theories — a complete reproduction.

This package reimplements λRTR, the type system of

    Andrew M. Kent, David Kempe, Sam Tobin-Hochstadt.
    "Occurrence Typing Modulo Theories."  PLDI 2016.

together with every substrate it depends on: an S-expression reader, a
macro expander, the occurrence-typing logic with refinement types, two
solver-backed theories (linear integer arithmetic via Fourier-Motzkin
elimination; fixed-width bitvectors via bit-blasting + DPLL), a
big-step interpreter, the model-theoretic satisfaction relation used
for soundness, and the vector-access case-study harness reproducing
the paper's evaluation (Figure 9 and the section 5 statistics).

Quickstart::

    from repro import check_program_text, run_program_text

    src = '''
    (: max : [x : Int] [y : Int]
       -> [z : Int #:where (and (>= z x) (>= z y))])
    (define (max x y) (if (> x y) x y))
    (max 3 7)
    '''
    types = check_program_text(src)      # raises CheckError if ill-typed
    _defs, results = run_program_text(src)
    assert results == (7,)
"""

from .checker.check import Checker, check_program_text, shared_logic
from .checker.errors import (
    ArityError,
    CheckError,
    UnboundVariable,
    UnsupportedFeature,
)
from .interp.eval import evaluate, run_program, run_program_text
from .interp.values import RacketError, UnsafeMemoryError
from .logic.env import Env
from .logic.prove import EngineStats, Logic
from .syntax.parser import ParseError, parse_expr_text, parse_program
from .theories.base import Theory, TheoryContext
from .theories.bitvec import BitvectorTheory
from .theories.linarith import LinearArithmeticTheory
from .theories.registry import TheoryRegistry, default_registry
from .tr.parse import parse_type_text

__version__ = "1.0.0"

__all__ = [
    "Checker",
    "check_program_text",
    "CheckError",
    "UnsupportedFeature",
    "UnboundVariable",
    "ArityError",
    "ParseError",
    "parse_program",
    "parse_expr_text",
    "parse_type_text",
    "evaluate",
    "run_program",
    "run_program_text",
    "RacketError",
    "UnsafeMemoryError",
    "Logic",
    "EngineStats",
    "shared_logic",
    "Env",
    "Theory",
    "TheoryContext",
    "TheoryRegistry",
    "default_registry",
    "LinearArithmeticTheory",
    "BitvectorTheory",
    "__version__",
]
