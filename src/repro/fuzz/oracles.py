"""Differential soundness oracles for generated programs.

Three oracles, one per clause of the paper's soundness story:

1. **Evaluation** (Theorem 1 "well-typed programs don't go wrong"):
   a checker-accepted program must evaluate without *any* dynamic
   error.  The generator only emits total programs — no ``error``,
   no division by a variable, loops bounded by vector lengths — so a
   ``RacketError`` is as much a violation as an ``UnsafeMemoryError``.
2. **Model** (Lemma 2 / the Figure 8 model relation): each top-level
   definition's runtime value must inhabit its inferred type under
   ``ρ ⊨`` — refinements included, evaluated against the final
   runtime environment.
3. **Rejection** (the mutation differential): every mutant is
   ill-typed by construction, so the checker must raise ``CheckError``.
   An accepted mutant is a checker bug; an accepted mutant that then
   *crashes* is a confirmed soundness hole, which is exactly the
   signal the injected-bug demo drives end to end.

A fourth, bookkeeping kind — ``generator`` — fires when the checker
rejects a base program: that breaks the well-typed-by-construction
invariant and is reported rather than silently skipped.

A fifth — ``solver`` — is the backend differential behind
``fuzz --solver-oracle``: every generated program is checked under
both the ``fast`` solver cores (dual simplex / CDCL) and the
``legacy`` references (Fourier-Motzkin / DPLL), and any verdict
divergence is reported with both verdicts in the message.  The fast
linear core reasons over integers where FM is rational, so it can
legitimately prove *more*; a divergence is therefore a regression
signal to triage, and the pinned-corpus CI run asserts there are none
on the frozen seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..checker.check import Checker, shared_logic
from ..checker.errors import CheckError
from ..interp.eval import run_program
from ..interp.values import RacketError, UnsafeMemoryError
from ..logic.prove import Logic
from ..model.satisfies import value_has_type
from ..syntax.parser import ParseError, parse_program
from ..tr.props import IsType
from ..tr.types import Refine
from .gen import ProgramSpec

__all__ = [
    "Violation",
    "OracleOutcome",
    "CheckerFactory",
    "fresh_checker_factory",
    "shared_checker_factory",
    "refinement_blind_factory",
    "resolve_factory",
    "check_source",
    "run_program_oracles",
    "solver_oracle_factories",
    "check_verdict",
]

CheckerFactory = Callable[[], Checker]

#: exception classes the evaluation oracle treats as "went wrong"
_DYNAMIC_FAILURES = (RacketError, UnsafeMemoryError, RecursionError)


@dataclass(frozen=True)
class Violation:
    """One oracle failure, with enough context to reproduce and shrink."""

    oracle: str          # "generator" | "eval" | "model" | "reject"
    program: int         # generating program index
    seed: int            # that program's derived seed
    kind: str            # mutant kind / exception class / definition name
    message: str
    source: str          # the offending program text
    shrunk: Optional[str] = None   # filled in by the shrinker

    def describe(self) -> str:
        head = f"[{self.oracle}] program {self.program} (seed {self.seed}): {self.kind}"
        return f"{head}\n  {self.message}"


@dataclass
class OracleOutcome:
    """Per-program oracle bookkeeping."""

    accepted: bool = False
    evaluated: bool = False
    model_checked: int = 0        # definitions judged by the model oracle
    mutants_checked: int = 0
    mutants_rejected: int = 0
    violations: List[Violation] = field(default_factory=list)


# ----------------------------------------------------------------------
# checker factories
# ----------------------------------------------------------------------
def fresh_checker_factory() -> Checker:
    """A checker over a brand-new Logic: no cross-program cache reuse."""
    return Checker(logic=Logic())


def shared_checker_factory() -> Checker:
    """A checker over the process-shared Logic (the PR 1 default).

    The cache-transparency property tests assert this factory and
    :func:`fresh_checker_factory` produce identical verdicts.
    """
    return Checker(logic=shared_logic())


class _RefinementBlindLogic(Logic):
    """The deliberately injected bug: refinement goals always "prove".

    Accepting strictly more programs than the sound engine, this is the
    classic unsound-checker shape — dropped proof obligations — and the
    demo of the differential pipeline: guard-drop mutants sail through
    the checker, crash in the evaluator, and shrink to a minimal
    counterexample.
    """

    def proves(self, env, goal) -> bool:  # type: ignore[override]
        if isinstance(goal, IsType) and isinstance(goal.type, Refine):
            return True
        return super().proves(env, goal)


def refinement_blind_factory() -> Checker:
    return Checker(logic=_RefinementBlindLogic())


_FACTORIES = {
    "fresh": fresh_checker_factory,
    "shared": shared_checker_factory,
    "blind": refinement_blind_factory,
}


def resolve_factory(name: str) -> CheckerFactory:
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown checker factory {name!r} (expected one of {sorted(_FACTORIES)})"
        ) from None


def shard_factory(name: str) -> CheckerFactory:
    """A factory whose Logic lives for a whole shard.

    ``fresh``/``blind`` build one engine here and share it across every
    program and mutant the shard checks — the long-lived-service shape
    the incremental engine is built for, and safe because the caches
    are transparent (the property tests pin that down).  ``shared``
    keeps the process-wide engine.
    """
    if name == "shared":
        return shared_checker_factory
    resolve_factory(name)  # validate
    logic = _RefinementBlindLogic() if name == "blind" else Logic()
    return lambda: Checker(logic=logic)


def solver_oracle_factories() -> Tuple[CheckerFactory, CheckerFactory]:
    """Shard-lived ``(fast, legacy)`` checker factories.

    Each wraps one long-lived Logic whose theory registry pins the
    solver backend explicitly, so the comparison is between the solver
    cores and nothing else — same checker, same caches-per-engine,
    same programs.
    """
    from ..theories.registry import default_registry

    fast_logic = Logic(registry=default_registry(backend="fast"))
    legacy_logic = Logic(registry=default_registry(backend="legacy"))
    return (
        lambda: Checker(logic=fast_logic),
        lambda: Checker(logic=legacy_logic),
    )


def check_verdict(source: str, factory: CheckerFactory) -> str:
    """The checker's verdict on ``source`` as a comparable string.

    ``accept:<type-fingerprint>`` or ``reject:<ExceptionClass>`` — on
    acceptance the inferred top-level types are folded in, so two
    backends that accept but *infer differently* still diverge.  The
    rejection message text is deliberately excluded so backends that
    reject with differently worded (but same-shaped) errors do not
    count as divergent.  ``SyntaxError`` covers both reader and parser
    rejections, which matters because shrink candidates need not be
    parseable.
    """
    try:
        _program, types = check_source(source, factory)
    except (SyntaxError, CheckError, RecursionError) as exc:
        return f"reject:{type(exc).__name__}"
    import hashlib

    blob = ";".join(f"{name}={types[name]!r}" for name in sorted(types))
    return f"accept:{hashlib.sha256(blob.encode()).hexdigest()[:12]}"


# ----------------------------------------------------------------------
# the oracles
# ----------------------------------------------------------------------
def check_source(source: str, factory: CheckerFactory):
    """Parse + check; returns (program, types) or raises."""
    program = parse_program(source)
    types = factory().check_program(program)
    return program, types


def run_program_oracles(
    spec: ProgramSpec,
    factory: CheckerFactory = fresh_checker_factory,
    include_mutants: bool = True,
    max_mutants: Optional[int] = None,
    solver_factories: Optional[Tuple[CheckerFactory, CheckerFactory]] = None,
) -> OracleOutcome:
    """Run all three oracles over one generated program."""
    outcome = OracleOutcome()

    def violate(oracle: str, kind: str, message: str, source: str) -> None:
        outcome.violations.append(
            Violation(oracle, spec.index, spec.seed, kind, message, source)
        )

    # ---- solver oracle (opt-in): fast and legacy backends must agree
    if solver_factories is not None:
        fast_factory, legacy_factory = solver_factories
        fast_verdict = check_verdict(spec.source, fast_factory)
        legacy_verdict = check_verdict(spec.source, legacy_factory)
        if fast_verdict != legacy_verdict:
            violate(
                "solver",
                "backend-divergence",
                f"fast={fast_verdict} legacy={legacy_verdict}",
                spec.source,
            )

    # ---- oracle 0: the well-typed-by-construction invariant
    try:
        program, types = check_source(spec.source, factory)
    except (ParseError, CheckError) as exc:
        violate("generator", type(exc).__name__, str(exc), spec.source)
        program = types = None
    except RecursionError as exc:
        violate("generator", "RecursionError", str(exc), spec.source)
        program = types = None

    if program is not None:
        outcome.accepted = True
        # ---- oracle 1: accepted programs evaluate without going wrong
        values = None
        try:
            values, _results = run_program(program)
            outcome.evaluated = True
        except _DYNAMIC_FAILURES as exc:
            violate("eval", type(exc).__name__, str(exc), spec.source)

        # ---- oracle 2: runtime values inhabit the inferred types
        if values is not None:
            for name, ty in types.items():
                if name not in values:
                    continue
                try:
                    ok = value_has_type(values[name], ty, values)
                except TypeError as exc:
                    violate("model", name, f"cannot judge: {exc}", spec.source)
                    continue
                outcome.model_checked += 1
                if not ok:
                    violate(
                        "model",
                        name,
                        f"value {values[name]!r} does not inhabit {ty!r}",
                        spec.source,
                    )

    # ---- oracle 3: ill-typed mutants are rejected
    if include_mutants:
        mutants = spec.mutants
        if max_mutants is not None:
            mutants = mutants[:max_mutants]
        for mutant in mutants:
            outcome.mutants_checked += 1
            try:
                mutated_program, _ = check_source(mutant.source, factory)
            except CheckError:
                outcome.mutants_rejected += 1
                continue
            except ParseError as exc:
                violate(
                    "reject",
                    f"{mutant.kind}:unparseable",
                    f"mutation engine produced unparseable source: {exc}",
                    mutant.source,
                )
                continue
            except RecursionError as exc:
                # neither accept nor reject: the checker itself blew up —
                # report it instead of aborting the whole campaign
                violate(
                    "reject",
                    f"{mutant.kind}:checker-crash",
                    f"checker crashed on mutant: RecursionError: {exc}",
                    mutant.source,
                )
                continue
            # Accepted an ill-typed program: checker bug.  If it also
            # crashes, the differential is a confirmed soundness hole.
            message = f"checker accepted ill-typed mutant ({mutant.describe()})"
            try:
                run_program(mutated_program)
            except _DYNAMIC_FAILURES as exc:
                message += f"; evaluation then crashed: {type(exc).__name__}: {exc}"
            violate("reject", mutant.kind, message, mutant.source)

    return outcome
