"""Coverage-guided fuzzing: vectors, the novelty corpus, the scheduler.

The engine already counts everything interesting about a check —
kernel rule firings (:attr:`EngineStats.rule_hits`), per-theory solver
consultations (``theory_queries``) and solver-core work
(``solver_counters``).  This module turns the per-program *delta* of
those counters into an AFL-style coverage signal:

* a :class:`CoverageVector` is the set of *coverage points* one
  program hit.  Each non-zero counter contributes its name (``rule:
  sat.type+``, ``theory:linarith``, ``solver:simplex.pivots``) plus a
  log₂-bucketed magnitude point (``rule:sat.type+@3`` for 4–7 hits),
  so "the same rules, much harder" still reads as novel;
* a :class:`CoverageMap` accumulates the union across a campaign and
  answers "did this program reach anything new?" — programs that did
  are remembered as the campaign's *corpus* of coverage-novel seeds;
* a :class:`CoverageScheduler` turns that novelty feedback into
  generator family weights: families still producing new coverage are
  boosted, families that have gone dry decay toward a floor, and
  never-tried families start with an optimistic bonus so small budgets
  explore every family before exploiting any.

Everything here is exact integer/float arithmetic over deterministic
counters, so coverage digests are reproducible: the same seed and
shard count produce byte-identical vectors in any process (the
determinism property pinned by ``tests/test_fuzz_coverage.py``).
Coverage *is* warmth-sensitive — a shard-shared engine answers later
programs from caches built by earlier ones — so vectors depend on the
shard's program sequence; that is why the digest property fixes the
shard count, mirroring nothing stronger than what the scheduler needs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..logic.prove import EngineStats

__all__ = [
    "CoverageVector",
    "CoverageMap",
    "CoverageScheduler",
    "CorpusEntry",
    "coverage_from_delta",
    "coverage_from_stats_dict",
    "coverage_digest",
]


def _bucket(count: int) -> int:
    """AFL-style log₂ magnitude bucket, capped so counts stay coarse."""
    return min(count.bit_length(), 12)


@dataclass(frozen=True)
class CoverageVector:
    """The set of coverage points one program's check reached."""

    points: FrozenSet[str]

    def __bool__(self) -> bool:
        return bool(self.points)

    def digest(self) -> str:
        return coverage_digest(self.points)


def coverage_digest(points: Iterable[str]) -> str:
    """A stable fingerprint of a set of coverage points."""
    blob = "\n".join(sorted(points)).encode()
    return hashlib.sha256(blob).hexdigest()


def coverage_from_delta(delta: EngineStats) -> CoverageVector:
    """Project a per-program :class:`EngineStats` delta onto points.

    Only the *which-work-happened* counters participate — cache hit
    counts are warmth, not behaviour, and would make every program
    trivially "novel" as the caches fill.
    """
    return _project(
        delta.rule_hits, delta.theory_queries, delta.solver_counters
    )


def coverage_from_stats_dict(stats: Dict[str, object]) -> CoverageVector:
    """Like :func:`coverage_from_delta`, over ``EngineStats.as_dict()``.

    This is the over-the-wire form: the daemon attaches exactly this
    dict (the per-request stats delta) to every ``check_text``
    response, so a farm client gets coverage vectors for free.
    """
    return _project(
        stats.get("rule_hits") or {},
        stats.get("theory_queries") or {},
        stats.get("solver_counters") or {},
    )


def _project(rules, theories, solvers) -> CoverageVector:
    points: set = set()
    for prefix, counters in (
        ("rule", rules),
        ("theory", theories),
        ("solver", solvers),
    ):
        for name, count in counters.items():
            if count > 0:
                points.add(f"{prefix}:{name}")
                points.add(f"{prefix}:{name}@{_bucket(count)}")
    return CoverageVector(frozenset(points))


@dataclass(frozen=True)
class CorpusEntry:
    """One coverage-novel seed worth keeping for future campaigns."""

    index: int               # program index within the campaign
    seed: int                # its derived per-program seed
    families: Tuple[str, ...]
    new_points: Tuple[str, ...]   # sorted points first reached here

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "seed": self.seed,
            "families": list(self.families),
            "new_points": list(self.new_points),
        }


class CoverageMap:
    """Accumulates campaign-wide coverage and the novelty corpus."""

    def __init__(self) -> None:
        self._seen: Dict[str, int] = {}
        self.corpus: List[CorpusEntry] = []

    def observe(
        self,
        vector: CoverageVector,
        index: int = -1,
        seed: int = 0,
        families: Sequence[str] = (),
    ) -> FrozenSet[str]:
        """Fold one program's vector in; returns its novel points.

        A program contributing any new point is recorded in
        :attr:`corpus` (the coverage-novel seed set).
        """
        new = frozenset(p for p in vector.points if p not in self._seen)
        for point in vector.points:
            self._seen[point] = self._seen.get(point, 0) + 1
        if new and index >= 0:
            self.corpus.append(
                CorpusEntry(index, seed, tuple(families), tuple(sorted(new)))
            )
        return new

    @property
    def points(self) -> FrozenSet[str]:
        return frozenset(self._seen)

    def digest(self) -> str:
        return coverage_digest(self._seen)

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Union another map in (shard aggregation); corpus appends."""
        for point, count in other._seen.items():
            self._seen[point] = self._seen.get(point, 0) + count
        self.corpus.extend(other.corpus)
        return self

    def as_dict(self) -> Dict[str, object]:
        return {
            "points": len(self._seen),
            "digest": self.digest(),
            "corpus": [entry.as_dict() for entry in self.corpus],
        }


class CoverageScheduler:
    """Biases family weights toward families still finding coverage.

    The scheduler keeps one *score* per generator family.  Families
    start at ``optimism`` (so an untried family outweighs a saturated
    one and small budgets explore everything once); a program whose
    families produced ``n`` new coverage points multiplies their
    scores by ``boost`` (plus the raw point count), and a program that
    produced nothing decays its families by ``decay``.  Weights are
    ``floor + score``, so no family ever starves completely — a dry
    family keeps a trickle of programs, which is what lets it recover
    if a code change opens new coverage behind it.

    Pure deterministic arithmetic over the observation sequence: the
    same sequence of (families, novelty) pairs produces the same
    weights in any process.
    """

    def __init__(
        self,
        families: Sequence[str],
        base_weights: Optional[Dict[str, float]] = None,
        optimism: float = 16.0,
        boost: float = 1.5,
        decay: float = 0.6,
        floor: float = 0.25,
        cap: float = 64.0,
    ) -> None:
        self.families = tuple(families)
        self.optimism = optimism
        self.boost = boost
        self.decay = decay
        self.floor = floor
        self.cap = cap
        base = base_weights or {}
        self._score: Dict[str, float] = {
            name: optimism * base.get(name, 1.0) for name in self.families
        }
        self.observations = 0

    def weights(self) -> Dict[str, float]:
        """The current family → weight map (floor + score)."""
        return {name: self.floor + self._score[name] for name in self.families}

    def observe(self, families: Sequence[str], new_points: int) -> None:
        """Feed back one program's outcome into its families' scores."""
        self.observations += 1
        for name in set(families):
            if name not in self._score:
                continue
            if new_points > 0:
                self._score[name] = min(
                    self.cap, self._score[name] * self.boost + new_points
                )
            else:
                self._score[name] = max(0.0, self._score[name] * self.decay)

    def snapshot(self) -> Dict[str, float]:
        """Rounded weights for reports (stable across float printing)."""
        return {
            name: round(weight, 6) for name, weight in self.weights().items()
        }

    def digest(self) -> str:
        blob = json.dumps(self.snapshot(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()
