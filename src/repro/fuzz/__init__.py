"""Differential fuzzing of the λRTR checker against its own semantics.

The subsystem turns the interpreter (:mod:`repro.interp`) and the
model relation (:mod:`repro.model`) into machine-checked oracles for
the type checker, at scale:

* :mod:`repro.fuzz.gen`      — well-typed-by-construction generation;
* :mod:`repro.fuzz.mutate`   — ill-typed-by-construction mutants;
* :mod:`repro.fuzz.oracles`  — the three soundness oracles;
* :mod:`repro.fuzz.shrink`   — greedy counterexample minimisation;
* :mod:`repro.fuzz.runner`   — deterministic sharded campaigns;
* :mod:`repro.fuzz.coverage` — engine coverage vectors, the novelty
  corpus, and the coverage-guided family scheduler;
* :mod:`repro.fuzz.farm`     — continuous campaigns against a live
  ``repro serve`` daemon, with triage via :mod:`repro.study.bugs`.

Entry points: ``python -m repro fuzz ...`` or :func:`run_fuzz` /
:func:`repro.fuzz.farm.run_farm`.
"""

from .coverage import (
    CoverageMap,
    CoverageScheduler,
    CoverageVector,
    coverage_from_delta,
    coverage_from_stats_dict,
)
from .farm import FarmConfig, FarmReport, run_farm
from .gen import DefSpec, FAMILIES, ProgramSpec, generate_program, program_seed
from .mutate import Mutant, assemble_mutants
from .oracles import (
    OracleOutcome,
    Violation,
    fresh_checker_factory,
    refinement_blind_factory,
    resolve_factory,
    run_program_oracles,
    shard_factory,
    shared_checker_factory,
)
from .runner import FuzzConfig, FuzzReport, ShardResult, run_fuzz, run_shard
from .shrink import shrink

__all__ = [
    "CoverageMap",
    "CoverageScheduler",
    "CoverageVector",
    "DefSpec",
    "FAMILIES",
    "FarmConfig",
    "FarmReport",
    "FuzzConfig",
    "FuzzReport",
    "Mutant",
    "OracleOutcome",
    "ProgramSpec",
    "ShardResult",
    "Violation",
    "assemble_mutants",
    "coverage_from_delta",
    "coverage_from_stats_dict",
    "fresh_checker_factory",
    "generate_program",
    "program_seed",
    "refinement_blind_factory",
    "resolve_factory",
    "run_farm",
    "run_fuzz",
    "run_program_oracles",
    "run_shard",
    "shard_factory",
    "shared_checker_factory",
    "shrink",
]
