"""Fuzz farm: continuous campaigns against a live checking daemon.

The in-process campaign (:mod:`repro.fuzz.runner`) fuzzes the checker
*library*; the farm fuzzes the checker *service*.  Every generated
program (and optionally its ill-typed mutants) is submitted to a
running ``repro serve`` daemon over the wire and the daemon's verdict
is compared against a local reference checker — a divergence means the
serving path (session store, group dedup, epoch guard, goal batcher)
changed an answer, which the daemon's core invariant says can never
happen.

The daemon is either spawned as a subprocess for the campaign's
lifetime (the default: a true end-to-end test of ``python -m repro
serve``) or an already-running one is used via ``connect_socket``.

Coverage guidance works over the wire at no extra cost: every
``check_text`` response already carries the per-request engine-stats
delta, which :func:`repro.fuzz.coverage.coverage_from_stats_dict`
projects onto the same coverage points the in-process campaign uses,
and a :class:`~repro.fuzz.coverage.CoverageScheduler` feeds the
novelty back into generator family weights.

Budgets: a campaign stops at ``count`` programs or after
``budget_seconds`` of wall clock, whichever comes first.  Program
``i`` is still the pure function of ``(seed, i)`` it always is, so the
campaign summary (:meth:`FarmReport.as_dict`) is deterministic given
the number of programs actually completed — count-bounded runs are
fully reproducible, time-bounded runs are reproducible per completed
prefix (the digest covers exactly that prefix).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .coverage import (
    CoverageMap,
    CoverageScheduler,
    CoverageVector,
    coverage_from_stats_dict,
)
from .gen import FAMILIES, generate_program
from .oracles import CheckerFactory, Violation, check_source, resolve_factory
from ..checker.errors import CheckError
from ..syntax.parser import ParseError

__all__ = ["FarmConfig", "FarmReport", "run_farm"]


@dataclass(frozen=True)
class FarmConfig:
    """One farm campaign against a live daemon."""

    seed: int = 0
    count: int = 200                   # max programs (the residue budget)
    budget_seconds: Optional[float] = None  # wall-clock budget (None = off)
    checker: str = "fresh"             # local reference factory
    mutants: bool = True
    max_mutants: Optional[int] = 2     # per program, over the wire
    #: unix socket of an already-running daemon; None spawns one
    connect_socket: Optional[str] = None
    #: coverage-guided scheduling from the daemon's per-request deltas
    guided: bool = False
    #: seconds to wait for a spawned daemon to come up
    spawn_timeout: float = 20.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")


@dataclass
class FarmReport:
    """What a farm campaign measured."""

    config: FarmConfig
    programs: int = 0                  # generated programs completed
    checks: int = 0                    # wire requests (programs + mutants)
    daemon_accepted: int = 0
    daemon_rejected: int = 0
    divergences: List[Violation] = field(default_factory=list)
    spawned: bool = False              # daemon subprocess vs --connect
    duration_seconds: float = 0.0      # wall clock (never in the digest)
    coverage: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return not self.divergences

    def digest(self) -> str:
        """Deterministic given (config, completed-program prefix)."""
        payload = {
            "seed": self.config.seed,
            "checker": self.config.checker,
            "mutants": self.config.mutants,
            "max_mutants": self.config.max_mutants,
            "guided": self.config.guided,
            "programs": self.programs,
            "checks": self.checks,
            "daemon_accepted": self.daemon_accepted,
            "daemon_rejected": self.daemon_rejected,
            "divergences": [
                (v.program, v.kind, v.message, v.source)
                for v in self.divergences
            ],
        }
        if self.coverage is not None:
            payload["coverage"] = self.coverage.get("digest")
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """The campaign summary (``fuzz --farm --json``)."""
        cfg = self.config
        summary: Dict[str, object] = {
            "mode": "farm",
            "config": {
                "seed": cfg.seed,
                "count": cfg.count,
                "budget_seconds": cfg.budget_seconds,
                "checker": cfg.checker,
                "mutants": cfg.mutants,
                "max_mutants": cfg.max_mutants,
                "guided": cfg.guided,
                "connected": cfg.connect_socket is not None,
            },
            "programs": self.programs,
            "checks": self.checks,
            "daemon_accepted": self.daemon_accepted,
            "daemon_rejected": self.daemon_rejected,
            "spawned": self.spawned,
            "duration_seconds": round(self.duration_seconds, 3),
            "divergences": [
                {
                    "program": v.program,
                    "seed": v.seed,
                    "kind": v.kind,
                    "message": v.message,
                    "source": v.source,
                    "shrunk": v.shrunk,
                }
                for v in self.divergences
            ],
            "digest": self.digest(),
        }
        if self.coverage is not None:
            summary["coverage"] = self.coverage
        return summary


# ----------------------------------------------------------------------
# verdict comparison
# ----------------------------------------------------------------------
def _local_verdict(source: str, factory: CheckerFactory) -> Tuple[bool, Dict[str, str]]:
    """The reference checker's verdict in the daemon's response shape."""
    from ..tr.pretty import pretty_type

    try:
        _program, types = check_source(source, factory)
    except (SyntaxError, CheckError, RecursionError):
        return False, {}
    return True, {name: pretty_type(ty) for name, ty in types.items()}


def _daemon_verdict(response: Dict[str, object]) -> Tuple[bool, Dict[str, str]]:
    ok = bool(response.get("ok"))
    types = response.get("types") if ok else {}
    return ok, dict(types or {})


def _spawn_daemon(socket_path: str, timeout: float) -> subprocess.Popen:
    """Start ``python -m repro serve`` and wait for the socket to bind."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            return process
        if process.poll() is not None:
            output = (process.stdout.read() or b"").decode(errors="replace")
            raise RuntimeError(
                f"daemon exited during startup (code {process.returncode}): {output}"
            )
        time.sleep(0.02)
    process.terminate()
    raise RuntimeError(f"daemon did not bind {socket_path} within {timeout}s")


# ----------------------------------------------------------------------
# the farm loop
# ----------------------------------------------------------------------
def run_farm(config: FarmConfig) -> FarmReport:
    """Run one farm campaign; spawns a daemon unless one is supplied."""
    from ..server import Client

    report = FarmReport(config=config)
    started = time.monotonic()
    process = None
    tmpdir = None
    socket_path = config.connect_socket
    if socket_path is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-farm-")
        socket_path = os.path.join(tmpdir.name, "daemon.sock")
        process = _spawn_daemon(socket_path, config.spawn_timeout)
        report.spawned = True
    factory = resolve_factory(config.checker)
    coverage_map = CoverageMap()
    scheduler = CoverageScheduler(tuple(FAMILIES)) if config.guided else None
    try:
        with Client(socket_path=socket_path, timeout=120.0) as client:
            for index in range(config.count):
                if (
                    config.budget_seconds is not None
                    and time.monotonic() - started >= config.budget_seconds
                ):
                    break
                weights = scheduler.weights() if scheduler is not None else None
                spec = generate_program(config.seed, index, weights)
                sources = [("base", spec.source)]
                if config.mutants:
                    mutants = spec.mutants
                    if config.max_mutants is not None:
                        mutants = mutants[: config.max_mutants]
                    sources.extend(
                        (f"mutant:{m.kind}", m.source) for m in mutants
                    )
                vector_points = set()
                for label, source in sources:
                    response = client.check_text(f"farm-{index}-{label}", source)
                    report.checks += 1
                    daemon_ok, daemon_types = _daemon_verdict(response)
                    report.daemon_accepted += int(daemon_ok)
                    report.daemon_rejected += int(not daemon_ok)
                    local_ok, local_types = _local_verdict(source, factory)
                    if (daemon_ok, daemon_types) != (local_ok, local_types):
                        report.divergences.append(
                            Violation(
                                oracle="farm",
                                program=index,
                                seed=spec.seed,
                                kind=f"{label}:daemon-divergence",
                                message=(
                                    f"daemon ok={daemon_ok} types={sorted(daemon_types)} "
                                    f"vs local ok={local_ok} types={sorted(local_types)}"
                                ),
                                source=source,
                            )
                        )
                    stats = response.get("stats")
                    if isinstance(stats, dict):
                        vector_points |= coverage_from_stats_dict(stats).points
                new = coverage_map.observe(
                    CoverageVector(frozenset(vector_points)),
                    index,
                    spec.seed,
                    spec.features,
                )
                if scheduler is not None:
                    scheduler.observe(spec.features, len(new))
                report.programs += 1
    finally:
        if process is not None:
            try:
                with Client(socket_path=socket_path, timeout=5.0) as closer:
                    closer.shutdown()
            except Exception:
                process.terminate()
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)
            if process.stdout is not None:
                process.stdout.close()
        if tmpdir is not None:
            tmpdir.cleanup()
        report.duration_seconds = time.monotonic() - started
    report.coverage = coverage_map.as_dict()
    if scheduler is not None:
        report.coverage["family_weights"] = {"0": scheduler.snapshot()}
    return report
