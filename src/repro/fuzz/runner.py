"""Deterministic, shardable execution of the fuzz pipeline.

Program ``i`` is a pure function of ``(seed, i)`` (see
:func:`repro.fuzz.gen.program_seed`), shard ``k`` of ``S`` owns the
indices ``i ≡ k (mod S)``, and aggregation sorts everything by program
index — so the merged :class:`FuzzReport` (and its :meth:`digest`) is
byte-for-byte identical for any shard count and for multi-process vs
in-process execution.  Shards run as forked worker processes when the
platform provides ``fork``; otherwise they run sequentially in-process
with identical results.

Each shard builds one :class:`~repro.logic.prove.Logic` for its
checker factory, so the PR 1 incremental proof engine is exercised
across programs exactly as a long-lived service would exercise it —
and the cache-transparency property tests pin down that this sharing
cannot change any verdict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .coverage import CoverageMap, CoverageScheduler, coverage_from_delta
from .gen import FAMILIES, generate_program
from .oracles import (
    CheckerFactory,
    OracleOutcome,
    Violation,
    check_source,
    check_verdict,
    resolve_factory,
    run_program_oracles,
    shard_factory,
    solver_oracle_factories,
)
from .shrink import shrink
from ..checker.errors import CheckError
from ..interp.eval import run_program
from ..interp.values import RacketError, UnsafeMemoryError
from ..syntax.parser import ParseError, parse_program

__all__ = ["FuzzConfig", "ShardResult", "FuzzReport", "run_shard", "run_fuzz",
           "violation_predicate"]

_DYNAMIC_FAILURES = (RacketError, UnsafeMemoryError, RecursionError)


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign, fully determined by its fields."""

    seed: int = 0
    count: int = 100
    shards: int = 1
    checker: str = "fresh"            # fresh | shared | blind (injected bug)
    mutants: bool = True
    max_mutants: Optional[int] = 4    # per program; None = all
    shrink_failures: bool = True
    max_shrinks: int = 5              # failing programs to minimise
    max_reported: int = 50            # violations kept verbatim in the report
    #: differential solver oracle: additionally check every generated
    #: program under both the ``fast`` and ``legacy`` solver backends
    #: and report any verdict divergence as a ``solver`` violation
    solver_oracle: bool = False
    #: persistent proof-cache directory: campaigns stop re-proving
    #: queries already decided by earlier shards and earlier runs (the
    #: cache is verdict-transparent, so the report digest is unchanged)
    cache_dir: Optional[str] = None
    #: collect per-program kernel-rule/theory/solver coverage vectors
    #: and the coverage-novel seed corpus (:mod:`repro.fuzz.coverage`)
    coverage: bool = False
    #: coverage-guided scheduling: per-shard family weights follow the
    #: novelty feedback instead of the static table (implies coverage)
    guided: bool = False
    #: enable the engine's per-stage wall-clock timers on each shard's
    #: engine and report the summed ``stage_ns`` breakdown (timings are
    #: hardware-dependent, so they never join the report digest)
    profile: bool = False

    def __post_init__(self) -> None:
        if self.count < 0 or self.shards < 1:
            raise ValueError("count must be >= 0 and shards >= 1")
        if self.guided and not self.coverage:
            object.__setattr__(self, "coverage", True)


@dataclass
class ShardResult:
    """What one shard measured (deterministic fields only)."""

    shard: int
    programs: int = 0
    accepted: int = 0
    evaluated: int = 0
    model_checked: int = 0
    mutants_checked: int = 0
    mutants_rejected: int = 0
    features: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    #: persistent-cache entries this shard learned (parent-flushed;
    #: never part of the report digest)
    cache_delta: Dict[str, object] = field(default_factory=dict)
    #: campaign coverage (``FuzzConfig.coverage``): this shard's
    #: accumulated coverage map and — when guided — final weights
    coverage_map: Optional[CoverageMap] = None
    family_weights: Optional[Dict[str, float]] = None
    #: per-stage engine wall-clock (``FuzzConfig.profile``)
    stage_ns: Dict[str, int] = field(default_factory=dict)


@dataclass
class FuzzReport:
    """The merged campaign outcome."""

    config: FuzzConfig
    programs: int
    accepted: int
    evaluated: int
    model_checked: int
    mutants_checked: int
    mutants_rejected: int
    features: Dict[str, int]
    violations: Tuple[Violation, ...]
    #: merged coverage summary (only with ``FuzzConfig.coverage``):
    #: point count, campaign digest, novelty corpus, per-shard weights
    coverage: Optional[Dict[str, object]] = None
    #: summed per-stage engine wall-clock (only with
    #: ``FuzzConfig.profile``); hardware-dependent, so deliberately
    #: excluded from :meth:`digest` and :meth:`as_dict`
    stage_ns: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def soundness_violations(self) -> Tuple[Violation, ...]:
        """The subset that indicts the checker (not the generator)."""
        return tuple(v for v in self.violations if v.oracle != "generator")

    def digest(self) -> str:
        """A stable fingerprint of everything deterministic in the run.

        Two runs with the same (seed, count, checker, mutant settings)
        must produce the same digest no matter how they were sharded.
        """
        payload = {
            "seed": self.config.seed,
            "count": self.config.count,
            "checker": self.config.checker,
            "solver_oracle": self.config.solver_oracle,
            "programs": self.programs,
            "accepted": self.accepted,
            "evaluated": self.evaluated,
            "model_checked": self.model_checked,
            "mutants_checked": self.mutants_checked,
            "mutants_rejected": self.mutants_rejected,
            "features": dict(sorted(self.features.items())),
            "violations": [
                (v.program, v.oracle, v.kind, v.message, v.source)
                for v in self.violations
            ],
        }
        if self.coverage is not None:
            # Coverage is only deterministic per (seed, shard count) —
            # warmth-sensitive — so it joins the digest only when the
            # campaign opted into collecting it.
            payload["coverage"] = self.coverage.get("digest")
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """The campaign summary as JSON-ready data (``fuzz --json``).

        Everything deterministic lands here — config, totals, feature
        histogram, violations (with shrunk repros), the coverage
        summary and the report digest — so two runs with the same
        (seed, count, shards, mode) write byte-identical files.
        """
        cfg = self.config
        summary: Dict[str, object] = {
            "config": {
                "seed": cfg.seed,
                "count": cfg.count,
                "shards": cfg.shards,
                "checker": cfg.checker,
                "mutants": cfg.mutants,
                "max_mutants": cfg.max_mutants,
                "solver_oracle": cfg.solver_oracle,
                "coverage": cfg.coverage,
                "guided": cfg.guided,
            },
            "programs": self.programs,
            "accepted": self.accepted,
            "evaluated": self.evaluated,
            "model_checked": self.model_checked,
            "mutants_checked": self.mutants_checked,
            "mutants_rejected": self.mutants_rejected,
            "features": dict(sorted(self.features.items())),
            "violations": [
                {
                    "oracle": v.oracle,
                    "program": v.program,
                    "seed": v.seed,
                    "kind": v.kind,
                    "message": v.message,
                    "source": v.source,
                    "shrunk": v.shrunk,
                }
                for v in self.violations
            ],
            "digest": self.digest(),
        }
        if self.coverage is not None:
            summary["coverage"] = self.coverage
        return summary


# ----------------------------------------------------------------------
# shard execution
# ----------------------------------------------------------------------
def run_shard(
    config: FuzzConfig,
    shard: int,
    factory: Optional[CheckerFactory] = None,
) -> ShardResult:
    """Run the pipeline over this shard's residue class of indices."""
    cache = None
    cached_logic = None
    if factory is None:
        factory = shard_factory(config.checker)
        if config.cache_dir is not None:
            from ..batch import ProofCache, logic_config_key

            cached_logic = factory().logic  # the shard-shared engine
            cache = ProofCache(config.cache_dir, logic_config_key(cached_logic))
            cached_logic.attach_persistent_cache(cache)
    solver_factories = solver_oracle_factories() if config.solver_oracle else None
    result = ShardResult(shard=shard)
    profile_logic = None
    if config.profile:
        # Same shard_factory contract as coverage: one engine per
        # shard, so its stage_ns is the whole shard's breakdown.
        profile_logic = factory().logic
        profile_logic.enable_stage_timers()
    coverage_logic = None
    scheduler = None
    if config.coverage:
        # Coverage reads per-program EngineStats deltas off the shard's
        # engine, so it relies on the shard_factory contract (one Logic
        # for the whole shard).  A caller-supplied per-call factory
        # would make every delta empty; still harmless, just blind.
        coverage_logic = factory().logic
        result.coverage_map = CoverageMap()
        if config.guided:
            scheduler = CoverageScheduler(tuple(FAMILIES))
    try:
        for index in range(shard, config.count, config.shards):
            weights = scheduler.weights() if scheduler is not None else None
            spec = generate_program(config.seed, index, weights)
            baseline = (
                coverage_logic.stats.copy() if coverage_logic is not None else None
            )
            outcome = run_program_oracles(
                spec,
                factory,
                include_mutants=config.mutants,
                max_mutants=config.max_mutants,
                solver_factories=solver_factories,
            )
            result.programs += 1
            result.accepted += int(outcome.accepted)
            result.evaluated += int(outcome.evaluated)
            result.model_checked += outcome.model_checked
            result.mutants_checked += outcome.mutants_checked
            result.mutants_rejected += outcome.mutants_rejected
            for feature in spec.features:
                result.features[feature] = result.features.get(feature, 0) + 1
            result.violations.extend(outcome.violations)
            if coverage_logic is not None:
                delta = coverage_logic.stats.delta_from(baseline)
                vector = coverage_from_delta(delta)
                new = result.coverage_map.observe(
                    vector, index, spec.seed, spec.features
                )
                if scheduler is not None:
                    scheduler.observe(spec.features, len(new))
    finally:
        if cache is not None:
            result.cache_delta = cache.delta()
            cached_logic.detach_persistent_cache()
    if scheduler is not None:
        result.family_weights = scheduler.snapshot()
    if profile_logic is not None:
        result.stage_ns = dict(profile_logic.stats.stage_ns)
    return result


def _shard_worker(args: Tuple[FuzzConfig, int]) -> ShardResult:
    config, shard = args
    return run_shard(config, shard)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def run_fuzz(
    config: FuzzConfig,
    factory: Optional[CheckerFactory] = None,
    parallel: Optional[bool] = None,
) -> FuzzReport:
    """Run every shard and merge: the campaign entry point.

    ``factory`` forces an in-process (sequential) run — injected-bug
    demos pass the buggy factory directly, and worker processes could
    not receive it anyway (they re-resolve from ``config.checker``).
    ``parallel`` overrides the default "processes iff >1 shard and
    fork is available"; it is ignored when a factory is supplied.
    """
    if factory is not None:
        parallel = False
    elif parallel is None:
        parallel = config.shards > 1
    # fork is the only start method workers support (they inherit the
    # config and warm tables); without it, degrade to in-process shards
    parallel = bool(parallel) and _fork_available()
    shards: List[ShardResult]
    if parallel:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(config.shards, ctx.cpu_count() or 1)) as pool:
            shards = pool.map(
                _shard_worker, [(config, k) for k in range(config.shards)]
            )
    else:
        shards = [run_shard(config, k, factory) for k in range(config.shards)]

    features: Dict[str, int] = {}
    violations: List[Violation] = []
    totals = dict.fromkeys(
        ("programs", "accepted", "evaluated", "model_checked",
         "mutants_checked", "mutants_rejected"), 0
    )
    cache_delta: Dict[str, object] = {}
    merged_coverage = CoverageMap() if config.coverage else None
    weights_by_shard: Dict[str, Dict[str, float]] = {}
    stage_totals: Dict[str, int] = {}
    for shard_result in sorted(shards, key=lambda s: s.shard):
        for key in totals:
            totals[key] += getattr(shard_result, key)
        for feature, count in shard_result.features.items():
            features[feature] = features.get(feature, 0) + count
        violations.extend(shard_result.violations)
        cache_delta.update(shard_result.cache_delta)
        for stage, elapsed in shard_result.stage_ns.items():
            stage_totals[stage] = stage_totals.get(stage, 0) + elapsed
        if merged_coverage is not None and shard_result.coverage_map is not None:
            merged_coverage.merge(shard_result.coverage_map)
        if shard_result.family_weights is not None:
            weights_by_shard[str(shard_result.shard)] = shard_result.family_weights
    coverage_summary: Optional[Dict[str, object]] = None
    if merged_coverage is not None:
        coverage_summary = merged_coverage.as_dict()
        if weights_by_shard:
            coverage_summary["family_weights"] = weights_by_shard
    if config.cache_dir is not None and cache_delta:
        # Single-writer discipline: only the parent flushes to disk.
        # Shard deltas carry fully-namespaced keys, so no engine needs
        # to be built here just to derive a namespace.
        from ..batch import ProofCache

        parent_cache = ProofCache(config.cache_dir)
        parent_cache.absorb(cache_delta)
        parent_cache.flush()
    violations.sort(key=lambda v: (v.program, v.oracle, v.kind, v.message))
    violations = violations[: config.max_reported]

    if config.shrink_failures and violations:
        shrink_factory = factory or resolve_factory(config.checker)
        # A sound reference makes accepted-mutant shrinking differential;
        # when the campaign checker *is* the reference there is nothing
        # to differ against and only crash-witnessed rejects shrink.
        reference = None if config.checker == "fresh" and factory is None else (
            resolve_factory("fresh")
        )
        shrunk: List[Violation] = []
        budget = config.max_shrinks
        for violation in violations:
            predicate = violation_predicate(violation, shrink_factory, reference)
            if budget > 0 and predicate is not None:
                minimal = shrink(violation.source, predicate)
                violation = dataclasses.replace(violation, shrunk=minimal)
                budget -= 1
            shrunk.append(violation)
        violations = shrunk

    return FuzzReport(
        config=config,
        features=dict(sorted(features.items())),
        violations=tuple(violations),
        coverage=coverage_summary,
        stage_ns=stage_totals if config.profile else None,
        **totals,
    )


# ----------------------------------------------------------------------
# shrinking predicates
# ----------------------------------------------------------------------
def violation_predicate(
    violation: Violation,
    factory: CheckerFactory,
    reference: Optional[CheckerFactory] = None,
) -> Optional[Callable[[str], bool]]:
    """"Still fails the same oracle" as a predicate over source text.

    For accepted-mutant (``reject``) violations the failing property
    must stay *differential* while shrinking — "the campaign checker
    accepts" alone would shrink to any trivially well-typed program.
    The witness is either a runtime crash under acceptance, or (when a
    sound ``reference`` factory is supplied, e.g. against an injected
    bug) acceptance by the campaign checker with rejection by the
    reference.  Returns None when no sharp predicate exists.
    """
    if violation.oracle == "solver":
        # "the backends still disagree" — sharp and self-contained, so
        # divergences shrink like any other differential witness
        fast_factory, legacy_factory = solver_oracle_factories()

        def backends_diverge(source: str) -> bool:
            return check_verdict(source, fast_factory) != check_verdict(
                source, legacy_factory
            )

        return backends_diverge

    crashed = violation.oracle == "reject" and "crashed" in violation.message
    if violation.oracle == "reject" and not crashed and reference is None:
        return None

    def reference_rejects(source: str) -> bool:
        try:
            check_source(source, reference)
        except (ParseError, CheckError, RecursionError):
            return True
        return False

    def still_fails(source: str) -> bool:
        try:
            program, types = check_source(source, factory)
        except (ParseError, CheckError, RecursionError) as exc:
            # Rejected: only the generator oracle counts that as
            # failing, and only when it is the *same* rejection —
            # "any ill-typed candidate" would let pass 2 of the
            # shrinker degrade the program into an unrelated type
            # error and report that as the counterexample.
            return (
                violation.oracle == "generator"
                and type(exc).__name__ == violation.kind
                and str(exc) == violation.message
            )
        if violation.oracle == "generator":
            return False
        if violation.oracle == "reject":
            if crashed:
                try:
                    run_program(program)
                except _DYNAMIC_FAILURES:
                    return True
                return False
            return reference_rejects(source)
        try:
            values, _ = run_program(program)
        except _DYNAMIC_FAILURES:
            return violation.oracle == "eval"
        if violation.oracle == "model":
            from ..model.satisfies import value_has_type

            for name, ty in types.items():
                if name in values:
                    try:
                        if not value_has_type(values[name], ty, values):
                            return True
                    except TypeError:
                        return True
        return False

    return still_fails
