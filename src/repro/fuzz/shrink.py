"""Greedy structural shrinking of failing programs.

``shrink(source, predicate)`` reduces a failing program to a (locally)
minimal counterexample while ``predicate(candidate)`` stays true.  Two
move kinds, applied greedily to a fixpoint:

1. **Drop a top-level form** — a definition, its ``(: ...)``
   annotation, or a body expression.  Dangling annotations and unused
   definitions disappear across iterations, so interlocked pairs
   reduce without special pairing logic.
2. **Simplify a subexpression** — replace any proper subterm either
   with one of its own children (hoisting: ``(if t a b) → a``), by
   dropping one element of a clause list (``([a 1] [b 2]) → ([a 1])``
   — the only move that can narrow a multi-clause ``let`` spine, since
   hoisting a single binding out of its list is never parseable), or,
   for non-symbol subterms, with a strictly simpler literal atom.
   Atom replacement follows a fixed simplicity ranking (``0`` < ``1``
   < ``#t`` < ``#f``) and only ever moves *down* it, so two atoms that
   both satisfy the predicate can never trade places across fixpoint
   passes and spin the check budget away.

The predicate sees rendered source (one top-level form per line), so
"counterexample line count" is simply the number of surviving forms.
Every candidate evaluation is bounded by ``max_checks``; the shrinker
is deterministic — move order is structural, never randomised.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..sexp.printer import write_sexp
from ..sexp.reader import SExp, Symbol, read_all

__all__ = ["shrink", "render_forms"]

#: replacement literals, simplest first — the index is the atom's rank
_ATOMS: Tuple[SExp, ...] = (0, 1, True, False)


def _atom_rank(node: SExp) -> int:
    """Position in the simplicity ranking; past-the-end for non-atoms.

    Matching is type-exact because ``True == 1`` and ``False == 0`` in
    Python — equality alone would rank booleans as integers and
    re-open the swap cycle the ranking exists to close.
    """
    for rank, atom in enumerate(_ATOMS):
        if type(node) is type(atom) and node == atom:
            return rank
    return len(_ATOMS)

Path = Tuple[int, ...]


def render_forms(forms: Sequence[SExp]) -> str:
    """One top-level form per line — the shrinker's canonical layout."""
    return "\n".join(write_sexp(form) for form in forms) + "\n"


def _subpaths(form: SExp, prefix: Path = ()) -> Iterator[Path]:
    """Paths to every proper sublist/atom position, shallow first."""
    if isinstance(form, list):
        for i, child in enumerate(form):
            yield prefix + (i,)
            yield from _subpaths(child, prefix + (i,))


def _get(form: SExp, path: Path) -> SExp:
    for i in path:
        form = form[i]  # type: ignore[index]
    return form


def _replace(form: SExp, path: Path, new: SExp) -> SExp:
    if not path:
        return new
    assert isinstance(form, list)
    head, rest = path[0], path[1:]
    copied = list(form)
    copied[head] = _replace(copied[head], rest, new)
    return copied


def _keyword_position(form: SExp, path: Path) -> bool:
    """Is this position structural syntax (head symbol, ``:`` markers…)?

    Replacing those only produces parse errors; skipping them keeps
    the candidate stream dense with programs the predicate can judge.
    """
    parent = _get(form, path[:-1])
    index = path[-1]
    if not isinstance(parent, list):
        return True
    if index == 0 and isinstance(parent[index], Symbol):
        return True  # operator / special-form head
    node = parent[index]
    if isinstance(node, Symbol) and (node.name == ":" or node.name.startswith("#:")):
        return True
    return False


def shrink(
    source: str,
    predicate: Callable[[str], bool],
    max_checks: int = 400,
) -> str:
    """Greedily minimise ``source`` while ``predicate`` holds.

    Returns the smallest failing rendering found (the input itself if
    nothing smaller still fails, re-rendered one form per line).  The
    predicate is never called on the original source — it is assumed
    failing.
    """
    forms: List[SExp] = list(read_all(source))
    checks = 0

    def holds(candidate_forms: Sequence[SExp]) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        try:
            return bool(predicate(render_forms(candidate_forms)))
        except Exception:
            return False

    progress = True
    while progress and checks < max_checks:
        progress = False
        # pass 1: drop whole top-level forms (largest wins first)
        for i in range(len(forms)):
            if len(forms) == 1:
                break
            candidate = forms[:i] + forms[i + 1:]
            if holds(candidate):
                forms = candidate
                progress = True
                break
        if progress:
            continue
        # pass 2: simplify subexpressions of each surviving form
        for i, form in enumerate(forms):
            replacement = _try_simplify(form, lambda f: holds(
                forms[:i] + [f] + forms[i + 1:]
            ))
            if replacement is not None:
                forms = forms[:i] + [replacement] + forms[i + 1:]
                progress = True
                break
    return render_forms(forms)


def _try_simplify(
    form: SExp, holds: Callable[[SExp], bool]
) -> Optional[SExp]:
    """One simplification step on ``form``, or None if none applies."""
    for path in _subpaths(form):
        node = _get(form, path)
        if _keyword_position(form, path):
            continue
        candidates: List[SExp] = []
        if isinstance(node, list):
            # hoist children (skip the head symbol)
            for child in node[1:] if node and isinstance(node[0], Symbol) else node:
                candidates.append(child)
            # drop one clause of a clause list (a list whose elements
            # are all lists: let/cond spines).  Hoisting can never
            # shrink these — a lone binding outside its list does not
            # parse — so without this move multi-clause spines are
            # irreducible.
            if len(node) >= 2 and all(isinstance(c, list) for c in node):
                for j in range(len(node)):
                    candidates.append(node[:j] + node[j + 1:])
        if not isinstance(node, Symbol):
            # a non-symbol subterm may only become a *strictly simpler*
            # literal (see _atom_rank): monotone descent terminates,
            # where "any other atom" let 0 and 1 swap forever; symbols
            # are kept — replacing binders/variables mostly yields
            # parse errors and burns check budget
            candidates.extend(_ATOMS[: _atom_rank(node)])
        for candidate in candidates:
            simplified = _replace(form, path, candidate)
            if holds(simplified):
                return simplified
    return None
