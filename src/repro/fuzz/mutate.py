"""The mutation engine: ill-typed-by-construction program variants.

Each feature family in :mod:`repro.fuzz.gen` contributes mutant
*recipes* — a ``(kind, replacement)`` pair per definition.  This module
turns recipes into whole-program :class:`Mutant` sources and fixes the
catalogue of mutation kinds.  Every kind is guaranteed ill-typed, so
the rejection oracle may assert ``CheckError`` unconditionally; a
mutant the checker accepts is a checker bug (and if the accepted
mutant then crashes at runtime, a *confirmed* soundness violation).

Kinds (def-level mutants swap one definition, call-level mutants append
one ill-typed use):

``branch-swap``       occurrence branches exchanged: the narrowed
                      variable is used at the wrong type
``range-weaken``      body no longer meets a dependent ``#:where`` range
``guard-drop``        bounds guard deleted around ``safe-vec-ref``
``guard-weaken``      off-by-one / vacuous bounds guard
``field-type``        pair field used at the component's wrong type
``set-type``          ``set!`` violates the binding's declared type
``loop-body-type``    a numeric loop accumulates a boolean
``call-arg-type``     argument at a type disjoint from the domain
``call-arity``        wrong number of arguments
``instantiation``     polymorphic result forced into a wrong context
``refinement-unmet``  argument refinement falsified by a literal
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Mutant", "CALL_LEVEL_KINDS", "DEF_LEVEL_KINDS", "assemble_mutants"]

#: kinds realised by appending one ill-typed use of the definition
CALL_LEVEL_KINDS = frozenset(
    {"call-arg-type", "call-arity", "instantiation", "refinement-unmet"}
)

#: kinds realised by swapping the definition's source in place
DEF_LEVEL_KINDS = frozenset(
    {
        "branch-swap",
        "range-weaken",
        "guard-drop",
        "guard-weaken",
        "field-type",
        "set-type",
        "loop-body-type",
    }
)


@dataclass(frozen=True)
class Mutant:
    """One ill-typed variant of a generated program.

    The expected outcome is always the same — the checker must raise
    ``CheckError`` — which is what makes the rejection oracle a sharp
    differential test rather than a heuristic.
    """

    source: str
    kind: str        # one of the catalogue kinds above
    target: str      # the mutated definition's name
    family: str      # the feature family the definition came from

    def describe(self) -> str:
        return f"{self.kind} on {self.target} ({self.family})"


def assemble_mutants(
    defines: Sequence, base_lines: Sequence[str], index: int
) -> Tuple[Mutant, ...]:
    """Materialise every definition's recipes as whole-program sources.

    ``defines`` is a sequence of ``DefSpec``-shaped objects (``name``,
    ``family``, ``source``, ``mutants``); duck-typed to keep this
    module independent of the generator.
    """
    out: List[Mutant] = []
    for define in defines:
        for kind, replacement in define.mutants:
            if kind in CALL_LEVEL_KINDS:
                mutated = list(base_lines) + [
                    f"(define bad{index} {replacement})"
                ]
            else:
                assert kind in DEF_LEVEL_KINDS, f"unknown mutant kind {kind!r}"
                mutated = [
                    replacement if line == define.source else line
                    for line in base_lines
                ]
            out.append(
                Mutant(
                    source="\n".join(mutated) + "\n",
                    kind=kind,
                    target=define.name,
                    family=define.family,
                )
            )
    return tuple(out)
