"""Well-typed-by-construction program generation.

Every generated program is built from a typed template grammar whose
productions only combine expressions at the types the checker is known
to be *complete* for — so "the checker accepts each generated program"
is an invariant the fuzz oracles get to assume, and a rejection is a
generator (or checker-regression) bug, reported as its own violation
kind.

A program is a handful of annotated function definitions drawn from
the feature families below, followed by *value definitions* binding
call results (so the model oracle can compare each inferred type —
refinements included — against the actual runtime value) and a final
expression combining the integer results:

``arith``        random linear/non-linear integer expressions;
``occurrence``   union-typed parameters narrowed by ``int?``/``str?``
                 tests (the paper's core discipline);
``refinement``   dependent ``#:where`` ranges and ``Nat`` domains
                 (linear-arithmetic theory obligations);
``vector``       guarded ``safe-vec-ref`` idioms: bounds guards,
                 last-element, clamping (§2.1's motivating workload);
``bitvec``       ``bitwise-*`` chains through ``let`` (the §2.2
                 bitvector theory);
``pair``         construction and occurrence-guarded field access;
``poly``         ``(All (A) ...)`` definitions instantiated at ``Int``;
``mutation``     ``set!`` over ``let``-bound locals (§4.2: the checker
                 must *not* learn occurrence facts about these);
``loop``         ``for/sum`` vector loops (§4.4 letrec inference);
``string``       length-guarded ``safe-string-ref``.

Alongside the base program each family contributes *mutants*: the same
program with one definition (or one call) replaced by a variant that is
ill-typed **by construction** — see :mod:`repro.fuzz.mutate` for the
catalogue.  Everything is driven by one :class:`random.Random` seeded
per program index, so program ``i`` of a run is a pure function of
``(base_seed, i)`` no matter which shard generates it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .mutate import Mutant, assemble_mutants

__all__ = [
    "DefSpec",
    "ProgramSpec",
    "FAMILIES",
    "generate_program",
    "program_seed",
]


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DefSpec:
    """One generated definition: its source, call sites and mutants."""

    name: str
    family: str
    source: str                      # the (: ...) + (define ...) unit
    calls: Tuple[str, ...]           # well-typed call expressions
    mutants: Tuple[Tuple[str, str], ...]  # (kind, replacement source)


@dataclass(frozen=True)
class ProgramSpec:
    """A generated program plus the mutation/oracle metadata."""

    index: int
    seed: int
    source: str
    features: Tuple[str, ...]
    defines: Tuple[DefSpec, ...]
    mutants: Tuple[Mutant, ...]


def program_seed(base_seed: int, index: int) -> int:
    """The per-program seed: a pure function of (base_seed, index).

    splitmix64-style mixing so neighbouring indices land far apart and
    the stream is identical no matter which shard draws the index.
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (
        (1 << 64) - 1
    )
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return z ^ (z >> 31)


# ----------------------------------------------------------------------
# typed expression grammar
# ----------------------------------------------------------------------
def _int_atom(rng: random.Random, ints: Sequence[str]) -> str:
    if ints and rng.random() < 0.65:
        return rng.choice(list(ints))
    return str(rng.randint(-20, 20))


def _int_expr(rng: random.Random, ints: Sequence[str], depth: int) -> str:
    """A total integer expression over the in-scope integer variables."""
    if depth <= 0 or rng.random() < 0.3:
        return _int_atom(rng, ints)
    shape = rng.randrange(8)
    if shape == 0:
        return f"(+ {_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
    if shape == 1:
        return f"(- {_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
    if shape == 2:
        return f"(* {_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
    if shape == 3:
        op = rng.choice(("min", "max"))
        return f"({op} {_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
    if shape == 4:
        op = rng.choice(("abs", "add1", "sub1"))
        return f"({op} {_int_expr(rng, ints, depth - 1)})"
    if shape == 5:
        # modulo by a positive literal is total and theory-visible
        return f"(modulo {_int_expr(rng, ints, depth - 1)} {rng.randint(2, 16)})"
    if shape == 6:
        return (
            f"(if {_bool_expr(rng, ints, depth - 1)} "
            f"{_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
        )
    return (
        f"(let ([t{rng.randint(0, 999)} {_int_expr(rng, ints, depth - 1)}]) "
        f"{_int_atom(rng, ints)})"
    )


def _bool_expr(rng: random.Random, ints: Sequence[str], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        return rng.choice(("#t", "#f"))
    shape = rng.randrange(5)
    if shape == 0:
        op = rng.choice(("<", "<=", ">", ">=", "="))
        return f"({op} {_int_expr(rng, ints, depth - 1)} {_int_expr(rng, ints, depth - 1)})"
    if shape == 1:
        return f"(not {_bool_expr(rng, ints, depth - 1)})"
    if shape == 2:
        op = rng.choice(("and", "or"))
        return (
            f"({op} {_bool_expr(rng, ints, depth - 1)} "
            f"{_bool_expr(rng, ints, depth - 1)})"
        )
    if shape == 3:
        op = rng.choice(("even?", "odd?", "zero?"))
        return f"({op} {_int_expr(rng, ints, depth - 1)})"
    return rng.choice(("#t", "#f"))


# ----------------------------------------------------------------------
# feature families — each returns a DefSpec
# ----------------------------------------------------------------------
def _family_arith(rng: random.Random, name: str) -> DefSpec:
    arity = rng.randint(1, 3)
    params = [f"a{i}" for i in range(arity)]
    doms = " ".join("Int" for _ in params)
    body = _int_expr(rng, params, 3)
    source = (
        f"(: {name} : {doms} -> Int)\n"
        f"(define ({name} {' '.join(params)})\n  {body})"
    )
    def call(r: random.Random) -> str:
        args = " ".join(str(r.randint(-20, 20)) for _ in params)
        return f"({name} {args})"
    calls = tuple(call(rng) for _ in range(rng.randint(1, 2)))
    bad_args = " ".join(["#t"] + [str(rng.randint(0, 9)) for _ in params[1:]])
    extra = " ".join("0" for _ in range(arity + 1))
    mutants = (
        ("call-arg-type", f"({name} {bad_args})"),
        ("call-arity", f"({name} {extra})"),
    )
    return DefSpec(name, "arith", source, calls, mutants)


def _family_occurrence(rng: random.Random, name: str) -> DefSpec:
    if rng.random() < 0.5:
        # (U Int Bool): int? dispatch, boolean branch tests the value.
        # The Int branch mentions x exactly once, at the top level: the
        # checker's occurrence narrowing is object-based, so a narrowed
        # union variable must not flow through a nested if-join (the
        # join has no object and forgets the narrowing).  Top-level use
        # also makes the branch-swap mutant ill-typed by construction.
        then = f"(+ x {_int_expr(rng, [], 1)})"
        els = f"(if x {rng.randint(0, 9)} {rng.randint(0, 9)})"
        if rng.random() < 0.5:
            test, a, b = "(int? x)", then, els
        else:
            test, a, b = "(not (int? x))", els, then
        source = (
            f"(: {name} : (U Int Bool) -> Int)\n"
            f"(define ({name} x) (if {test} {a} {b}))"
        )
        calls = tuple(
            f"({name} {rng.choice([str(rng.randint(-9, 9)), '#t', '#f'])})"
            for _ in range(2)
        )
        # swap the branches: x is used at Int under the non-Int guard
        swapped = (
            f"(: {name} : (U Int Bool) -> Int)\n"
            f"(define ({name} x) (if {test} {b} {a}))"
        )
    else:
        # (U Int Str): str? dispatch via string-length (both branches
        # mention x once at the top level — see the narrowing note
        # above — so swapping them is ill-typed by construction)
        then = f"(+ (string-length x) {rng.randint(0, 5)})"
        els = f"(* x {_int_expr(rng, [], 1)})"
        source = (
            f"(: {name} : (U Int Str) -> Int)\n"
            f"(define ({name} x) (if (str? x) {then} {els}))"
        )
        calls = tuple(
            f"({name} {rng.choice([str(rng.randint(-9, 9)), chr(34) + 'abc' + chr(34)])})"
            for _ in range(2)
        )
        swapped = (
            f"(: {name} : (U Int Str) -> Int)\n"
            f"(define ({name} x) (if (str? x) {els} {then}))"
        )
    mutants = (
        ("branch-swap", swapped),
        ("call-arg-type", f"({name} (cons 0 0))"),
    )
    return DefSpec(name, "occurrence", source, calls, mutants)


def _family_refinement(rng: random.Random, name: str) -> DefSpec:
    kind = rng.randrange(3)
    if kind == 0:
        # dependent range: z is an upper bound of both arguments
        body = rng.choice(("(max x y)", "(if (> x y) x y)", "(if (< x y) y x)"))
        where = rng.choice(("(and (>= z x) (>= z y))", "(>= z x)"))
        source = (
            f"(: {name} : [x : Int] [y : Int] -> [z : Int #:where {where}])\n"
            f"(define ({name} x y) {body})"
        )
        calls = tuple(
            f"({name} {rng.randint(-20, 20)} {rng.randint(-20, 20)})"
            for _ in range(2)
        )
        bad = (
            f"(: {name} : [x : Int] [y : Int] -> [z : Int #:where {where}])\n"
            f"(define ({name} x y) (min x y))"
        )
        mutants = (("range-weaken", bad), ("call-arg-type", f"({name} #f 0)"))
    elif kind == 1:
        # Nat -> Nat through addition of a non-negative constant
        k = rng.randint(0, 9)
        source = (
            f"(: {name} : [n : Nat] -> Nat)\n"
            f"(define ({name} n) (+ n {k}))"
        )
        calls = tuple(f"({name} {rng.randint(0, 30)})" for _ in range(2))
        bad = (
            f"(: {name} : [n : Nat] -> Nat)\n"
            f"(define ({name} n) (- n {k + 1}))"
        )
        mutants = (("range-weaken", bad), ("call-arg-type", f"({name} -3)"))
    else:
        # refined domain feeding a Nat result
        k = rng.randint(2, 12)
        source = (
            f"(: {name} : [i : Int #:where (<= 0 i)] -> Nat)\n"
            f"(define ({name} i) (modulo (+ i {rng.randint(0, 9)}) {k}))"
        )
        calls = tuple(f"({name} {rng.randint(0, 30)})" for _ in range(2))
        bad = (
            f"(: {name} : [i : Int #:where (<= 0 i)] -> Nat)\n"
            f"(define ({name} i) (- 0 (+ i 1)))"
        )
        mutants = (("range-weaken", bad), ("call-arg-type", f"({name} -1)"))
    return DefSpec(name, "refinement", source, calls, mutants)


def _vec_literal(rng: random.Random) -> Tuple[str, int]:
    length = rng.randint(1, 5)
    elems = " ".join(str(rng.randint(-9, 9)) for _ in range(length))
    return f"(vector {elems})", length


def _family_vector(rng: random.Random, name: str) -> DefSpec:
    kind = rng.randrange(3)
    default = str(rng.randint(-9, 9))
    if kind == 0:
        guard = "(and (<= 0 i) (< i (len v)))"
        access = "(safe-vec-ref v i)"
        bad_guard = "(and (<= 0 i) (<= i (len v)))"   # off-by-one
    elif kind == 1:
        guard = "(< 0 (len v))"
        access = "(safe-vec-ref v (- (len v) 1))"
        bad_guard = "(<= 0 (len v))"                  # admits empty vectors
    else:
        guard = "(< 0 (len v))"
        access = "(safe-vec-ref v (min (max i 0) (- (len v) 1)))"
        bad_guard = "(<= 0 (len v))"
    body = f"(if {guard} {access} {default})"
    source = (
        f"(: {name} : (Vecof Int) Int -> Int)\n"
        f"(define ({name} v i) {body})"
    )
    def call(r: random.Random) -> str:
        vec, length = _vec_literal(r)
        # indices straddle the bounds: exercise both guard outcomes
        index = r.choice((-1, 0, length - 1, length, length + 3))
        return f"({name} {vec} {index})"
    calls = tuple(call(rng) for _ in range(rng.randint(1, 2)))
    dropped = (
        f"(: {name} : (Vecof Int) Int -> Int)\n"
        f"(define ({name} v i) {access})"
    )
    off_by_one = (
        f"(: {name} : (Vecof Int) Int -> Int)\n"
        f"(define ({name} v i) (if {bad_guard} {access} {default}))"
    )
    mutants = (
        ("guard-drop", dropped),
        ("guard-weaken", off_by_one),
        ("call-arg-type", f"({name} 0 0)"),
    )
    return DefSpec(name, "vector", source, calls, mutants)


def _family_bitvec(rng: random.Random, name: str) -> DefSpec:
    ops = ("bitwise-and", "bitwise-ior", "bitwise-xor")
    if rng.random() < 0.5:
        body = f"({rng.choice(ops)} a b)"
    else:
        inner = f"({rng.choice(ops)} a b)"
        outer = rng.choice(
            [f"({op} t {arg})" for op in ops for arg in ("a", "b")]
            + [f"(SHR t {rng.randint(1, 4)})"]
        )
        body = f"(let ([t {inner}]) {outer})"
    source = (
        f"(: {name} : Nat Nat -> Nat)\n"
        f"(define ({name} a b) {body})"
    )
    calls = tuple(
        f"({name} {rng.randint(0, 255)} {rng.randint(0, 255)})" for _ in range(2)
    )
    mutants = (
        ("call-arg-type", f"({name} -{rng.randint(1, 9)} 0)"),
        ("call-arg-type", f"({name} #t 0)"),
    )
    return DefSpec(name, "bitvec", source, calls, mutants)


def _family_pair(rng: random.Random, name: str) -> DefSpec:
    if rng.random() < 0.5:
        then = _int_expr(rng, ["(fst p)"], 2)
        source = (
            f"(: {name} : (Pairof Int Bool) -> Int)\n"
            f"(define ({name} p) (if (snd p) {then} (- 0 (fst p))))"
        )
        def call(r: random.Random) -> str:
            return (
                f"({name} (cons {r.randint(-9, 9)} "
                f"{r.choice(('#t', '#f'))}))"
            )
        bad_def = (
            f"(: {name} : (Pairof Int Bool) -> Int)\n"
            f"(define ({name} p) (+ (snd p) 1))"
        )
        bad_call = f"({name} (cons #t #t))"
    else:
        source = (
            f"(: {name} : (Pairof (Pairof Int Int) Bool) -> Int)\n"
            f"(define ({name} p) "
            f"(if (snd p) (fst (fst p)) (snd (fst p))))"
        )
        def call(r: random.Random) -> str:
            return (
                f"({name} (cons (cons {r.randint(-9, 9)} {r.randint(-9, 9)}) "
                f"{r.choice(('#t', '#f'))}))"
            )
        bad_def = (
            f"(: {name} : (Pairof (Pairof Int Int) Bool) -> Int)\n"
            f"(define ({name} p) (fst p))"
        )
        bad_call = f"({name} (cons 1 #t))"
    calls = tuple(call(rng) for _ in range(rng.randint(1, 2)))
    mutants = (("field-type", bad_def), ("call-arg-type", bad_call))
    return DefSpec(name, "pair", source, calls, mutants)


def _family_poly(rng: random.Random, name: str) -> DefSpec:
    kind = rng.randrange(3)
    if kind == 0:
        source = (
            f"(: {name} : (All (A) [c : Bool] [x : A] [y : A] -> A))\n"
            f"(define ({name} c x y) (if c x y))"
        )
        calls = tuple(
            f"({name} {rng.choice(('#t', '#f'))} "
            f"{rng.randint(-9, 9)} {rng.randint(-9, 9)})"
            for _ in range(2)
        )
        mutants = (
            ("call-arity", f"({name} #t 1)"),
            ("instantiation", f"(+ 1 ({name} #t #f #f))"),
        )
    elif kind == 1:
        k = rng.randint(0, 2)
        source = (
            f"(: {name} : (All (A) [v : (Vecof A) #:where (< {k} (len v))] -> A))\n"
            f"(define ({name} v) (safe-vec-ref v {k}))"
        )
        def call(r: random.Random) -> str:
            length = r.randint(k + 1, k + 4)
            elems = " ".join(str(r.randint(-9, 9)) for _ in range(length))
            return f"({name} (vector {elems}))"
        calls = tuple(call(rng) for _ in range(2))
        short = " ".join("0" for _ in range(k)) if k else ""
        mutants = (
            ("refinement-unmet", f"({name} (vector {short}))"),
            ("call-arity", f"({name})"),
        )
    else:
        source = (
            f"(: {name} : (All (A B) [p : (Pairof A B)] -> (Pairof B A)))\n"
            f"(define ({name} p) (cons (snd p) (fst p)))"
        )
        calls = tuple(
            f"(fst ({name} (cons #t {rng.randint(-9, 9)})))" for _ in range(2)
        )
        mutants = (
            ("field-type", (
                f"(: {name} : (All (A B) [p : (Pairof A B)] -> (Pairof B A)))\n"
                f"(define ({name} p) (cons (fst p) (fst p)))"
            )),
            ("call-arity", f"({name} (cons 1 2) 3)"),
        )
    return DefSpec(name, "poly", source, calls, mutants)


def _family_mutation(rng: random.Random, name: str) -> DefSpec:
    if rng.random() < 0.5:
        k = rng.randint(-9, 9)
        step1 = _int_expr(rng, ["x", "acc"], 2)
        source = (
            f"(: {name} : Int -> Int)\n"
            f"(define ({name} x)\n"
            f"  (let ([acc {k}])\n"
            f"    (set! acc {step1})\n"
            f"    (set! acc (+ acc x))\n"
            f"    acc))"
        )
        bad = (
            f"(: {name} : Int -> Int)\n"
            f"(define ({name} x)\n"
            f"  (let ([acc {k}])\n"
            f"    (set! acc #t)\n"
            f"    0))"
        )
    else:
        a, b = rng.randint(-9, 9), rng.randint(-9, 9)
        source = (
            f"(: {name} : Bool -> Int)\n"
            f"(define ({name} x)\n"
            f"  (let ([flag x])\n"
            f"    (set! flag (not flag))\n"
            f"    (if flag {a} {b})))"
        )
        bad = (
            f"(: {name} : Bool -> Int)\n"
            f"(define ({name} x)\n"
            f"  (let ([flag x])\n"
            f"    (set! flag {a})\n"
            f"    0))"
        )
    calls = tuple(
        f"({name} {rng.choice(('#t', '#f')) if 'Bool' in source.splitlines()[0] else rng.randint(-9, 9)})"
        for _ in range(2)
    )
    mutants = (("set-type", bad),)
    return DefSpec(name, "mutation", source, calls, mutants)


def _family_loop(rng: random.Random, name: str) -> DefSpec:
    if rng.random() < 0.6:
        elem = rng.choice(("(vec-ref v i)", "(+ (vec-ref v i) 1)", "(* (vec-ref v i) 2)"))
        source = (
            f"(: {name} : (Vecof Int) -> Int)\n"
            f"(define ({name} v)\n"
            f"  (for/sum ([i (in-range (len v))]) {elem}))"
        )
        def call(r: random.Random) -> str:
            vec, _ = _vec_literal(r)
            return f"({name} {vec})"
        calls = tuple(call(rng) for _ in range(rng.randint(1, 2)))
        bad = (
            f"(: {name} : (Vecof Int) -> Int)\n"
            f"(define ({name} v)\n"
            f"  (for/sum ([i (in-range (len v))]) #t))"
        )
    else:
        k = rng.randint(2, 12)
        body = _int_expr(rng, ["i"], 2)
        source = (
            f"(: {name} : Int -> Int)\n"
            f"(define ({name} x)\n"
            f"  (for/sum ([i (in-range {k})]) (+ {body} x)))"
        )
        calls = tuple(f"({name} {rng.randint(-9, 9)})" for _ in range(2))
        bad = (
            f"(: {name} : Int -> Int)\n"
            f"(define ({name} x)\n"
            f"  (for/sum ([i (in-range {k})]) #f))"
        )
    mutants = (("loop-body-type", bad),)
    return DefSpec(name, "loop", source, calls, mutants)


def _family_string(rng: random.Random, name: str) -> DefSpec:
    if rng.random() < 0.5:
        source = (
            f"(: {name} : Str Str -> Int)\n"
            f"(define ({name} a b) "
            f"(+ (string-length (string-append a b)) {rng.randint(0, 5)}))"
        )
    else:
        k = rng.randint(0, 3)
        source = (
            f"(: {name} : Str Str -> Int)\n"
            f"(define ({name} a b)\n"
            f"  (if (< {k} (string-length a)) (safe-string-ref a {k}) "
            f"{rng.randint(0, 9)}))"
        )
    words = ("a", "ab", "abc", "hello", "")
    calls = tuple(
        f'({name} "{rng.choice(words)}" "{rng.choice(words)}")' for _ in range(2)
    )
    mutants = (
        ("call-arg-type", f'({name} {rng.randint(0, 9)} "x")'),
        ("call-arity", f'({name} "x")'),
    )
    return DefSpec(name, "string", source, calls, mutants)


FAMILIES: Dict[str, Callable[[random.Random, str], DefSpec]] = {
    "arith": _family_arith,
    "occurrence": _family_occurrence,
    "refinement": _family_refinement,
    "vector": _family_vector,
    "bitvec": _family_bitvec,
    "pair": _family_pair,
    "poly": _family_poly,
    "mutation": _family_mutation,
    "loop": _family_loop,
    "string": _family_string,
}

#: weights: the theory-heavy families are the interesting workloads
_FAMILY_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("arith", 2),
    ("occurrence", 3),
    ("refinement", 3),
    ("vector", 4),
    ("bitvec", 2),
    ("pair", 2),
    ("poly", 2),
    ("mutation", 2),
    ("loop", 2),
    ("string", 1),
)

def _pick_families(
    rng: random.Random,
    count: int,
    weights: Optional[Dict[str, float]] = None,
) -> List[str]:
    if weights is None:
        names = [name for name, weight in _FAMILY_WEIGHTS for _ in range(weight)]
        return [rng.choice(names) for _ in range(count)]
    # coverage-guided mode: the scheduler hands us dynamic weights.
    # Iteration order is pinned to the static family table so the draw
    # is a pure function of (rng state, weights), not dict history.
    population = [name for name, _ in _FAMILY_WEIGHTS]
    picked = rng.choices(
        population, weights=[max(0.0, weights.get(name, 0.0)) for name in population],
        k=count,
    )
    return list(picked)


def generate_program(
    base_seed: int,
    index: int,
    weights: Optional[Dict[str, float]] = None,
) -> ProgramSpec:
    """Generate program ``index`` of the run seeded by ``base_seed``.

    Without ``weights`` this is a pure function of ``(base_seed,
    index)`` — the shard-invariance property every digest rests on.
    With ``weights`` (coverage-guided campaigns) the family draw is
    additionally a function of the scheduler's weights at this index;
    determinism then holds per (seed, shard count), which is exactly
    what the guided runner replays.
    """
    seed = program_seed(base_seed, index)
    rng = random.Random(seed)
    n_defs = rng.randint(2, 4)
    defines: List[DefSpec] = []
    for position, family in enumerate(_pick_families(rng, n_defs, weights)):
        defines.append(FAMILIES[family](rng, f"f{index}_{position}"))

    lines: List[str] = [f";; fuzz program {index} (seed {seed})"]
    result_names: List[str] = []
    for define in defines:
        lines.append(define.source)
    for k, define in enumerate(defines):
        for j, call in enumerate(define.calls):
            result = f"r{index}_{k}_{j}"
            lines.append(f"(define {result} {call})")
            result_names.append(result)
    if len(result_names) >= 2:
        footer = result_names[0]
        for other in result_names[1:]:
            footer = f"(+ {footer} {other})"
        lines.append(footer)
    source = "\n".join(lines) + "\n"

    features = tuple(sorted({d.family for d in defines}))
    return ProgramSpec(
        index=index,
        seed=seed,
        source=source,
        features=features,
        defines=tuple(defines),
        mutants=assemble_mutants(defines, lines, index),
    )
