"""Auto-triaged bug catalog for the fuzzing pipeline.

Two halves:

* **Triage** — machinery turning raw oracle :class:`Violation`\\ s into
  deduplicated :class:`TriagedBug` groups.  Every violation is
  fingerprinted by *what the engine did* on its failing trace — the
  kernel rules fired and the theories consulted while re-checking its
  (shrunk) repro — plus the oracle and outcome, so two programs that
  tickle the same defect through different surface syntax collapse
  into one group, while two defects that happen to share an exception
  class stay apart.
* **The catalog** — :data:`BUG_CATALOG`, the curated, committed record
  of every bug the fuzz farm has surfaced: symptom, root cause,
  category, minimal repro, where it was first seen, and the regression
  test that pins the fix.  ``status`` distinguishes ``fixed`` bugs
  from ``survived-audit`` entries — seams the campaign targeted with
  real budget and failed to break, filed with the evidence (a stress
  test or a zero-divergence campaign digest) so the next reader knows
  the seam was audited rather than ignored.

Rendered for humans by :func:`repro.study.report.bug_study_table`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..checker.check import Checker
from ..checker.errors import CheckError
from ..logic.prove import Logic
from ..sexp.reader import ReaderError
from ..syntax.parser import ParseError, parse_program

__all__ = [
    "trace_fingerprint",
    "TriagedBug",
    "triage",
    "BugRecord",
    "BUG_CATALOG",
]


def trace_fingerprint(source: str, oracle: str = "") -> str:
    """Fingerprint a repro by its failing trace, not its text.

    The repro is re-checked on a fresh engine and the fingerprint is
    taken over (oracle, check outcome, kernel rules fired, theories
    consulted) — the :attr:`EngineStats.rule_hits` /
    ``theory_queries`` key sets of the trace.  Counts are deliberately
    excluded: a defect reached through 3 or 30 rule firings is the
    same defect.
    """
    logic = Logic()
    baseline = logic.stats.copy()
    outcome = "accept"
    try:
        program = parse_program(source)
        Checker(logic=logic).check_program(program)
    except (ReaderError, ParseError, CheckError, RecursionError) as exc:
        outcome = f"raise:{type(exc).__name__}"
    delta = logic.stats.delta_from(baseline)
    payload = {
        "oracle": oracle,
        "outcome": outcome,
        "rules": sorted(delta.rule_hits),
        "theories": sorted(delta.theory_queries),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class TriagedBug:
    """One deduplicated group of oracle violations."""

    fingerprint: str
    oracle: str
    count: int
    first_program: int
    first_seed: int
    kinds: Tuple[str, ...]       # distinct violation kinds in the group
    repro: str                   # minimal (shrunk when available) source
    messages: Tuple[str, ...]    # one representative message per kind

    def as_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "oracle": self.oracle,
            "count": self.count,
            "first_program": self.first_program,
            "first_seed": self.first_seed,
            "kinds": list(self.kinds),
            "repro": self.repro,
            "messages": list(self.messages),
        }


def triage(violations: Sequence) -> List[TriagedBug]:
    """Deduplicate violations into per-defect groups.

    Accepts any sequence of :class:`repro.fuzz.oracles.Violation`
    (duck-typed).  Violations sharing (oracle, trace fingerprint of
    their best repro) form one group; the group keeps the smallest
    repro seen and the earliest (program, seed) sighting.
    """
    groups: Dict[Tuple[str, str], Dict[str, object]] = {}
    for violation in violations:
        repro = violation.shrunk or violation.source
        key = (violation.oracle, trace_fingerprint(repro, violation.oracle))
        group = groups.get(key)
        if group is None:
            group = {
                "count": 0,
                "first_program": violation.program,
                "first_seed": violation.seed,
                "repro": repro,
                "kinds": {},
            }
            groups[key] = group
        group["count"] += 1
        if violation.program < group["first_program"]:
            group["first_program"] = violation.program
            group["first_seed"] = violation.seed
        if len(repro) < len(group["repro"]):
            group["repro"] = repro
        group["kinds"].setdefault(violation.kind, violation.message)
    bugs = [
        TriagedBug(
            fingerprint=fingerprint,
            oracle=oracle,
            count=group["count"],
            first_program=group["first_program"],
            first_seed=group["first_seed"],
            kinds=tuple(sorted(group["kinds"])),
            repro=group["repro"],
            messages=tuple(
                group["kinds"][kind] for kind in sorted(group["kinds"])
            ),
        )
        for (oracle, fingerprint), group in groups.items()
    ]
    bugs.sort(key=lambda b: (b.oracle, -b.count, b.fingerprint))
    return bugs


# ----------------------------------------------------------------------
# the committed catalog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BugRecord:
    """One catalog entry: a bug found (or a seam audited) by fuzzing."""

    bug_id: str          # stable identifier, e.g. "RTR-001"
    title: str
    category: str        # shrinker | batch | server | solver | checker
    status: str          # "fixed" | "survived-audit"
    oracle: str          # which oracle/harness surfaced it
    symptom: str
    root_cause: str
    repro: str           # minimal repro source, or the audit command
    first_seen: str      # campaign coordinates (seed/mode) or audit name
    regression_test: str # test that pins the fix (or the audit evidence)

    def as_dict(self) -> Dict[str, object]:
        return {
            "bug_id": self.bug_id,
            "title": self.title,
            "category": self.category,
            "status": self.status,
            "oracle": self.oracle,
            "symptom": self.symptom,
            "root_cause": self.root_cause,
            "repro": self.repro,
            "first_seen": self.first_seen,
            "regression_test": self.regression_test,
        }


#: Every bug the fuzz farm has surfaced, in discovery order.  Grown by
#: hand per campaign batch: triage proposes, a human (or the campaign
#: harness) confirms root cause and files the record with its pinned
#: regression test.
BUG_CATALOG: Tuple[BugRecord, ...] = (
    BugRecord(
        bug_id="RTR-001",
        title="Shrinker cannot reduce multi-clause let binding lists",
        category="shrinker",
        status="fixed",
        oracle="shrink-audit",
        symptom=(
            "Counterexamples containing (let ([a ...] [b ...] ...) body) "
            "never lose unused bindings: shrunk repros stay several "
            "clauses wide even when one binding suffices."
        ),
        root_cause=(
            "shrink.py had no drop-one-element move for list nodes whose "
            "elements are all lists (the binding-list shape); hoisting a "
            "single binding produced unparseable candidates, so every "
            "reduction attempt on the spine failed and the bindings "
            "survived verbatim."
        ),
        repro="(let ([a 1] [b 2] [c 3]) a)",
        first_seen="shrinker seam audit, PR 7 campaign (seed 2016)",
        regression_test="tests/test_fuzz_shrink.py::test_let_binding_list_drops_unused_clauses",
    ),
    BugRecord(
        bug_id="RTR-002",
        title="Shrinker atom replacement oscillates and burns its budget",
        category="shrinker",
        status="fixed",
        oracle="shrink-audit",
        symptom=(
            "Shrinking long programs hit max_checks without converging; "
            "traces showed the same positions flipping 0 -> 1 -> 0 -> ... "
            "across fixpoint passes."
        ),
        root_cause=(
            "_try_simplify offered every replacement atom except the "
            "current node, so 0 could become 1 and 1 become 0 whenever "
            "either kept the predicate true; the fixpoint loop then "
            "re-offered the inverse swap each pass.  Replacements now "
            "follow a strict simplicity ranking (0 < 1 < #t < #f) and "
            "only ever move down it."
        ),
        repro="any predicate true under both 0 and 1 at one position",
        first_seen="shrinker seam audit, PR 7 campaign (seed 2016)",
        regression_test="tests/test_fuzz_shrink.py::test_atom_replacement_terminates_without_oscillation",
    ),
    BugRecord(
        bug_id="RTR-003",
        title="Resident worker pool hangs forever if a fork worker dies",
        category="batch",
        status="fixed",
        oracle="farm-audit",
        symptom=(
            "A worker process killed mid-batch (OOM kill, segfault in a "
            "native extension) left multiprocessing.Pool.map blocked "
            "forever; under the daemon this wedged the single engine "
            "lane, turning one lost worker into a dead service."
        ),
        root_cause=(
            "multiprocessing.Pool.map has no liveness handling on "
            "Python 3.11: a dead worker's chunk is never resubmitted "
            "and the MapResult never completes.  WorkerPool.map now "
            "uses map_async with a liveness watchdog: if any worker "
            "process dies before the result lands, the pool is torn "
            "down and the batch re-runs in-process (slow but sound)."
        ),
        repro="kill -9 one pool worker mid check_many batch",
        first_seen="daemon seam audit, PR 7 (worker-death drill)",
        regression_test="tests/test_pipeline_worker_death.py::test_map_survives_worker_death",
    ),
    BugRecord(
        bug_id="RTR-004",
        title="Daemon reset racing in-flight farm connections",
        category="server",
        status="survived-audit",
        oracle="farm",
        symptom=(
            "Audited: reset requests interleaved with a farm "
            "connection's check_text stream could plausibly replay "
            "stale session verdicts or serve half-reset engine state."
        ),
        root_cause=(
            "No defect found.  The single engine lane serializes reset "
            "against every in-flight request, and the epoch guard "
            "(Logic.epoch bump + per-session guard_epoch) forces stale "
            "sessions to drop module stores and rebuild leases before "
            "serving again.  The stress test interleaves resets from a "
            "second connection with a farm-style check stream and "
            "verdicts stay bit-identical to a reset-free run."
        ),
        repro="tests/test_server_reset_race.py (interleaved reset stress)",
        first_seen="daemon seam audit, PR 7",
        regression_test="tests/test_server_reset_race.py::test_reset_storm_preserves_verdicts",
    ),
    BugRecord(
        bug_id="RTR-005",
        title="Fast-vs-legacy solver backends: no divergence at campaign scale",
        category="solver",
        status="survived-audit",
        oracle="solver",
        symptom=(
            "Audited: the PR 6 solver cores (incremental dual simplex, "
            "CDCL) could diverge from the Fourier-Motzkin/DPLL "
            "references on some generated program."
        ),
        root_cause=(
            "No divergence found.  The PR 7 campaign ran the "
            "--solver-oracle differential across multiple seeds and "
            "shard layouts (thousands of programs, every generator "
            "family) with zero verdict divergences; campaign digests "
            "are pinned in tests and CI re-runs a fixed slice."
        ),
        repro="python -m repro fuzz --solver-oracle --seed 2016 --count 400",
        first_seen="PR 7 campaign (seeds 0/42/2016/31337)",
        regression_test="tests/test_fuzz_campaign.py::test_solver_oracle_campaign_no_divergence",
    ),
    BugRecord(
        bug_id="RTR-006",
        title="Every daemon stop() stalls 5s on the shutdown watcher",
        category="server",
        status="fixed",
        oracle="farm-audit",
        symptom=(
            "Stopping a daemon — farm teardown, test teardown, service "
            "restart — always took a hair over 5 seconds even with no "
            "connections open (~70s of pure teardown across the server "
            "test suite)."
        ),
        root_cause=(
            "The shutdown-watcher thread blocks forever on the "
            "_shutdown_requested event, but stop() only set _stop; the "
            "join(timeout=5.0) over server threads then waited the "
            "full timeout on a thread structurally unable to observe "
            "the stop.  stop() now wakes the watcher (which sees _stop "
            "set and exits) before joining."
        ),
        repro="CheckingServer.start(); time stop()  # 5.2s before, 0.2s after",
        first_seen="daemon seam audit, PR 7 (test-duration profile)",
        regression_test="tests/test_server.py::TestStopLatency::test_stop_completes_promptly",
    ),
)
