"""Textual reports matching the paper's evaluation artifacts.

Beyond the paper's tables, :func:`engine_stats_table` renders the
incremental proof engine's counters (cache hit rates, theory-session
reuse, per-theory query counts) — the observability surface for the
``--stats`` CLI flag and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List

from ..corpus.profiles import PAPER_CORPUS, PAPER_FIGURE9
from ..logic.prove import EngineStats
from ..tr.intern import intern_stats
from .casestudy import LibraryResult, StudyResult

__all__ = [
    "figure9_table",
    "corpus_table",
    "math_categories_table",
    "headline",
    "engine_stats_table",
    "fuzz_table",
    "server_latency_table",
    "bug_study_table",
]

_ORDER = ("plot", "pict3d", "math")


def figure9_table(result: StudyResult) -> str:
    """Figure 9: % of vector ops verifiable, stacked by tier."""
    lines: List[str] = []
    lines.append("Figure 9 — safe-vec-ref case study  (measured vs paper)")
    lines.append(
        f"{'library':<10}{'automatic':>22}{'+annotations':>22}{'+modifications':>22}"
    )
    for name in _ORDER:
        if name not in result.libraries:
            continue
        lib = result.libraries[name]
        paper = PAPER_FIGURE9[name]
        row = f"{name:<10}"
        for tier, key in (
            ("auto", "auto"),
            ("annotation", "annotation"),
            ("modification", "modification"),
        ):
            measured = lib.percentage(tier)
            row += f"{measured:>10.0f}% ({paper[key]:>4.0f}%)"
        lines.append(row)
    lines.append("(parenthesised numbers are the paper's)")
    return "\n".join(lines)


def corpus_table(result: StudyResult) -> str:
    """The §5 in-text corpus statistics (LoC and unique vector ops)."""
    lines = ["Corpus statistics (measured vs paper)"]
    lines.append(f"{'library':<10}{'LoC':>18}{'vector ops':>22}")
    total_loc = total_paper_loc = total_ops = total_paper_ops = 0
    for name in _ORDER:
        if name not in result.libraries:
            continue
        lib = result.libraries[name]
        paper_loc, paper_ops = PAPER_CORPUS[name]
        lines.append(
            f"{name:<10}{lib.loc:>9} ({paper_loc:>6}){lib.ops:>13} ({paper_ops:>4})"
        )
        total_loc += lib.loc
        total_paper_loc += paper_loc
        total_ops += lib.ops
        total_paper_ops += paper_ops
    lines.append(
        f"{'total':<10}{total_loc:>9} ({total_paper_loc:>6})"
        f"{total_ops:>13} ({total_paper_ops:>4})"
    )
    return "\n".join(lines)


def math_categories_table(result: StudyResult) -> str:
    """§5.1: the category breakdown for the math library."""
    if "math" not in result.libraries:
        return "math library not analysed"
    lib = result.libraries["math"]
    paper = {
        "auto": 25.0,
        "annotation": 34.0,
        "modification": 13.0,
        "beyond-scope": 22.0,
        "unimplemented": 6.0,
    }
    lines = ["§5.1 math library — category breakdown (measured vs paper)"]
    for tier, label in (
        ("auto", "Automatically verified"),
        ("annotation", "Annotations added"),
        ("modification", "Code modified"),
        ("beyond-scope", "Beyond our scope"),
        ("unimplemented", "Unimplemented features"),
    ):
        lines.append(
            f"  {label:<26}{lib.percentage(tier):>6.0f}%   (paper: {paper[tier]:>4.0f}%)"
        )
    unsafe_ops = lib.tier_counts.get("unsafe", 0)
    lines.append(f"  {'Unsafe code':<26}{unsafe_ops:>5} ops  (paper:    2 ops)")
    verified = sum(lib.percentage(t) for t in ("auto", "annotation", "modification"))
    lines.append(f"  {'Total verifiable':<26}{verified:>6.0f}%   (paper:   72%)")
    return "\n".join(lines)


def headline(result: StudyResult) -> str:
    """§1/§5 headline: ~50% verified automatically, corpus-wide."""
    return (
        f"Automatically verified vector accesses across the corpus: "
        f"{result.auto_percentage():.0f}% of {result.total_ops} ops "
        f"(paper: ≈50% of 1085 ops)"
    )


def fuzz_table(report) -> str:
    """Campaign statistics for a :class:`repro.fuzz.runner.FuzzReport`.

    Accepts the report duck-typed so this module needs no import of the
    fuzz subsystem (the CLI hands us the real thing).
    """
    cfg = report.config
    lines = [
        "Differential fuzzing campaign",
        f"  {'seed / count / shards':<24}{cfg.seed} / {cfg.count} / {cfg.shards}",
        f"  {'checker under test':<24}{cfg.checker}",
        f"  {'programs generated':<24}{report.programs:>8}",
        f"  {'accepted (well-typed)':<24}{report.accepted:>8}",
        f"  {'evaluated cleanly':<24}{report.evaluated:>8}",
        f"  {'model-checked defs':<24}{report.model_checked:>8}",
        f"  {'mutants rejected':<24}{report.mutants_rejected:>8} / {report.mutants_checked}",
        f"  {'violations':<24}{len(report.violations):>8}",
    ]
    if report.features:
        lines.append("  feature coverage:")
        for feature, count in sorted(report.features.items()):
            lines.append(f"    {feature:<22}{count:>8} programs")
    coverage = getattr(report, "coverage", None)
    if coverage:
        lines.append("  engine coverage:")
        lines.append(f"    {'points reached':<22}{coverage.get('points', 0):>8}")
        corpus = coverage.get("corpus") or []
        lines.append(f"    {'novel seeds (corpus)':<22}{len(corpus):>8}")
        lines.append(f"    coverage digest       {coverage.get('digest', '')}")
        weights = coverage.get("family_weights") or {}
        for shard in sorted(weights):
            ranked = sorted(
                weights[shard].items(), key=lambda kv: (-kv[1], kv[0])
            )[:3]
            top = ", ".join(f"{name} {weight:g}" for name, weight in ranked)
            lines.append(f"    shard {shard} top weights  {top}")
    lines.append(f"  {'digest':<24}{report.digest()}")
    return "\n".join(lines)


def server_latency_table(results: Dict[str, object]) -> str:
    """Served-vs-cold check latency, the daemon's raison d'être.

    ``results`` is the artifact written by
    ``benchmarks/test_bench_server_latency.py``: per-mode ``p50_ms`` /
    ``p95_ms`` / ``mean_ms`` over the same corpus slice, where *cold*
    is one ``repro check`` process per module (interpreter + engine
    start-up every time) and *warm* is per-module requests against a
    resident ``repro serve`` daemon.
    """
    modes = [
        ("cold", "cold process / check"),
        ("warm", "warm daemon / check"),
    ]
    lines = [
        "Checking service — served vs cold per-module latency",
        f"  corpus: {results.get('corpus_programs', '?')} modules"
        f"  (seed {results.get('corpus_seed', '?')})",
        f"  {'mode':<26}{'p50':>10}{'p95':>10}{'mean':>10}",
    ]
    for key, label in modes:
        mode = results.get(key)
        if not isinstance(mode, dict):
            continue
        lines.append(
            f"  {label:<26}"
            f"{mode.get('p50_ms', 0.0):>8.1f}ms"
            f"{mode.get('p95_ms', 0.0):>8.1f}ms"
            f"{mode.get('mean_ms', 0.0):>8.1f}ms"
        )
    speedup = results.get("speedup_warm_over_cold_p50")
    if speedup is not None:
        lines.append(f"  warm daemon speedup (p50): {speedup:.1f}x")
    return "\n".join(lines)


def server_saturation_table(results: Dict[str, object]) -> str:
    """Clients × lanes throughput, the multi-lane daemon's honesty table.

    ``results`` is the artifact written by
    ``benchmarks/test_bench_server_saturation.py``: one row per
    (clients, lanes) point with ``requests_per_second``.  The ratio
    column is multi-lane over single-lane at the same client count —
    on CPython the lanes share the GIL, so the claim this table backs
    is "never worse beyond noise", not a speedup.
    """
    matrix = results.get("matrix") or []
    multi = results.get("multi_lanes", "?")
    lines = [
        "Checking service — saturation throughput (clients × lanes)",
        f"  corpus: {results.get('corpus_programs', '?')} modules"
        f"  (seed {results.get('corpus_seed', '?')}),"
        f" {results.get('requests_per_client', '?')} requests/client,"
        f" {results.get('cpu_count', '?')} cpus",
        f"  {'clients':>9}{'1 lane':>14}{f'{multi} lanes':>14}{'ratio':>9}",
    ]
    by_key = {}
    for row in matrix:
        if isinstance(row, dict):
            by_key[(row.get("clients"), row.get("lanes"))] = row
    client_counts = sorted({c for c, _ in by_key})
    for clients in client_counts:
        single = by_key.get((clients, 1), {}).get("requests_per_second", 0.0)
        fleet = by_key.get((clients, multi), {}).get("requests_per_second", 0.0)
        ratio = fleet / single if single else 0.0
        lines.append(
            f"  {clients:>9}{single:>10.1f}ips{fleet:>10.1f}ips{ratio:>8.2f}x"
        )
    gate = results.get("min_ratio_gate")
    median_gate = results.get("min_median_ratio_gate")
    if gate is not None:
        line = f"  gate: multi-lane ≥ {gate}x single-lane at every point"
        if median_gate is not None:
            line += f", median ratio ≥ {median_gate}"
        lines.append(line)
    return "\n".join(lines)


def bug_study_table(records=None) -> str:
    """The committed bug catalog, rendered (``repro.study.bugs``).

    ``records`` defaults to :data:`repro.study.bugs.BUG_CATALOG`; the
    farm CLI also renders freshly triaged groups through the same
    shape before they are promoted to catalog entries.
    """
    if records is None:
        from .bugs import BUG_CATALOG

        records = BUG_CATALOG
    fixed = sum(1 for r in records if r.status == "fixed")
    audited = sum(1 for r in records if r.status == "survived-audit")
    lines = [
        "Fuzz-farm bug catalog",
        f"  {len(records)} entries: {fixed} fixed, {audited} survived audit",
    ]
    for record in records:
        lines.append("")
        lines.append(f"  {record.bug_id}  [{record.status}]  {record.title}")
        lines.append(f"    category    {record.category}   oracle: {record.oracle}")
        lines.append(f"    symptom     {record.symptom}")
        lines.append(f"    root cause  {record.root_cause}")
        lines.append(f"    repro       {record.repro}")
        lines.append(f"    first seen  {record.first_seen}")
        lines.append(f"    pinned by   {record.regression_test}")
    return "\n".join(lines)


def engine_stats_table(stats: EngineStats) -> str:
    """The incremental proof engine's counters, rendered as a table."""
    lines = ["Incremental proof engine statistics"]
    lines.append(
        f"  {'proof cache':<22}{stats.prove_hits:>8} hits /"
        f"{stats.prove_calls:>8} queries  ({stats.prove_hit_rate:5.1f}%)"
    )
    lines.append(
        f"  {'subtype cache':<22}{stats.subtype_hits:>8} hits /"
        f"{stats.subtype_calls:>8} queries  ({stats.subtype_hit_rate:5.1f}%)"
    )
    lines.append(
        f"  {'lookup cache':<22}{stats.lookup_hits:>8} hits /"
        f"{stats.lookup_calls:>8} queries  ({stats.lookup_hit_rate:5.1f}%)"
    )
    sessions_total = stats.session_hits + stats.session_derives + stats.session_builds
    lines.append(
        f"  {'theory sessions':<22}{stats.session_hits:>8} reused /"
        f"{stats.session_derives:>6} derived /"
        f"{stats.session_builds:>6} built  (of {sessions_total})"
    )
    lines.append(
        f"  {'theory goals':<22}{stats.theory_goals:>8}  "
        f"(batched into {stats.theory_batches} dispatches)"
    )
    for name in sorted(stats.theory_queries):
        lines.append(
            f"    {name + ' queries':<20}{stats.theory_queries[name]:>8}"
        )
    if stats.solver_counters:
        lines.append("  solver cores")
        for name in sorted(stats.solver_counters):
            lines.append(f"    {name:<20}{stats.solver_counters[name]:>8}")
    # budget aborts and skipped cache shards ride in rule_hits under
    # reserved prefixes; render them as robustness, not kernel rules
    robust = {
        name: count
        for name, count in stats.rule_hits.items()
        if name.startswith(("budget.", "cache."))
    }
    rules = {
        name: count
        for name, count in stats.rule_hits.items()
        if name not in robust
    }
    if rules:
        lines.append("  kernel rules")
        for name in sorted(rules):
            lines.append(f"    {name:<20}{rules[name]:>8}")
    if robust:
        lines.append("  robustness")
        for name in sorted(robust):
            lines.append(f"    {name:<20}{robust[name]:>8}")
    persist_total = stats.persist_hits + stats.persist_misses
    if persist_total:
        lines.append(
            f"  {'persistent cache':<22}{stats.persist_hits:>8} hits /"
            f"{persist_total:>8} probes  "
            f"({EngineStats._rate(stats.persist_hits, persist_total):5.1f}%)"
        )
    interning = intern_stats()
    lines.append(
        f"  {'interned nodes':<22}{interning['nodes']:>8} distinct /"
        f"{interning['shared']:>8} shared"
    )
    return "\n".join(lines)
