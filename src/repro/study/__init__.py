"""The §5 case-study harness (Figure 9) and its reports."""

from .casestudy import StudyResult, analyze_library, run_case_study

__all__ = ["run_case_study", "analyze_library", "StudyResult"]
