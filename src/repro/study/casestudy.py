"""The safe-vector-access case study (section 5, Figure 9).

"During our analysis we tested whether each vector read and write could
be replaced with its equivalent safe-vec- counterpart and still type
check."  This harness does exactly that, per access site, against the
generated corpus:

1. expand each program (accesses are counted post-expansion, once —
   matching the paper's footnote about macros);
2. for each access site, swap in ``safe-vec-ref``/``safe-vec-set!`` and
   re-check the program:
   * base program checks            → **automatically verified**
   * annotated variant checks      → **verified with annotations**
   * modified variant checks       → **verified after modification**
   * ``UnsupportedFeature`` raised → **unimplemented feature**
   * nothing checks                → residue, labelled with the
     category the corpus assigned (beyond scope / unsafe), as the
     paper's authors labelled their residue by manual inspection.

The tiers are *decided by the checker*; the corpus only fixes the idiom
mix.  A ``mismatches`` list records any access whose observed tier
differs from the idiom's expected tier — it should be empty, and the
test suite asserts so on a scaled corpus.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checker.check import Checker
from ..checker.errors import CheckError, UnsupportedFeature
from ..corpus.generator import Library, build_all_libraries
from ..corpus.patterns import PatternInstance
from ..logic.prove import Logic
from ..sexp.reader import SExp, Symbol, read_all
from ..syntax.macros import expand
from ..syntax.parser import ParseError, parse_program

__all__ = [
    "AccessReport",
    "LibraryResult",
    "StudyResult",
    "analyze_instance",
    "analyze_library",
    "run_case_study",
    "safe_replace",
    "access_sites",
]

_SAFE_MAP = {
    "vec-ref": "safe-vec-ref",
    "vec-set!": "safe-vec-set!",
}

VERIFIED_TIERS = ("auto", "annotation", "modification")


@dataclass
class AccessReport:
    program: str
    pattern: str
    index: int
    expected: str
    observed: str


@dataclass
class LibraryResult:
    name: str
    ops: int
    loc: int
    tier_counts: Dict[str, int]
    mismatches: List[AccessReport]
    invalid_programs: List[str]

    def percentage(self, tier: str) -> float:
        if not self.ops:
            return 0.0
        return 100.0 * self.tier_counts.get(tier, 0) / self.ops

    @property
    def verified_ops(self) -> int:
        return sum(self.tier_counts.get(t, 0) for t in VERIFIED_TIERS)


@dataclass
class StudyResult:
    libraries: Dict[str, LibraryResult]

    @property
    def total_ops(self) -> int:
        return sum(lib.ops for lib in self.libraries.values())

    @property
    def total_auto(self) -> int:
        return sum(lib.tier_counts.get("auto", 0) for lib in self.libraries.values())

    def auto_percentage(self) -> float:
        if not self.total_ops:
            return 0.0
        return 100.0 * self.total_auto / self.total_ops


# ----------------------------------------------------------------------
# access-site manipulation on expanded S-expressions
# ----------------------------------------------------------------------
def _expand_module(source: str) -> List[SExp]:
    return [expand(form) for form in read_all(source)]


def access_sites(forms: Sequence[SExp]) -> int:
    """Count unique vector operations (post-expansion, pre-order)."""
    count = 0
    stack: List[SExp] = list(forms)
    while stack:
        node = stack.pop(0)
        if isinstance(node, list) and node:
            head = node[0]
            if isinstance(head, Symbol) and head.name in _SAFE_MAP:
                count += 1
            stack = list(node) + stack
    return count


def safe_replace(forms: Sequence[SExp], index: int) -> List[SExp]:
    """Replace the ``index``-th access with its safe- counterpart."""
    forms = copy.deepcopy(list(forms))
    counter = [0]

    def walk(node: SExp) -> None:
        if isinstance(node, list) and node:
            head = node[0]
            if isinstance(head, Symbol) and head.name in _SAFE_MAP:
                if counter[0] == index:
                    node[0] = Symbol(_SAFE_MAP[head.name])
                counter[0] += 1
            for child in node:
                walk(child)

    for form in forms:
        walk(form)
    return forms


# ----------------------------------------------------------------------
# per-program analysis
# ----------------------------------------------------------------------
def _check_forms(forms: Sequence[SExp], checker: Checker) -> None:
    program = parse_program(list(forms))
    checker.check_program(program)


def analyze_instance(
    instance: PatternInstance,
    checker_factory=None,
) -> List[str]:
    """The observed tier of every access in one corpus program."""
    factory = checker_factory or Checker
    variants: List[Tuple[str, List[SExp]]] = [("auto", _expand_module(instance.base))]
    if instance.annotated is not None:
        variants.append(("annotation", _expand_module(instance.annotated)))
    if instance.modified is not None:
        variants.append(("modification", _expand_module(instance.modified)))

    n_sites = access_sites(variants[0][1])
    observed: List[str] = []
    for site in range(n_sites):
        tier: Optional[str] = None
        for variant_tier, forms in variants:
            try:
                _check_forms(safe_replace(forms, site), factory())
                tier = variant_tier
                break
            except UnsupportedFeature:
                tier = "unimplemented"
                break
            except (CheckError, ParseError):
                continue
        if tier is None:
            expected = (
                instance.expected[site]
                if site < len(instance.expected)
                else "beyond-scope"
            )
            tier = expected if expected not in VERIFIED_TIERS else "unverified"
        observed.append(tier)
    return observed


def analyze_library(
    library: Library,
    checker_factory=None,
    validate_base: bool = False,
) -> LibraryResult:
    """Classify every access site in a library."""
    factory = checker_factory or Checker
    tier_counts: Dict[str, int] = {}
    mismatches: List[AccessReport] = []
    invalid: List[str] = []
    for instance in library.programs:
        if validate_base:
            try:
                _check_forms(_expand_module(instance.base), factory())
            except UnsupportedFeature:
                pass  # struct patterns are *expected* to be unsupported
            except (CheckError, ParseError) as exc:
                invalid.append(f"{instance.name}: {exc}")
                continue
        observed = analyze_instance(instance, factory)
        for site, tier in enumerate(observed):
            tier_counts[tier] = tier_counts.get(tier, 0) + 1
            expected = (
                instance.expected[site]
                if site < len(instance.expected)
                else "beyond-scope"
            )
            if tier != expected:
                mismatches.append(
                    AccessReport(instance.name, instance.pattern, site, expected, tier)
                )
    return LibraryResult(
        name=library.name,
        ops=library.ops,
        loc=library.loc,
        tier_counts=tier_counts,
        mismatches=mismatches,
        invalid_programs=invalid,
    )


def run_case_study(
    scale: float = 1.0,
    checker_factory=None,
    libraries: Optional[Dict[str, Library]] = None,
) -> StudyResult:
    """Run the full section 5 study (use ``scale`` < 1 for quick runs)."""
    libs = libraries if libraries is not None else build_all_libraries(scale)
    return StudyResult(
        {
            name: analyze_library(lib, checker_factory)
            for name, lib in libs.items()
        }
    )
