"""Type-results ``(τ ; ψ+ | ψ- ; o)`` and existential quantification.

A :class:`TypeResult` is what the typing judgment assigns to every
well-typed expression (section 3).  Existential type-results
``∃x:τ.R`` from the model are represented as a *prefix of binders* on
the result; the algorithmic system propagates these binders upward
instead of simplifying at every step, exactly the implementation
technique described in section 4.1 ("Propagating existentials").
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Tuple

from .intern import InternedValue, interned
from .objects import NULL, Obj
from .props import FF, TT, Prop

if TYPE_CHECKING:  # pragma: no cover
    from .types import Type

__all__ = [
    "TypeResult",
    "fresh_name",
    "fresh_watermark",
    "reset_fresh_names",
    "result_of_type",
    "true_result",
    "false_result",
]

# The counter is *thread-local*: the parser and checker reset it at
# the start of every parse/check, so it carries no meaningful state
# between programs — but the daemon's engine lanes parse and check on
# several threads at once, and a shared counter would let one lane's
# reset clobber another lane's in-flight stream (name capture, and
# nondeterministic names that defeat the content-addressed caches).
# Per-thread streams keep every check's names exactly what a
# single-threaded check would draw.
_fresh = threading.local()


def fresh_name(hint: str = "tmp") -> str:
    """A fresh identifier (used for existential binders); per-thread."""
    n = getattr(_fresh, "counter", 0)
    _fresh.counter = n + 1
    return f"{hint}%{n}"


def fresh_watermark() -> int:
    """The next index :func:`fresh_name` would draw (on this thread).

    The parser records this after building a program: every generated
    name embedded in it (macro gensyms, unnamed type arguments) has a
    smaller index, so the watermark is a sound re-start floor.
    """
    return getattr(_fresh, "counter", 0)


def reset_fresh_names(floor: int = 0) -> None:
    """Restart the fresh-name counter at ``floor`` (deterministic naming).

    The parser resets to 0 before reading a module and the checker
    resets to the program's recorded ``fresh_floor`` before checking
    it, so that re-processing identical source produces *identical*
    names — the proof engine's content-addressed caches then hit
    across runs.  The floor keeps freshness honest: it exceeds the
    index of every ``%``-name occurring in the program (generated or
    user-written), so a check-time witness can never collide with — or
    be captured by — a name already embedded in the program's types.
    """
    _fresh.counter = floor


class _ResultBase(InternedValue):
    __slots__ = ("_hash", "_iid", "_repr", "_digest", "_fvs")


@interned
class TypeResult(_ResultBase):
    """``∃ binders. (type ; then_prop | else_prop ; obj)``.

    ``binders`` is a (possibly empty) tuple of ``(name, Type)`` pairs
    quantifying variables that appear free in the rest of the result;
    an empty tuple gives the plain type-results of Figure 2.
    """

    __slots__ = ("type", "then_prop", "else_prop", "obj", "binders")
    type: "Type"
    then_prop: Prop
    else_prop: Prop
    obj: Obj
    binders: Tuple[Tuple[str, "Type"], ...]

    _field_defaults = {
        "then_prop": TT,
        "else_prop": TT,
        "obj": NULL,
        "binders": (),
    }

    def __repr__(self) -> str:
        core = f"({self.type!r} ; {self.then_prop!r} | {self.else_prop!r} ; {self.obj!r})"
        for name, ty in reversed(self.binders):
            core = f"∃{name}:{ty!r}.{core}"
        return core

    def with_binders(self, binders: Tuple[Tuple[str, "Type"], ...]) -> "TypeResult":
        if not binders:
            return self
        return TypeResult(
            self.type, self.then_prop, self.else_prop, self.obj, binders + self.binders
        )

    def erase_object(self) -> "TypeResult":
        """Forget the symbolic object (used for mutable bindings, §4.2)."""
        return TypeResult(self.type, self.then_prop, self.else_prop, NULL, self.binders)


def result_of_type(ty: "Type", obj: Obj = NULL) -> TypeResult:
    """The generic result for a value of type ``ty``: trivial props."""
    return TypeResult(ty, TT, TT, obj)


def true_result(ty: "Type", obj: Obj = NULL) -> TypeResult:
    """Result for an expression known to evaluate to a non-#f value."""
    return TypeResult(ty, TT, FF, obj)


def false_result(ty: "Type", obj: Obj = NULL) -> TypeResult:
    """Result for an expression known to evaluate to ``#f``."""
    return TypeResult(ty, FF, TT, obj)
