"""The λRTR proposition grammar (Figure 2) with both theory extensions.

Propositions are the currency of occurrence typing: every well-typed
expression carries a *then*- and an *else*-proposition, environments
are (conceptually) sets of propositions, and refinement types embed a
proposition over their refinement variable.

The two theory-specific atom families from the paper are included:

* :class:`LeqZero` — linear integer inequalities, canonicalised to the
  single form ``e ≤ 0`` (``a < b``, ``a ≤ b``, ``a = b`` etc. are all
  sugar over it; see the smart constructors at the bottom);
* :class:`BVProp` — (in)equalities over bitvector terms.

Smart constructors (:func:`make_and`, :func:`make_or`) perform the
obvious simplifications (unit/absorbing elements, flattening), and
propositions that come to mention the null object are discarded as
``tt`` exactly as section 3.1 prescribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Iterable, Tuple

from .intern import InternedValue, interned
from .objects import (
    NULL,
    LinExpr,
    Obj,
    lin_sub,
    obj_free_vars,
    obj_int,
)

if TYPE_CHECKING:  # pragma: no cover
    from .types import Type

__all__ = [
    "Prop",
    "TrueProp",
    "FalseProp",
    "TT",
    "FF",
    "IsType",
    "NotType",
    "And",
    "Or",
    "Alias",
    "TheoryProp",
    "LeqZero",
    "BVProp",
    "Congruence",
    "make_congruence",
    "make_and",
    "make_or",
    "make_is",
    "make_not",
    "make_alias",
    "lin_le",
    "lin_lt",
    "lin_eq",
    "lin_ge",
    "lin_gt",
    "negate_prop",
    "prop_free_vars",
]


class Prop(InternedValue):
    """Base class of all propositions.

    ``_hash``/``_iid`` are stamped at construction; ``_repr`` and
    ``_digest`` cache the printed form and content digest on first
    demand (:mod:`repro.tr.intern`).
    """

    __slots__ = ("_hash", "_iid", "_repr", "_digest", "_fvs")


@interned
class TrueProp(Prop):
    """``tt`` — the trivially true proposition."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "tt"


@interned
class FalseProp(Prop):
    """``ff`` — the absurd proposition."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "ff"


TT = TrueProp()
FF = FalseProp()


@interned
class IsType(Prop):
    """``o ∈ τ`` — object ``o`` has type ``τ``."""

    __slots__ = ("obj", "type")
    obj: Obj
    type: "Type"

    def __repr__(self) -> str:
        return f"({self.obj!r} ∈ {self.type!r})"


@interned
class NotType(Prop):
    """``o ∉ τ`` — object ``o`` does not have type ``τ``."""

    __slots__ = ("obj", "type")
    obj: Obj
    type: "Type"

    def __repr__(self) -> str:
        return f"({self.obj!r} ∉ {self.type!r})"


@interned
class And(Prop):
    __slots__ = ("conjuncts",)
    conjuncts: Tuple[Prop, ...]

    def __repr__(self) -> str:
        return "(∧ " + " ".join(repr(p) for p in self.conjuncts) + ")"


@interned
class Or(Prop):
    __slots__ = ("disjuncts",)
    disjuncts: Tuple[Prop, ...]

    def __repr__(self) -> str:
        return "(∨ " + " ".join(repr(p) for p in self.disjuncts) + ")"


@interned
class Alias(Prop):
    """``o₁ ≡ o₂`` — the two objects denote the same runtime value."""

    __slots__ = ("left", "right")
    left: Obj
    right: Obj

    def __repr__(self) -> str:
        return f"({self.left!r} ≡ {self.right!r})"


class TheoryProp(Prop):
    """Base class for atoms ``χ_T`` drawn from an external theory."""

    __slots__ = ()

    theory: str = "?"


@interned
class LeqZero(TheoryProp):
    """``e ≤ 0`` for a linear integer expression ``e``.

    Every linear-arithmetic atom is canonicalised to this shape, which
    is what the Fourier-Motzkin backend consumes directly.
    """

    __slots__ = ("expr",)
    expr: LinExpr

    theory = "linear-arithmetic"

    def __repr__(self) -> str:
        return f"({self.expr!r} ≤ 0)"


@interned
class BVProp(TheoryProp):
    """A bitvector-theory atom: ``lhs op rhs`` with op ∈ {=, ≤ᵤ, <ᵤ}."""

    __slots__ = ("op", "lhs", "rhs", "width")
    op: str
    lhs: Obj
    rhs: Obj
    width: int

    theory = "bitvectors"

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op}ᵤ{self.width} {self.rhs!r})"


@interned
class Congruence(TheoryProp):
    """``obj ≡ residue (mod modulus)`` — the parity/congruence theory.

    A demonstration of the section 3.4 extension recipe beyond the two
    theories the paper ships: ``even?``/``odd?`` emit these atoms, and
    a congruence solver (:mod:`repro.theories.congruence`) discharges
    them.  Residues are kept in canonical range ``0 ≤ r < m``.
    """

    __slots__ = ("obj", "modulus", "residue")
    obj: Obj
    modulus: int
    residue: int

    theory = "congruence"

    def __repr__(self) -> str:
        return f"({self.obj!r} ≡ {self.residue} mod {self.modulus})"


def make_and(conjuncts: Iterable[Prop]) -> Prop:
    """Conjunction with flattening, ``tt`` dropping and ``ff`` absorption."""
    flat: list = []
    seen: set = set()
    for prop in conjuncts:
        if isinstance(prop, TrueProp):
            continue
        if isinstance(prop, FalseProp):
            return FF
        if isinstance(prop, And):
            for c in prop.conjuncts:
                if c not in seen:
                    seen.add(c)
                    flat.append(c)
        elif prop not in seen:
            seen.add(prop)
            flat.append(prop)
    if not flat:
        return TT
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(disjuncts: Iterable[Prop]) -> Prop:
    """Disjunction with flattening, ``ff`` dropping and ``tt`` absorption."""
    flat: list = []
    seen: set = set()
    for prop in disjuncts:
        if isinstance(prop, FalseProp):
            continue
        if isinstance(prop, TrueProp):
            return TT
        if isinstance(prop, Or):
            for d in prop.disjuncts:
                if d not in seen:
                    seen.add(d)
                    flat.append(d)
        elif prop not in seen:
            seen.add(prop)
            flat.append(prop)
    if not flat:
        return FF
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def make_is(obj: Obj, ty: "Type") -> Prop:
    """``o ∈ τ``, discarded as ``tt`` when ``o`` is the null object."""
    if obj.is_null():
        return TT
    return IsType(obj, ty)


def make_not(obj: Obj, ty: "Type") -> Prop:
    """``o ∉ τ``, discarded as ``tt`` when ``o`` is the null object."""
    if obj.is_null():
        return TT
    return NotType(obj, ty)


def make_alias(left: Obj, right: Obj) -> Prop:
    if left.is_null() or right.is_null() or left == right:
        return TT
    return Alias(left, right)


def _leq_zero(expr_obj: Obj) -> Prop:
    if expr_obj.is_null():
        return TT
    if isinstance(expr_obj, LinExpr) and expr_obj.is_constant():
        return TT if expr_obj.const <= 0 else FF
    if not isinstance(expr_obj, LinExpr):
        expr_obj = LinExpr(0, ((expr_obj, 1),))
    return LeqZero(expr_obj)


def lin_le(lhs: Obj, rhs: Obj) -> Prop:
    """``lhs ≤ rhs`` over the integers."""
    return _leq_zero(lin_sub(lhs, rhs))


def lin_lt(lhs: Obj, rhs: Obj) -> Prop:
    """``lhs < rhs``, i.e. ``lhs + 1 ≤ rhs`` over the integers."""
    return _leq_zero(lin_sub(lin_sub(lhs, rhs), obj_int(-1)))


def lin_ge(lhs: Obj, rhs: Obj) -> Prop:
    return lin_le(rhs, lhs)


def lin_gt(lhs: Obj, rhs: Obj) -> Prop:
    return lin_lt(rhs, lhs)


def lin_eq(lhs: Obj, rhs: Obj) -> Prop:
    """``lhs = rhs`` as the conjunction of two inequalities."""
    return make_and((lin_le(lhs, rhs), lin_le(rhs, lhs)))


def make_congruence(obj: Obj, modulus: int, residue: int) -> Prop:
    """``obj ≡ residue (mod modulus)`` with normalisation and folding."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if obj.is_null():
        return TT
    residue %= modulus
    if isinstance(obj, LinExpr) and obj.is_constant():
        return TT if obj.const % modulus == residue else FF
    return Congruence(obj, modulus, residue)


def negate_prop(prop: Prop) -> Prop:
    """Classical negation, pushed to atoms.

    Used when encoding validity queries as refutations for the theory
    solvers and for the M-RefineNot2 model rule.  Negating a type atom
    flips ∈/∉.  The grammar has no negative alias form, so a negated
    alias becomes an opaque :class:`_Unrefutable` atom: sound in a
    refutation (it can never be proved), and in practice never produced
    by checker-generated propositions.
    """
    if isinstance(prop, TrueProp):
        return FF
    if isinstance(prop, FalseProp):
        return TT
    if isinstance(prop, IsType):
        return NotType(prop.obj, prop.type)
    if isinstance(prop, NotType):
        return IsType(prop.obj, prop.type)
    if isinstance(prop, And):
        return make_or(negate_prop(c) for c in prop.conjuncts)
    if isinstance(prop, Or):
        return make_and(negate_prop(d) for d in prop.disjuncts)
    if isinstance(prop, LeqZero):
        # ¬(e ≤ 0)  ⟺  e ≥ 1  ⟺  1 - e ≤ 0   (over the integers)
        return lin_le(obj_int(1), prop.expr)
    if isinstance(prop, BVProp):
        flipped = {"=": "≠", "≠": "=", "≤": ">", ">": "≤", "<": "≥", "≥": "<"}
        return BVProp(flipped[prop.op], prop.lhs, prop.rhs, prop.width)
    if isinstance(prop, Congruence):
        # ¬(x ≡ r mod m) is the disjunction of the other residues.
        return make_or(
            Congruence(prop.obj, prop.modulus, r)
            for r in range(prop.modulus)
            if r != prop.residue
        )
    if isinstance(prop, Alias):
        return _Unrefutable(prop)
    raise TypeError(f"cannot negate {prop!r}")


@interned
class _Unrefutable(Prop):
    """Negation of an atom with no negative form; never provable."""

    __slots__ = ("atom",)
    atom: Prop

    def __repr__(self) -> str:
        return f"(¬{self.atom!r})"


def prop_free_vars(prop: Prop) -> FrozenSet[str]:
    """The free program variables of ``prop`` (slot-cached)."""
    try:
        return prop._fvs
    except AttributeError:
        out = _prop_free_vars(prop)
        object.__setattr__(prop, "_fvs", out)
        return out


def _prop_free_vars(prop: Prop) -> FrozenSet[str]:
    from .subst import type_free_vars  # local import: subst imports us

    if isinstance(prop, (TrueProp, FalseProp)):
        return frozenset()
    if isinstance(prop, (IsType, NotType)):
        return obj_free_vars(prop.obj) | type_free_vars(prop.type)
    if isinstance(prop, And):
        out: FrozenSet[str] = frozenset()
        for conj in prop.conjuncts:
            out |= prop_free_vars(conj)
        return out
    if isinstance(prop, Or):
        out = frozenset()
        for disj in prop.disjuncts:
            out |= prop_free_vars(disj)
        return out
    if isinstance(prop, Alias):
        return obj_free_vars(prop.left) | obj_free_vars(prop.right)
    if isinstance(prop, LeqZero):
        return obj_free_vars(prop.expr)
    if isinstance(prop, BVProp):
        return obj_free_vars(prop.lhs) | obj_free_vars(prop.rhs)
    if isinstance(prop, Congruence):
        return obj_free_vars(prop.obj)
    if isinstance(prop, _Unrefutable):
        return prop_free_vars(prop.atom)
    raise TypeError(f"not a proposition: {prop!r}")
