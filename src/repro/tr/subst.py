"""Capture-avoiding substitution over types, propositions and results.

Implements the paper's two substitution forms:

* ordinary substitution ``[x ↦ o]`` of symbolic objects for variables
  (used by T-App/T-Let when the operand has a non-null object), and
* the *lifting* substitution ``R[x ⟹τ o]`` which substitutes when ``o``
  is non-null and otherwise introduces an existential binder ``∃x:τ.R``
  (section 3.2).

Mapping a variable to the null object erases the propositions that
mention it (they become ``tt``), which is the paper's treatment of
terms that cannot be lifted to the type level.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Tuple

from .intern import register_clear_hook
from .objects import NULL, Obj, Var, obj_free_vars, obj_subst
from .props import (
    Alias,
    And,
    BVProp,
    Congruence,
    FalseProp,
    IsType,
    LeqZero,
    LinExpr,
    NotType,
    Or,
    Prop,
    TrueProp,
    TT,
    make_alias,
    make_and,
    make_is,
    make_not,
    make_or,
    prop_free_vars,
)
from .results import TypeResult, fresh_name, fresh_watermark
from .types import (
    Fun,
    Pair,
    Poly,
    Refine,
    Type,
    TVar,
    Union,
    Vec,
    make_union,
)

__all__ = [
    "type_subst",
    "prop_subst",
    "result_subst",
    "lift_subst",
    "close_result",
    "type_free_vars",
    "result_free_vars",
    "type_subst_tvars",
    "result_subst_tvars",
    "prop_subst_tvars",
]


def _restrict(mapping: Mapping[str, Obj], bound: Tuple[str, ...]) -> Mapping[str, Obj]:
    """Drop substitutions shadowed by binders ``bound``."""
    if not any(name in mapping for name in bound):
        return mapping
    return {k: v for k, v in mapping.items() if k not in bound}


#: substitution memo, keyed by (kind, node iid, sorted (name, obj iid)
#: pairs).  Intern ids are never reused, so an entry can only be looked
#: up by the exact instances that produced it; the table is dropped
#: together with the intern tables so cached outputs never outlive
#: their generation.  Entries are only written when the computation
#: drew no fresh binder names (checked via the fresh-name watermark):
#: a renaming substitution is not a pure function of its inputs.
_SUBST_MEMO: dict = {}
_SUBST_MEMO_LIMIT = 1 << 18

register_clear_hook(_SUBST_MEMO.clear)


def _mapping_key(mapping: Mapping[str, Obj]) -> tuple:
    if len(mapping) == 1:
        for name, obj in mapping.items():
            return ((name, obj._iid if obj is not None else -1),)
    return tuple(
        sorted(
            (name, obj._iid if obj is not None else -1)
            for name, obj in mapping.items()
        )
    )


def type_subst(ty: Type, mapping: Mapping[str, Obj]) -> Type:
    """Substitute objects for variables inside ``ty`` (memoized)."""
    if not mapping or type_free_vars(ty).isdisjoint(mapping):
        return ty
    key = (0, ty._iid) + _mapping_key(mapping)
    hit = _SUBST_MEMO.get(key)
    if hit is not None:
        return hit
    before = fresh_watermark()
    out = _type_subst(ty, mapping)
    if fresh_watermark() == before:
        if len(_SUBST_MEMO) >= _SUBST_MEMO_LIMIT:
            _SUBST_MEMO.clear()
        _SUBST_MEMO[key] = out
    return out


def _type_subst(ty: Type, mapping: Mapping[str, Obj]) -> Type:
    if isinstance(ty, Pair):
        return Pair(type_subst(ty.fst, mapping), type_subst(ty.snd, mapping))
    if isinstance(ty, Vec):
        return Vec(type_subst(ty.elem, mapping))
    if isinstance(ty, Union):
        return make_union(type_subst(m, mapping) for m in ty.members)
    if isinstance(ty, Fun):
        inner = _restrict(mapping, ty.arg_names())
        new_args = []
        remaining = dict(mapping)
        for name, argty in ty.args:
            new_args.append((name, type_subst(argty, remaining)))
            remaining.pop(name, None)
        return Fun(tuple(new_args), result_subst(ty.result, inner))
    if isinstance(ty, Refine):
        inner = _restrict(mapping, (ty.var,))
        return Refine(ty.var, type_subst(ty.base, mapping), prop_subst(ty.prop, inner))
    if isinstance(ty, Poly):
        return Poly(ty.tvars, type_subst(ty.body, mapping))
    return ty  # base types have no free variables


def prop_subst(prop: Prop, mapping: Mapping[str, Obj]) -> Prop:
    """Substitute objects for variables inside ``prop`` (memoized).

    Atoms whose object collapses to null become ``tt`` (section 3.1).
    """
    if not mapping or prop_free_vars(prop).isdisjoint(mapping):
        return prop
    key = (1, prop._iid) + _mapping_key(mapping)
    hit = _SUBST_MEMO.get(key)
    if hit is not None:
        return hit
    before = fresh_watermark()
    out = _prop_subst(prop, mapping)
    if fresh_watermark() == before:
        if len(_SUBST_MEMO) >= _SUBST_MEMO_LIMIT:
            _SUBST_MEMO.clear()
        _SUBST_MEMO[key] = out
    return out


def _prop_subst(prop: Prop, mapping: Mapping[str, Obj]) -> Prop:
    if isinstance(prop, (TrueProp, FalseProp)):
        return prop
    if isinstance(prop, IsType):
        return make_is(obj_subst(prop.obj, mapping), type_subst(prop.type, mapping))
    if isinstance(prop, NotType):
        return make_not(obj_subst(prop.obj, mapping), type_subst(prop.type, mapping))
    if isinstance(prop, And):
        return make_and(prop_subst(c, mapping) for c in prop.conjuncts)
    if isinstance(prop, Or):
        return make_or(prop_subst(d, mapping) for d in prop.disjuncts)
    if isinstance(prop, Alias):
        return make_alias(obj_subst(prop.left, mapping), obj_subst(prop.right, mapping))
    if isinstance(prop, LeqZero):
        expr = obj_subst(prop.expr, mapping)
        if expr.is_null():
            return TT
        if isinstance(expr, LinExpr) and expr.is_constant():
            return TT if expr.const <= 0 else FalseProp()
        if not isinstance(expr, LinExpr):
            expr = LinExpr(0, ((expr, 1),))
        return LeqZero(expr)
    if isinstance(prop, BVProp):
        lhs = obj_subst(prop.lhs, mapping)
        rhs = obj_subst(prop.rhs, mapping)
        if lhs.is_null() or rhs.is_null():
            return TT
        return BVProp(prop.op, lhs, rhs, prop.width)
    if isinstance(prop, Congruence):
        from .props import make_congruence

        return make_congruence(obj_subst(prop.obj, mapping), prop.modulus, prop.residue)
    # _Unrefutable and any future atoms: substitute inside if possible.
    return prop


def result_subst(result: TypeResult, mapping: Mapping[str, Obj]) -> TypeResult:
    """Substitute under a result's existential binders (renaming them)."""
    if not mapping:
        return result
    if result_free_vars(result).isdisjoint(mapping):
        # No mapping key is free — substitution is the identity, except
        # when the legacy path would still alpha-rename a binder that
        # collides with a mapping key or a mapping value's free
        # variable; those fall through so output stays bit-identical.
        own = result.binders
        if not own:
            return result
        if all(name not in mapping for name, _ in own):
            names = frozenset(name for name, _ in own)
            if all(
                names.isdisjoint(obj_free_vars(o)) for o in mapping.values()
            ):
                return result
    key = (2, result._iid) + _mapping_key(mapping)
    hit = _SUBST_MEMO.get(key)
    if hit is not None:
        return hit
    before = fresh_watermark()
    out = _result_subst(result, mapping)
    if fresh_watermark() == before:
        if len(_SUBST_MEMO) >= _SUBST_MEMO_LIMIT:
            _SUBST_MEMO.clear()
        _SUBST_MEMO[key] = out
    return out


def _result_subst(result: TypeResult, mapping: Mapping[str, Obj]) -> TypeResult:
    binders = []
    inner_mapping = dict(mapping)
    for name, ty in result.binders:
        new_ty = type_subst(ty, inner_mapping)
        if name in inner_mapping or any(
            name in obj_free_vars(o) for o in inner_mapping.values() if o is not None
        ):
            fresh = fresh_name(name.split("%")[0])
            inner_mapping[name] = Var(fresh)
            binders.append((fresh, new_ty))
        else:
            binders.append((name, new_ty))
    return TypeResult(
        type_subst(result.type, inner_mapping),
        prop_subst(result.then_prop, inner_mapping),
        prop_subst(result.else_prop, inner_mapping),
        obj_subst(result.obj, inner_mapping),
        tuple(binders),
    )


def lift_subst(result: TypeResult, name: str, ty: Type, obj: Obj) -> TypeResult:
    """The lifting substitution ``R[name ⟹ty obj]`` of section 3.2.

    If ``obj`` is null and ``name`` occurs free in ``R``, prepend an
    existential binder ``∃name:ty`` (renamed fresh); otherwise perform
    ordinary substitution.
    """
    if obj.is_null():
        if name not in result_free_vars(result):
            return result
        fresh = fresh_name(name)
        renamed = result_subst(result, {name: Var(fresh)})
        return renamed.with_binders(((fresh, ty),))
    return result_subst(result, {name: obj})


def close_result(result: TypeResult) -> TypeResult:
    """Discharge a result's existential binders by erasing them to null.

    Propositions and objects mentioning a binder weaken to ``tt``/null —
    sound, since an existential only ever *adds* information.  Used when
    joining conditional branches, where each branch's existentials are
    scoped under that branch's guard.
    """
    if not result.binders:
        return result
    mapping = {name: NULL for name, _ in result.binders}
    return TypeResult(
        type_subst(result.type, mapping),
        prop_subst(result.then_prop, mapping),
        prop_subst(result.else_prop, mapping),
        obj_subst(result.obj, mapping),
        (),
    )


def type_free_vars(ty: Type) -> FrozenSet[str]:
    """Free *program* variables of a type, slot-cached per node."""
    try:
        return ty._fvs
    except AttributeError:
        out = _type_free_vars(ty)
        object.__setattr__(ty, "_fvs", out)
        return out


def _type_free_vars(ty: Type) -> FrozenSet[str]:
    if isinstance(ty, Pair):
        return type_free_vars(ty.fst) | type_free_vars(ty.snd)
    if isinstance(ty, Vec):
        return type_free_vars(ty.elem)
    if isinstance(ty, Union):
        out: FrozenSet[str] = frozenset()
        for member in ty.members:
            out |= type_free_vars(member)
        return out
    if isinstance(ty, Fun):
        out = frozenset()
        bound: FrozenSet[str] = frozenset()
        for name, argty in ty.args:
            out |= type_free_vars(argty) - bound
            bound |= {name}
        return out | (result_free_vars(ty.result) - bound)
    if isinstance(ty, Refine):
        return type_free_vars(ty.base) | (prop_free_vars(ty.prop) - {ty.var})
    if isinstance(ty, Poly):
        return type_free_vars(ty.body)
    return frozenset()


def result_free_vars(result: TypeResult) -> FrozenSet[str]:
    """Free program variables of a result, slot-cached per node."""
    try:
        return result._fvs
    except AttributeError:
        out = _result_free_vars(result)
        object.__setattr__(result, "_fvs", out)
        return out


def _result_free_vars(result: TypeResult) -> FrozenSet[str]:
    out = (
        type_free_vars(result.type)
        | prop_free_vars(result.then_prop)
        | prop_free_vars(result.else_prop)
        | obj_free_vars(result.obj)
    )
    for name, ty in reversed(result.binders):
        out = (out - {name}) | type_free_vars(ty)
    return out


def type_subst_tvars(ty: Type, mapping: Mapping[str, Type]) -> Type:
    """Substitute types for type variables (polymorphic instantiation)."""
    if not mapping:
        return ty
    if isinstance(ty, TVar):
        return mapping.get(ty.name, ty)
    if isinstance(ty, Pair):
        return Pair(type_subst_tvars(ty.fst, mapping), type_subst_tvars(ty.snd, mapping))
    if isinstance(ty, Vec):
        return Vec(type_subst_tvars(ty.elem, mapping))
    if isinstance(ty, Union):
        return make_union(type_subst_tvars(m, mapping) for m in ty.members)
    if isinstance(ty, Fun):
        args = tuple((n, type_subst_tvars(t, mapping)) for n, t in ty.args)
        return Fun(args, result_subst_tvars(ty.result, mapping))
    if isinstance(ty, Refine):
        return Refine(
            ty.var, type_subst_tvars(ty.base, mapping), prop_subst_tvars(ty.prop, mapping)
        )
    if isinstance(ty, Poly):
        inner = {k: v for k, v in mapping.items() if k not in ty.tvars}
        return Poly(ty.tvars, type_subst_tvars(ty.body, inner))
    return ty


def prop_subst_tvars(prop: Prop, mapping: Mapping[str, Type]) -> Prop:
    if not mapping:
        return prop
    if isinstance(prop, IsType):
        return IsType(prop.obj, type_subst_tvars(prop.type, mapping))
    if isinstance(prop, NotType):
        return NotType(prop.obj, type_subst_tvars(prop.type, mapping))
    if isinstance(prop, And):
        return make_and(prop_subst_tvars(c, mapping) for c in prop.conjuncts)
    if isinstance(prop, Or):
        return make_or(prop_subst_tvars(d, mapping) for d in prop.disjuncts)
    return prop


def result_subst_tvars(result: TypeResult, mapping: Mapping[str, Type]) -> TypeResult:
    if not mapping:
        return result
    return TypeResult(
        type_subst_tvars(result.type, mapping),
        prop_subst_tvars(result.then_prop, mapping),
        prop_subst_tvars(result.else_prop, mapping),
        result.obj,
        tuple((n, type_subst_tvars(t, mapping)) for n, t in result.binders),
    )
