"""Symbolic objects: the program terms that may be lifted into types.

This implements the object grammar of Figure 2 together with both
theory extensions from section 3.4 of the paper:

* the base grammar — the null object, variables, field references
  (``fst``/``snd`` for pairs, plus the ``len`` field the vector case
  study required), and pair objects;
* the linear-arithmetic extension — integer literals ``n``, scalings
  ``n * o`` and sums ``o + o``, kept in a canonical linear-combination
  normal form (:class:`LinExpr`);
* the bitvector extension — fixed-width bitvector terms
  (:class:`BVExpr`) over other objects and literals.

Objects are immutable, *interned* values (:mod:`repro.tr.intern`):
structurally equal objects are the same instance, hashes and stable
ids are precomputed at construction, and equality is (almost always)
an identity check.  Substitution keeps the normal forms the paper
requires: ``(fst <x, y>)`` reduces to ``x``, and any object that comes
to mention the null object collapses to the null object (its enclosing
proposition is then discarded as ``tt``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Union

from .intern import InternedValue, interned

__all__ = [
    "Obj",
    "NullObj",
    "NULL",
    "Var",
    "FieldRef",
    "PairObj",
    "LinExpr",
    "BVExpr",
    "FST",
    "SND",
    "LEN",
    "obj_var",
    "obj_int",
    "obj_field",
    "obj_pair",
    "lin_add",
    "lin_sub",
    "lin_scale",
    "lin_of",
    "as_linexpr",
    "obj_free_vars",
    "obj_subst",
]

FST = "fst"
SND = "snd"
LEN = "len"

_FIELDS = (FST, SND, LEN)


class Obj(InternedValue):
    """Base class for symbolic objects.

    The ``_hash``/``_iid`` slots hold the structural hash and stable
    intern id, stamped at construction; ``_repr``/``_digest`` cache
    the printed form and content digest on first demand (see
    :mod:`repro.tr.intern`).
    """

    __slots__ = ("_hash", "_iid", "_repr", "_digest", "_fvs")

    def is_null(self) -> bool:
        return isinstance(self, NullObj)


@interned
class NullObj(Obj):
    """The null object: a term the type system will not reason about."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "∅"


NULL = NullObj()


@interned
class Var(Obj):
    """A reference to an in-scope (immutable) variable."""

    __slots__ = ("name",)
    name: str

    def __repr__(self) -> str:
        return self.name


@interned
class FieldRef(Obj):
    """A field access path: ``(fst o)``, ``(snd o)``, or ``(len o)``."""

    __slots__ = ("field", "base")
    field: str
    base: Obj

    @staticmethod
    def _validate(field: str, base: Obj) -> None:
        if field not in _FIELDS:
            raise ValueError(f"unknown field {field!r}")

    def __repr__(self) -> str:
        return f"({self.field} {self.base!r})"


@interned
class PairObj(Obj):
    """A pair of objects ``<o1, o2>``."""

    __slots__ = ("fst", "snd")
    fst: Obj
    snd: Obj

    def __repr__(self) -> str:
        return f"⟨{self.fst!r}, {self.snd!r}⟩"


@interned
class LinExpr(Obj):
    """A canonical linear combination ``const + Σ coeff·o``.

    ``terms`` maps each non-:class:`LinExpr` atom to a non-zero integer
    coefficient, stored as a tuple sorted by the atom's printed form so
    that structurally equal combinations are ``==``-equal.  Integer
    literals are represented as a :class:`LinExpr` with no terms, which
    is exactly the paper's lifting of literals into objects.
    """

    __slots__ = ("const", "terms")
    const: int
    terms: Tuple[Tuple[Obj, int], ...]

    def __repr__(self) -> str:
        if not self.terms:
            return str(self.const)
        parts = []
        for atom, coeff in self.terms:
            parts.append(f"{coeff}·{atom!r}" if coeff != 1 else repr(atom))
        body = " + ".join(parts)
        if self.const:
            body = f"{self.const} + {body}"
        return f"({body})"

    def atoms(self) -> Tuple[Obj, ...]:
        return tuple(atom for atom, _ in self.terms)

    def is_constant(self) -> bool:
        return not self.terms

    def constant_value(self) -> int:
        if self.terms:
            raise ValueError(f"{self!r} is not a constant")
        return self.const


@interned
class BVExpr(Obj):
    """A fixed-width bitvector term over objects and integer literals.

    ``op`` is one of ``and`` / ``or`` / ``xor`` / ``not`` / ``add`` /
    ``mul`` / ``shl`` / ``lshr``; ``args`` mixes :class:`Obj` operands
    with plain ``int`` literals.  The width records the bitvector sort
    the operation was typed at (bytes, for the AES case study).
    """

    __slots__ = ("op", "args", "width")
    op: str
    args: Tuple[Union[Obj, int], ...]
    width: int

    def __repr__(self) -> str:
        rendered = " ".join(
            repr(a) if isinstance(a, Obj) else f"#x{a:02x}" for a in self.args
        )
        return f"(bv{self.op}[{self.width}] {rendered})"


def obj_var(name: str) -> Var:
    return Var(name)


#: interned literal cache for the hottest constants (0, 1, -1, …)
_ZERO: "LinExpr"


def obj_int(value: int) -> LinExpr:
    """Lift an integer literal into an object (theory-enriched T-Int)."""
    return LinExpr(value, ())


def obj_field(field: str, base: Obj) -> Obj:
    """Build ``(field base)`` in normal form.

    ``(fst <a, b>)`` reduces to ``a`` (and symmetrically for ``snd``);
    a field of the null object is the null object.
    """
    if base.is_null():
        return NULL
    if isinstance(base, PairObj):
        if field == FST:
            return base.fst
        if field == SND:
            return base.snd
    return FieldRef(field, base)


def obj_pair(fst: Obj, snd: Obj) -> Obj:
    return PairObj(fst, snd)


def _atom_key(obj: Obj) -> str:
    return repr(obj)


def _make_lin(const: int, coeffs: Dict[Obj, int]) -> Obj:
    terms = tuple(
        sorted(
            ((atom, c) for atom, c in coeffs.items() if c != 0),
            key=lambda pair: _atom_key(pair[0]),
        )
    )
    if len(terms) == 1 and const == 0 and terms[0][1] == 1:
        # 0 + 1·o is just o.
        return terms[0][0]
    return LinExpr(const, terms)


def as_linexpr(obj: Obj) -> Optional[LinExpr]:
    """View ``obj`` as a linear expression, or ``None`` if it is null.

    Non-arithmetic atoms (variables, field references, bitvector terms)
    become single-term combinations with coefficient 1.
    """
    if obj.is_null():
        return None
    if isinstance(obj, LinExpr):
        return obj
    return LinExpr(0, ((obj, 1),))


def lin_of(obj: Obj) -> LinExpr:
    lin = as_linexpr(obj)
    if lin is None:
        raise ValueError("the null object has no linear form")
    return lin


def lin_add(left: Obj, right: Obj) -> Obj:
    """``left + right`` as a canonical object (null-propagating)."""
    if left.is_null() or right.is_null():
        return NULL
    a, b = lin_of(left), lin_of(right)
    coeffs: Dict[Obj, int] = {}
    for atom, coeff in a.terms + b.terms:
        coeffs[atom] = coeffs.get(atom, 0) + coeff
    return _make_lin(a.const + b.const, coeffs)


def lin_scale(factor: int, obj: Obj) -> Obj:
    """``factor * obj`` as a canonical object (null-propagating)."""
    if obj.is_null():
        return NULL
    if factor == 0:
        return obj_int(0)
    lin = lin_of(obj)
    coeffs = {atom: factor * coeff for atom, coeff in lin.terms}
    return _make_lin(factor * lin.const, coeffs)


def lin_sub(left: Obj, right: Obj) -> Obj:
    return lin_add(left, lin_scale(-1, right))


def obj_free_vars(obj: Obj) -> FrozenSet[str]:
    """The free program variables mentioned by ``obj`` (slot-cached)."""
    try:
        return obj._fvs
    except AttributeError:
        out = _obj_free_vars(obj)
        object.__setattr__(obj, "_fvs", out)
        return out


def _obj_free_vars(obj: Obj) -> FrozenSet[str]:
    if isinstance(obj, Var):
        return frozenset((obj.name,))
    if isinstance(obj, FieldRef):
        return obj_free_vars(obj.base)
    if isinstance(obj, PairObj):
        return obj_free_vars(obj.fst) | obj_free_vars(obj.snd)
    if isinstance(obj, LinExpr):
        out: FrozenSet[str] = frozenset()
        for atom, _ in obj.terms:
            out |= obj_free_vars(atom)
        return out
    if isinstance(obj, BVExpr):
        out = frozenset()
        for arg in obj.args:
            if isinstance(arg, Obj):
                out |= obj_free_vars(arg)
        return out
    return frozenset()


def obj_subst(obj: Obj, mapping: Mapping[str, Obj]) -> Obj:
    """Capture-avoiding substitution of objects for variables.

    Mapping a variable to :data:`NULL` erases every object mentioning
    it (the enclosing proposition then reads the null object and is
    discarded, per section 3.1).
    """
    if not mapping or obj_free_vars(obj).isdisjoint(mapping):
        return obj
    if isinstance(obj, NullObj):
        return NULL
    if isinstance(obj, Var):
        return mapping.get(obj.name, obj)
    if isinstance(obj, FieldRef):
        base = obj_subst(obj.base, mapping)
        if base.is_null():
            return NULL
        if base is obj.base:
            return obj
        return obj_field(obj.field, base)
    if isinstance(obj, PairObj):
        fst = obj_subst(obj.fst, mapping)
        snd = obj_subst(obj.snd, mapping)
        if fst.is_null() or snd.is_null():
            return NULL
        if fst is obj.fst and snd is obj.snd:
            return obj
        return PairObj(fst, snd)
    if isinstance(obj, LinExpr):
        acc: Obj = obj_int(obj.const)
        for atom, coeff in obj.terms:
            replaced = obj_subst(atom, mapping)
            if replaced.is_null():
                return NULL
            acc = lin_add(acc, lin_scale(coeff, replaced))
            if acc.is_null():
                return NULL
        return acc
    if isinstance(obj, BVExpr):
        new_args = []
        changed = False
        for arg in obj.args:
            if isinstance(arg, Obj):
                replaced = obj_subst(arg, mapping)
                if replaced.is_null():
                    return NULL
                changed = changed or replaced is not arg
                new_args.append(replaced)
            else:
                new_args.append(arg)
        if not changed:
            return obj
        return BVExpr(obj.op, tuple(new_args), obj.width)
    raise TypeError(f"not an object: {obj!r}")
