"""The λRTR type grammar (Figure 2), extended as section 4 requires.

Beyond the model's grammar we include the extensions the paper's
implementation (RTR) needed for its examples and case study:

* n-ary dependent function types (the model is unary only to simplify
  the presentation),
* vector types with a ``len`` field,
* a ``Void`` type for effectful primitives such as ``vec-set!``,
* ``Str`` for error messages,
* prenex polymorphism (``∀ {A} ...``) with type variables, checked via
  local type inference (section 4.3).

Derived types from the paper: ``Bool = (U True False)``, the bottom
type ``⊥ = (U)``, ``Nat = {x:Int | 0 ≤ x}`` and ``Byte = {b:Int |
0 ≤ b ≤ 255}`` (built in :mod:`repro.checker.prims`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple

from .intern import InternedValue, interned

if TYPE_CHECKING:  # pragma: no cover - import cycle broken via annotations
    from .props import Prop
    from .results import TypeResult

__all__ = [
    "Type",
    "Top",
    "Int",
    "TrueT",
    "FalseT",
    "Str",
    "Void",
    "Pair",
    "Vec",
    "Union",
    "Fun",
    "Refine",
    "TVar",
    "Poly",
    "TOP",
    "INT",
    "TRUE",
    "FALSE",
    "STR",
    "VOID",
    "BOOL",
    "BOT",
    "make_union",
    "union_members",
]


class Type(InternedValue):
    """Base class of all λRTR types.

    ``_hash``/``_iid`` are stamped at construction; ``_repr`` and
    ``_digest`` cache the printed form and content digest on first
    demand (:mod:`repro.tr.intern`).
    """

    __slots__ = ("_hash", "_iid", "_repr", "_digest", "_fvs")


@interned
class Top(Type):
    """⊤, the type of all well-typed terms (``Any`` in Typed Racket)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Any"


@interned
class Int(Type):
    """The type of (arbitrary precision) integers."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Int"


@interned
class TrueT(Type):
    """The singleton type of ``#t``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "True"


@interned
class FalseT(Type):
    """The singleton type of ``#f``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "False"


@interned
class Str(Type):
    """The type of strings (used for error messages)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Str"


@interned
class Void(Type):
    """The unit type returned by effectful operations."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Void"


@interned
class Pair(Type):
    """``τ × σ`` — the type of ``(cons τ σ)`` values."""

    __slots__ = ("fst", "snd")
    fst: Type
    snd: Type

    def __repr__(self) -> str:
        return f"(Pairof {self.fst!r} {self.snd!r})"


@interned
class Vec(Type):
    """``(Vecof τ)`` — mutable vectors, hence invariant in ``τ``."""

    __slots__ = ("elem",)
    elem: Type

    def __repr__(self) -> str:
        return f"(Vecof {self.elem!r})"


@interned
class Union(Type):
    """A true (untagged) ad-hoc union ``(U τ ...)``.

    The empty union is the uninhabited bottom type ⊥.  Members are kept
    flat (no nested unions) and duplicate-free; use :func:`make_union`
    to construct unions in this normal form.
    """

    __slots__ = ("members",)
    members: Tuple[Type, ...]

    def __repr__(self) -> str:
        if not self.members:
            return "Bot"
        if self == BOOL:
            return "Bool"
        return "(U " + " ".join(repr(m) for m in self.members) + ")"


@interned
class Fun(Type):
    """An n-ary dependent function type ``([x:τ] ... -> R)``.

    Argument names are in scope in later argument types and in the
    range type-result, which is how the paper expresses dependencies
    between domain and range (e.g. Figure 1's ``max``).
    """

    __slots__ = ("args", "result")
    args: Tuple[Tuple[str, Type], ...]
    result: "TypeResult"

    def __repr__(self) -> str:
        doms = " ".join(f"[{name} : {ty!r}]" for name, ty in self.args)
        return f"({doms} -> {self.result!r})"

    @property
    def arity(self) -> int:
        return len(self.args)

    def arg_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.args)

    def arg_types(self) -> Tuple[Type, ...]:
        return tuple(ty for _, ty in self.args)


@interned
class Refine(Type):
    """``{x:τ | ψ}`` — the values of ``τ`` satisfying ``ψ``."""

    __slots__ = ("var", "base", "prop")
    var: str
    base: Type
    prop: "Prop"

    def __repr__(self) -> str:
        return f"{{{self.var} : {self.base!r} | {self.prop!r}}}"


@interned
class TVar(Type):
    """A type variable bound by an enclosing :class:`Poly`."""

    __slots__ = ("name",)
    name: str

    def __repr__(self) -> str:
        return self.name


@interned
class Poly(Type):
    """A prenex-polymorphic type ``(∀ {A ...} fun-type)``."""

    __slots__ = ("tvars", "body")
    tvars: Tuple[str, ...]
    body: Type

    def __repr__(self) -> str:
        return "(All (" + " ".join(self.tvars) + f") {self.body!r})"


TOP = Top()
INT = Int()
TRUE = TrueT()
FALSE = FalseT()
STR = Str()
VOID = Void()


def union_members(ty: Type) -> Tuple[Type, ...]:
    """The members of ``ty`` viewed as a union (itself if not a union)."""
    if isinstance(ty, Union):
        return ty.members
    return (ty,)


def make_union(members: Iterable[Type]) -> Type:
    """Build ``(U members...)`` in flat, duplicate-free normal form.

    A single-member union collapses to that member; if ⊤ appears the
    union is ⊤.
    """
    flat: list = []
    for member in members:
        for part in union_members(member):
            if isinstance(part, Top):
                return TOP
            if part not in flat:
                flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


BOOL = Union((TRUE, FALSE))
BOT = Union(())
