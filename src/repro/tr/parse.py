"""Concrete syntax for types, propositions and symbolic objects.

Parses the annotation language used throughout the paper::

    (: max : [x : Int] [y : Int] -> [z : Int #:where (∧ (≥ z x) (≥ z y))])
    (: safe-vec-ref : (∀ {A} [v : (Vecof A)]
                             [i : Int #:where (∧ (≤ 0 i) (< i (len v)))]
                             -> [res : A]))
    (Refine [i : Nat] (≤ i (len ds)))

ASCII aliases are accepted everywhere (``and``/``∧``, ``or``/``∨``,
``<=``/``≤``, ``>=``/``≥``, ``All``/``∀``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..sexp.reader import SExp, Symbol, read
from .objects import FST, LEN, SND, Obj, Var, lin_add, lin_scale, lin_sub, obj_field, obj_int
from .props import (
    FF,
    IsType,
    NotType,
    Prop,
    TT,
    make_congruence,
    lin_eq,
    lin_ge,
    lin_gt,
    lin_le,
    lin_lt,
    make_and,
    make_not,
    make_or,
    negate_prop,
)
from .results import TypeResult, fresh_name, true_result
from .types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Type,
    Union,
    Vec,
    make_union,
)

__all__ = [
    "TypeSyntaxError",
    "parse_type",
    "parse_type_text",
    "parse_prop",
    "parse_obj",
    "NAT",
    "BYTE",
    "FIXNUM",
    "POS",
    "index_type",
]


class TypeSyntaxError(SyntaxError):
    """Raised on malformed type/prop/object syntax."""


def _nat() -> Type:
    return Refine("n", INT, lin_le(obj_int(0), Var("n")))


def _pos() -> Type:
    return Refine("n", INT, lin_le(obj_int(1), Var("n")))


def _byte() -> Type:
    return Refine(
        "b",
        INT,
        make_and((lin_le(obj_int(0), Var("b")), lin_le(Var("b"), obj_int(255)))),
    )


def _fixnum() -> Type:
    bound = 2**62
    return Refine(
        "fx",
        INT,
        make_and(
            (lin_le(obj_int(-bound), Var("fx")), lin_lt(Var("fx"), obj_int(bound)))
        ),
    )


NAT = _nat()
POS = _pos()
BYTE = _byte()
FIXNUM = _fixnum()


def index_type(vec_name: str, index_var: str = "i") -> Type:
    """``{i : Int | 0 ≤ i ∧ i < (len vec_name)}`` — a valid index."""
    var = Var(index_var)
    length = obj_field(LEN, Var(vec_name))
    return Refine(
        index_var, INT, make_and((lin_le(obj_int(0), var), lin_lt(var, length)))
    )


_BASE_TYPES: Dict[str, Type] = {
    "Int": INT,
    "Integer": INT,
    "Nat": NAT,
    "Natural": NAT,
    "Pos": POS,
    "Byte": BYTE,
    "Fixnum": FIXNUM,
    "Bool": BOOL,
    "Boolean": BOOL,
    "True": TRUE,
    "False": FALSE,
    "Any": TOP,
    "Str": STR,
    "String": STR,
    "Void": VOID,
    "Bot": BOT,
    "Nothing": BOT,
}

_AND = {"∧", "and"}
_OR = {"∨", "or"}
_ALL = {"∀", "All"}
_ARROW = Symbol("->")
_WHERE = Symbol("#:where")
_COLON = Symbol(":")

_CMP_CHAIN = {
    "≤": lin_le,
    "<=": lin_le,
    "<": lin_lt,
    "≥": lin_ge,
    ">=": lin_ge,
    ">": lin_gt,
    "=": lin_eq,
}


# ----------------------------------------------------------------------
# symbolic objects
# ----------------------------------------------------------------------
def parse_obj(sexp: SExp, tvars: FrozenSet[str] = frozenset()) -> Obj:
    """Parse the object sub-language of annotations."""
    if isinstance(sexp, bool):
        raise TypeSyntaxError(f"not an object: {sexp!r}")
    if isinstance(sexp, int):
        return obj_int(sexp)
    if isinstance(sexp, Symbol):
        return Var(sexp.name)
    if isinstance(sexp, list) and sexp:
        head = sexp[0]
        if isinstance(head, Symbol):
            name = head.name
            if name == "len" and len(sexp) == 2:
                return obj_field(LEN, parse_obj(sexp[1], tvars))
            if name in ("fst", "car") and len(sexp) == 2:
                return obj_field(FST, parse_obj(sexp[1], tvars))
            if name in ("snd", "cdr") and len(sexp) == 2:
                return obj_field(SND, parse_obj(sexp[1], tvars))
            if name == "+" and len(sexp) >= 3:
                acc = parse_obj(sexp[1], tvars)
                for arg in sexp[2:]:
                    acc = lin_add(acc, parse_obj(arg, tvars))
                return acc
            if name == "-" and len(sexp) >= 3:
                acc = parse_obj(sexp[1], tvars)
                for arg in sexp[2:]:
                    acc = lin_sub(acc, parse_obj(arg, tvars))
                return acc
            if name == "-" and len(sexp) == 2:
                return lin_scale(-1, parse_obj(sexp[1], tvars))
            if name == "*" and len(sexp) == 3:
                lhs, rhs = sexp[1], sexp[2]
                if isinstance(lhs, int):
                    return lin_scale(lhs, parse_obj(rhs, tvars))
                if isinstance(rhs, int):
                    return lin_scale(rhs, parse_obj(lhs, tvars))
                raise TypeSyntaxError("(* ...) in types needs a literal factor")
    raise TypeSyntaxError(f"not an object: {sexp!r}")


# ----------------------------------------------------------------------
# propositions
# ----------------------------------------------------------------------
def parse_prop(sexp: SExp, tvars: FrozenSet[str] = frozenset()) -> Prop:
    """Parse the proposition sub-language of annotations."""
    if isinstance(sexp, Symbol):
        if sexp.name == "tt":
            return TT
        if sexp.name == "ff":
            return FF
        raise TypeSyntaxError(f"unknown proposition {sexp!r}")
    if not isinstance(sexp, list) or not sexp or not isinstance(sexp[0], Symbol):
        raise TypeSyntaxError(f"bad proposition: {sexp!r}")
    head = sexp[0].name
    if head in _AND:
        return make_and(parse_prop(p, tvars) for p in sexp[1:])
    if head in _OR:
        return make_or(parse_prop(p, tvars) for p in sexp[1:])
    if head == "not" and len(sexp) == 2:
        return negate_prop(parse_prop(sexp[1], tvars))
    if head in _CMP_CHAIN:
        if len(sexp) < 3:
            raise TypeSyntaxError(f"comparison needs two operands: {sexp!r}")
        builder = _CMP_CHAIN[head]
        objs = [parse_obj(arg, tvars) for arg in sexp[1:]]
        return make_and(builder(a, b) for a, b in zip(objs, objs[1:]))
    if head in ("≠", "!="):
        objs = [parse_obj(arg, tvars) for arg in sexp[1:]]
        return negate_prop(lin_eq(objs[0], objs[1]))
    if head in ("is", ":") and len(sexp) == 3:
        return IsType(parse_obj(sexp[1], tvars), parse_type(sexp[2], tvars))
    if head in ("is-not", "!") and len(sexp) == 3:
        return NotType(parse_obj(sexp[1], tvars), parse_type(sexp[2], tvars))
    if head == "even" and len(sexp) == 2:
        return make_congruence(parse_obj(sexp[1], tvars), 2, 0)
    if head == "odd" and len(sexp) == 2:
        return make_congruence(parse_obj(sexp[1], tvars), 2, 1)
    if head == "divisible" and len(sexp) == 3 and isinstance(sexp[2], int):
        return make_congruence(parse_obj(sexp[1], tvars), sexp[2], 0)
    if (
        head == "congruent"
        and len(sexp) == 4
        and isinstance(sexp[2], int)
        and isinstance(sexp[3], int)
    ):
        return make_congruence(parse_obj(sexp[1], tvars), sexp[2], sexp[3])
    raise TypeSyntaxError(f"bad proposition: {sexp!r}")


# ----------------------------------------------------------------------
# types
# ----------------------------------------------------------------------
def _parse_refine_binder(sexp: SExp, tvars: FrozenSet[str]) -> Tuple[str, Type]:
    if (
        isinstance(sexp, list)
        and len(sexp) == 3
        and isinstance(sexp[0], Symbol)
        and sexp[1] == _COLON
    ):
        return sexp[0].name, parse_type(sexp[2], tvars)
    raise TypeSyntaxError(f"bad refinement binder: {sexp!r}")


def _split_arrow(items: Sequence[SExp]) -> Optional[Tuple[List[SExp], SExp]]:
    """Split ``dom ... -> rng`` at the top-level arrow, if present."""
    for i, item in enumerate(items):
        if item == _ARROW:
            if i != len(items) - 2:
                raise TypeSyntaxError("exactly one range type must follow ->")
            return list(items[:i]), items[i + 1]
    return None


def _parse_arg(sexp: SExp, tvars: FrozenSet[str]) -> Tuple[str, Type]:
    """An argument: ``[x : τ]``, ``[x : τ #:where ψ]`` or a bare type."""
    if isinstance(sexp, list) and len(sexp) >= 3 and sexp[1] == _COLON:
        if not isinstance(sexp[0], Symbol):
            raise TypeSyntaxError(f"bad argument name in {sexp!r}")
        name = sexp[0].name
        base = parse_type(sexp[2], tvars)
        if len(sexp) == 3:
            return name, base
        if len(sexp) == 5 and sexp[3] == _WHERE:
            prop = parse_prop(sexp[4], tvars)
            return name, Refine(name, base, prop)
        raise TypeSyntaxError(f"bad argument form: {sexp!r}")
    return fresh_name("arg"), parse_type(sexp, tvars)


def _parse_range(sexp: SExp, tvars: FrozenSet[str]) -> TypeResult:
    """The range: ``[z : τ #:where ψ]`` sugar or a bare type."""
    if (
        isinstance(sexp, list)
        and len(sexp) == 5
        and isinstance(sexp[0], Symbol)
        and sexp[1] == _COLON
        and sexp[3] == _WHERE
    ):
        name = sexp[0].name
        base = parse_type(sexp[2], tvars)
        prop = parse_prop(sexp[4], tvars)
        return TypeResult(Refine(name, base, prop))
    if isinstance(sexp, list) and len(sexp) == 3 and sexp[1] == _COLON:
        return TypeResult(parse_type(sexp[2], tvars))
    return TypeResult(parse_type(sexp, tvars))


def _parse_fun(items: Sequence[SExp], tvars: FrozenSet[str]) -> Optional[Type]:
    split = _split_arrow(items)
    if split is None:
        return None
    dom_items, rng_item = split
    args = tuple(_parse_arg(item, tvars) for item in dom_items)
    result = _parse_range(rng_item, tvars)
    return Fun(args, result)


def parse_type(sexp: SExp, tvars: FrozenSet[str] = frozenset()) -> Type:
    """Parse a type from its S-expression form."""
    if isinstance(sexp, Symbol):
        if sexp.name in tvars:
            return TVar(sexp.name)
        ty = _BASE_TYPES.get(sexp.name)
        if ty is None:
            raise TypeSyntaxError(f"unknown type {sexp.name!r}")
        return ty
    if not isinstance(sexp, list) or not sexp:
        raise TypeSyntaxError(f"bad type: {sexp!r}")
    head = sexp[0]
    if isinstance(head, Symbol):
        name = head.name
        if name == "U":
            return make_union(parse_type(t, tvars) for t in sexp[1:])
        if name == "Pairof" and len(sexp) == 3:
            return Pair(parse_type(sexp[1], tvars), parse_type(sexp[2], tvars))
        if name in ("Vecof", "Vectorof") and len(sexp) == 2:
            return Vec(parse_type(sexp[1], tvars))
        if name == "Refine" and len(sexp) == 3:
            var, base = _parse_refine_binder(sexp[1], tvars)
            prop = parse_prop(sexp[2], tvars)
            return Refine(var, base, prop)
        if name in _ALL and len(sexp) >= 3:
            binder = sexp[1]
            if not isinstance(binder, list) or not all(
                isinstance(v, Symbol) for v in binder
            ):
                raise TypeSyntaxError(f"bad ∀ binder: {sexp[1]!r}")
            names = tuple(v.name for v in binder)
            inner_tvars = tvars | frozenset(names)
            if len(sexp) == 3:
                body = parse_type(sexp[2], inner_tvars)
            else:
                fun = _parse_fun(sexp[2:], inner_tvars)
                if fun is None:
                    raise TypeSyntaxError(f"bad ∀ body: {sexp!r}")
                body = fun
            return Poly(names, body)
    fun = _parse_fun(sexp, tvars)
    if fun is not None:
        return fun
    raise TypeSyntaxError(f"bad type: {sexp!r}")


def parse_type_text(text: str, tvars: FrozenSet[str] = frozenset()) -> Type:
    """Parse a type from program text (convenience for tests/examples)."""
    return parse_type(read(text), tvars)
