"""Hash-consing support for the ``tr`` value layer.

Propositions, types and symbolic objects are immutable trees that the
proof engine compares, hashes and fingerprints constantly: every
environment key, proof-cache key and theory-session key is built from
them.  Recomputing a structural hash on each dictionary probe makes
those keys O(tree) instead of O(1), and without stable identities an
environment fingerprint has to re-serialise its whole contents.

This module provides the two mechanisms the incremental engine needs:

* :func:`hashconsed` — a class decorator (applied on top of
  ``@dataclass(frozen=True)``) that caches the structural hash on the
  instance the first time it is demanded and adds identity/hash fast
  paths to ``__eq__``.  Deep trees are hashed once, ever.
* :func:`node_id` — a *stable id* per structural value.  Ids are drawn
  from a monotone counter and recorded in a bounded intern table, so
  two structurally equal nodes (almost always) share one id and an id
  is never reused.  Environment fingerprints are built from these small
  integers instead of whole subtrees.

The intern table keeps one canonical instance per structural value so
that ids survive as long as the process — this is what lets the proof
caches hit across whole re-checks of a program.  The table is bounded:
when it outgrows :data:`INTERN_LIMIT` it is cleared, after which later
nodes simply draw fresh ids (ids are never reused).  Callers may only
rely on ``node_id(a) == node_id(b)`` implying ``a == b``, never on the
converse, which is exactly what cache keys need.
"""

from __future__ import annotations

import dataclasses
from itertools import count
from typing import Any, Dict

__all__ = [
    "hashconsed",
    "node_id",
    "node_digest",
    "prime_hashes",
    "intern_stats",
    "reset_intern_stats",
    "INTERN_LIMIT",
]

#: entries retained before the intern table is dropped and restarted
INTERN_LIMIT = 1 << 20

_ids = count(1)
_table: Dict[Any, int] = {}

#: interning counters, surfaced through the engine stats report
_stats: Dict[str, int] = {"nodes": 0, "shared": 0}


def hashconsed(cls):
    """Cache structural hashes per instance; fast-path equality.

    Must be applied *over* ``@dataclass(frozen=True)`` so that the
    dataclass-generated ``__hash__``/``__eq__`` are the structural
    fallbacks.  The cached hash lives in the ``_hash`` slot declared by
    the value-layer base classes; ``repr`` — used as a canonical sort
    key by the linear-expression and constraint normal forms — is
    cached the same way.
    """
    struct_hash = cls.__hash__
    struct_eq = cls.__eq__
    struct_repr = cls.__repr__

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = struct_hash(self)
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        try:
            return self._repr
        except AttributeError:
            r = struct_repr(self)
            object.__setattr__(self, "_repr", r)
            return r

    def __eq__(self, other):
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented
        try:
            if self._hash != other._hash:
                return False
        except AttributeError:
            pass
        return struct_eq(self, other)

    cls.__hash__ = __hash__
    cls.__eq__ = __eq__
    cls.__repr__ = __repr__
    return cls


def node_id(node: Any) -> int:
    """The stable intern id of ``node``; assigns one on first sight.

    Structurally equal live nodes share an id; distinct ids always mean
    distinct values.  O(1) after the first call per instance (the id is
    stamped onto the node).
    """
    try:
        return node._iid
    except AttributeError:
        pass
    iid = _table.get(node)
    if iid is None:
        if len(_table) >= INTERN_LIMIT:
            _table.clear()
        iid = next(_ids)
        _table[node] = iid
        _stats["nodes"] += 1
    else:
        _stats["shared"] += 1
    object.__setattr__(node, "_iid", iid)
    return iid


#: node → hex content digest; bounded like the id table
_digests: Dict[Any, str] = {}


def _child_digest(value: Any) -> str:
    """The digest fragment of one field value (children pre-digested)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _digests[value]
    if isinstance(value, tuple):
        return "(" + ",".join(_child_digest(item) for item in value) + ")"
    return repr(value)


def node_digest(node: Any) -> str:
    """A stable, cross-process content digest of a structural value.

    Unlike :func:`node_id` — a process-local counter — the digest is a
    pure function of the value's structure, so it can address content
    in *persistent* caches shared between batch workers and across
    runs.  It is computed Merkle-style — each node hashes its class
    name and its fields' digests — by an explicit post-order walk:
    linear in the number of *distinct* nodes and O(1) stack, where
    hashing a serialisation would recurse per level and explode
    exponentially on values with shared subtrees (a ``repr`` of a
    ``PairObj(t, t)`` tower doubles per level).  Memoised per live
    node; a collision (SHA-256) could only make two queries share a
    cache slot, and is not a practical concern.
    """
    import hashlib

    prime_hashes(node)  # dict probes below must not recurse per level
    cached = _digests.get(node)
    if cached is not None:
        return cached
    if len(_digests) >= INTERN_LIMIT:
        # Clear only between walks: the post-order below relies on
        # children staying present until their parents are digested.
        _digests.clear()
    stack = [(node, False)]
    while stack:
        current, ready = stack.pop()
        if not dataclasses.is_dataclass(current) or isinstance(current, type):
            continue
        if current in _digests:
            continue
        if ready:
            parts = [type(current).__name__]
            for field in dataclasses.fields(current):
                parts.append(_child_digest(getattr(current, field.name)))
            blob = "\x1f".join(parts)
            _digests[current] = hashlib.sha256(blob.encode()).hexdigest()
        else:
            stack.append((current, True))
            pending = [
                getattr(current, field.name)
                for field in dataclasses.fields(current)
            ]
            while pending:
                value = pending.pop()
                if isinstance(value, tuple):
                    pending.extend(value)
                elif dataclasses.is_dataclass(value) and not isinstance(value, type):
                    stack.append((value, False))
    return _digests[node]


def prime_hashes(node: Any) -> None:
    """Warm the cached structural hashes and reprs of a value, bottom-up.

    ``hashconsed`` caches each node's hash and repr lazily, but the
    *first* ``hash()``/``repr()`` of a cold tree recurses through every
    uncached child — Python frames proportional to tree depth.  Goals
    assembled from deep programs (T-If/T-Let prop joins) can nest
    thousands of levels, so the proof engine primes them here: an
    explicit depth-first walk over the uncached substructure, then
    ``hash()`` in reverse (children-first) order, each costing O(1)
    stack.  Reprs are deliberately *not* warmed: a repr's text doubles
    per level on values with shared subtrees, which is why
    :func:`node_digest` hashes structure instead of serialisations.

    A visited set bounds the walk by the number of distinct *nodes*:
    values that share subtrees (``PairObj(t, t)`` towers, joined
    propositions) would otherwise be re-walked once per path —
    exponentially.  Already-warm subtrees are skipped, so priming a
    cached value is a single attribute probe.
    """
    pending = [node]
    ordered = []
    seen: set = set()
    while pending:
        current = pending.pop()
        if not dataclasses.is_dataclass(current) or isinstance(current, type):
            continue
        if id(current) in seen:
            continue
        seen.add(id(current))
        try:
            object.__getattribute__(current, "_hash")
            continue  # cached hash ⇒ the whole subtree is warm
        except AttributeError:
            pass
        ordered.append(current)
        for field in dataclasses.fields(current):
            value = getattr(current, field.name)
            if isinstance(value, tuple):
                for item in value:
                    if isinstance(item, tuple):
                        pending.extend(item)
                    else:
                        pending.append(item)
            else:
                pending.append(value)
    for current in reversed(ordered):
        hash(current)


def intern_stats() -> Dict[str, int]:
    """Counters: distinct ``nodes`` interned, ``shared`` rediscoveries."""
    return dict(_stats)


def reset_intern_stats() -> None:
    _stats["nodes"] = 0
    _stats["shared"] = 0
