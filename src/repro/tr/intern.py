"""Interning (hash-consing) support for the ``tr`` value layer.

Propositions, types and symbolic objects are immutable trees that the
proof engine compares, hashes and fingerprints constantly: every
environment key, proof-cache key and theory-session key is built from
them.  The original representation — frozen dataclasses with *lazily*
cached hashes — made every cold probe pay a Python-level ``__hash__``
(guarded by an ``AttributeError``), every deep value a priming walk,
and every content digest a memo-dict lookup.  Profiling the checker on
the fuzz corpus showed those frames (``prime_hashes``, the lazy
``__hash__``/``__eq__`` wrappers, ``dataclasses.fields`` walks and the
digest memo) dominating the hot path.

This module replaces that machinery with true interning:

* :func:`interned` — a class decorator for ``__slots__`` value classes
  that generates a per-class ``__new__`` performing hash-consing.  On
  a table hit the canonical instance comes back from one dict probe;
  on a miss the node is built **once**, with its structural hash and
  stable intern id precomputed at construction.  ``hash()`` is a slot
  read, equality is almost always an identity check, and there is no
  lazy-initialisation exception path left anywhere.
* :func:`node_id` — the stable id, now just the ``_iid`` slot stamped
  at construction.  Ids are drawn from a monotone counter and never
  reused, so ``node_id(a) == node_id(b)`` implies ``a == b`` (the
  property cache keys rely on); the converse holds except across an
  intern-table clear, which cache keys must not (and do not) assume.
* :func:`node_digest` — the cross-process content digest, cached in a
  ``_digest`` slot on the node itself (no memo dict): one attribute
  read per probe after the first, computed by an explicit post-order
  walk so deep values cost O(1) Python stack.

The intern tables keep one canonical instance per structural value for
as long as the process runs — this is what lets proof caches hit
across whole re-checks of a program.  The tables are bounded: when the
total number of live entries outgrows :data:`INTERN_LIMIT` they are
cleared, after which later constructions simply build fresh nodes with
fresh ids.  Callers may only rely on ``node_id(a) == node_id(b)``
implying ``a == b``, never on the converse, which is exactly what
cache keys need.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Dict, List

__all__ = [
    "InternedValue",
    "interned",
    "node_id",
    "node_digest",
    "prime_hashes",
    "intern_stats",
    "reset_intern_stats",
    "register_clear_hook",
    "INTERN_LIMIT",
]

#: entries retained (across all classes) before the intern tables are
#: dropped and restarted
INTERN_LIMIT = 1 << 20

#: interning counters, surfaced through the engine stats report
_stats: Dict[str, int] = {"nodes": 0, "shared": 0}

#: every per-class intern table, for the global bound
_tables: List[Dict[Any, Any]] = []
_live = [0]  # total entries across _tables

# Intern ids are allocated by a single C-level call (``next`` on an
# ``itertools.count``), which CPython executes atomically under the
# GIL.  The daemon's engine lanes construct values from several threads
# at once; a Python-level read-modify-write here could stamp the same
# id on two *different* values, and every id-keyed judgment cache would
# then be unsound.  The other construction races are benign: two
# threads interning the same value concurrently may build two canonical
# instances (last table write wins), but they carry distinct ids and
# compare structurally equal, so caches can only miss, never lie.
_next_id = itertools.count(1).__next__


class InternedValue:
    """Marker base of every interned value class.

    Declares no slots of its own; the value-layer base classes
    (``Obj``, ``Prop``, ``Type``, ``TypeResult``) declare the four
    cache slots::

        __slots__ = ("_hash", "_iid", "_repr", "_digest")

    ``_hash`` and ``_iid`` are stamped at construction; ``_repr`` and
    ``_digest`` are filled on first demand (their cost is proportional
    to output size, and most nodes never need either).
    """

    __slots__ = ()

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"{type(self).__name__} is immutable (interned value)"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"{type(self).__name__} is immutable (interned value)"
        )


#: callbacks run whenever the intern tables are dropped — caches keyed
#: by intern ids (or holding canonical instances) register here so they
#: never outlive the table generation that produced their entries
_clear_hooks: List[Any] = []


def register_clear_hook(fn) -> None:
    """Run ``fn()`` whenever the intern tables are cleared."""
    _clear_hooks.append(fn)


def _clear_tables() -> None:
    for table in _tables:
        table.clear()
    _live[0] = 0
    for hook in _clear_hooks:
        hook()


def interned(cls):
    """Generate hash-consing ``__new__``/``__hash__``/``__eq__`` for ``cls``.

    ``cls`` must inherit :class:`InternedValue` (via one of the value-
    layer bases) and declare its payload fields — and nothing else — in
    its own ``__slots__``.  The decorator generates, specialised to the
    exact field list (the same trick :mod:`dataclasses` uses):

    * ``__new__`` — probes the per-class intern table and returns the
      canonical instance on a hit; on a miss builds the node with
      ``_hash`` (salted per class) and ``_iid`` precomputed;
    * ``__hash__`` — one slot read;
    * ``__eq__`` — identity, then class, then field-wise comparison
      (the structural fallback only matters across intern-table
      clears and pickle boundaries mid-construction);
    * ``__reduce__`` — pickles as ``(cls, fields)`` so unpickling runs
      back through the interning constructor: a round-tripped node is
      *identical* to the local canonical instance, in any process;
    * a caching wrapper over the class's own ``__repr__`` (reprs are
      used as canonical sort keys by the linear forms, so they are
      cached, but never precomputed: a repr's text can double per
      level on values with shared subtrees).

    A class may define ``_validate`` (a ``staticmethod`` taking the
    field values) to reject malformed nodes; it runs only on table
    misses — an interned value was already validated.  Trailing fields
    may carry default values via a ``_field_defaults`` class attribute
    (a mapping from field name to default).
    """
    fields = tuple(cls.__slots__)
    table: Dict[Any, Any] = {}
    _tables.append(table)
    salt = hash((cls.__module__, cls.__qualname__))
    validate = cls.__dict__.get("_validate")
    defaults = cls.__dict__.get("_field_defaults", {})
    if defaults:
        tail = fields[len(fields) - len(defaults):]
        if set(defaults) != set(tail):
            raise TypeError(
                f"{cls.__name__}: defaulted fields must be trailing"
            )

    args = ", ".join(fields)
    sig_args = ", ".join(
        f"{name}=_dflt_{name}" if name in defaults else name
        for name in fields
    )
    key_expr = (
        "()" if not fields else fields[0] if len(fields) == 1 else f"({args})"
    )
    field_tuple = (
        "()" if not fields else f"(self.{fields[0]},)" if len(fields) == 1
        else "(" + ", ".join(f"self.{name}" for name in fields) + ")"
    )
    lines = [
        f"def __new__(cls, {sig_args}):" if fields else "def __new__(cls):",
        f"    key = {key_expr}",
        "    self = _get(key)",
        "    if self is not None:",
        "        _stats['shared'] += 1",
        "        return self",
        "    if _live[0] >= INTERN_LIMIT:",
        "        _clear()",
    ]
    if validate is not None:
        lines.append(f"    _validate({args})")
    lines.append("    self = _new(_cls)")
    for name in fields:
        lines.append(f"    _set(self, {name!r}, {name})")
    lines += [
        "    _set(self, '_hash', hash(key) ^ _salt)",
        "    _set(self, '_iid', _next_id())",
        "    _table[key] = self",
        "    _live[0] += 1",
        "    _stats['nodes'] += 1",
        "    return self",
        "",
        "def __hash__(self):",
        "    return self._hash",
        "",
        "def __eq__(self, other):",
        "    if self is other:",
        "        return True",
        "    if other.__class__ is not _cls:",
        "        return NotImplemented",
    ]
    if fields:
        cmp = " and ".join(f"self.{f} == other.{f}" for f in fields)
        lines.append(f"    return {cmp}")
    else:
        lines.append("    return True")
    lines += [
        "",
        "def __reduce__(self):",
        f"    return (_cls, {field_tuple})",
    ]
    namespace = {
        "_get": table.get,
        "_table": table,
        "_set": object.__setattr__,
        "_new": object.__new__,
        "_salt": salt,
        "_next_id": _next_id,
        "_live": _live,
        "_stats": _stats,
        "_clear": _clear_tables,
        "_validate": validate.__func__ if validate is not None else None,
        "INTERN_LIMIT": INTERN_LIMIT,
        "_cls": None,  # patched below, after cls is final
    }
    for name, value in defaults.items():
        namespace[f"_dflt_{name}"] = value
    exec("\n".join(lines), namespace)

    struct_repr = cls.__repr__

    def __repr__(self):
        try:
            return self._repr
        except AttributeError:
            rendered = struct_repr(self)
            object.__setattr__(self, "_repr", rendered)
            return rendered

    cls.__new__ = namespace["__new__"]
    cls.__hash__ = namespace["__hash__"]
    cls.__eq__ = namespace["__eq__"]
    cls.__reduce__ = namespace["__reduce__"]
    cls.__repr__ = __repr__
    cls._intern_fields = fields
    namespace["_cls"] = cls
    return cls


def node_id(node: Any) -> int:
    """The stable intern id of ``node``, stamped at construction.

    Structurally equal live nodes share an id (they are the same
    instance); distinct ids always mean distinct values.  One slot
    read — no table probe, ever.
    """
    return node._iid


def node_digest(node: Any) -> str:
    """A stable, cross-process content digest of a structural value.

    Unlike :func:`node_id` — a process-local counter — the digest is a
    pure function of the value's structure, so it can address content
    in *persistent* caches shared between batch workers and across
    runs.  It is computed Merkle-style — each node hashes its class
    name and its fields' digests — by an explicit post-order walk:
    linear in the number of *distinct* nodes and O(1) stack, where
    hashing a serialisation would recurse per level and explode
    exponentially on values with shared subtrees (a ``repr`` of a
    ``PairObj(t, t)`` tower doubles per level).

    The result is cached in the node's ``_digest`` slot, so after the
    first computation a probe is a single attribute read — the memo
    dict (and its per-probe hashing) of the old representation is
    gone.  The digest scheme is byte-identical to the frozen-dataclass
    representation's, so persistent caches written before the
    representation rewrite stay valid (pinned by
    ``tests/test_intern.py``).
    """
    try:
        return node._digest
    except AttributeError:
        pass
    sha256 = hashlib.sha256
    set_ = object.__setattr__
    stack = [(node, False)]
    while stack:
        current, ready = stack.pop()
        if ready:
            parts = [type(current).__name__]
            for name in current._intern_fields:
                parts.append(_child_digest(getattr(current, name)))
            blob = "\x1f".join(parts)
            set_(current, "_digest", sha256(blob.encode()).hexdigest())
            continue
        try:
            current._digest
            continue
        except AttributeError:
            pass
        stack.append((current, True))
        pending = [
            getattr(current, name) for name in current._intern_fields
        ]
        while pending:
            value = pending.pop()
            if isinstance(value, tuple):
                pending.extend(value)
            elif isinstance(value, InternedValue):
                stack.append((value, False))
    return node._digest


def _child_digest(value: Any) -> str:
    """The digest fragment of one field value (children pre-digested)."""
    if isinstance(value, InternedValue):
        return value._digest
    if isinstance(value, tuple):
        return "(" + ",".join(_child_digest(item) for item in value) + ")"
    return repr(value)


def prime_hashes(node: Any) -> None:
    """Compatibility no-op: hashes are precomputed at construction.

    The frozen-dataclass representation cached hashes lazily, so the
    first ``hash()`` of a cold deep tree recursed through every
    uncached child and callers had to warm values bottom-up before
    touching them.  Interned nodes are born with their hash (children
    are hashed before the parent's construction key is), so there is
    nothing left to prime.  Kept so external callers need not change.
    """


def intern_stats() -> Dict[str, int]:
    """Counters: distinct ``nodes`` interned, ``shared`` rediscoveries."""
    return dict(_stats)


def reset_intern_stats() -> None:
    _stats["nodes"] = 0
    _stats["shared"] = 0
