"""Core term/type structures: Figure 2 and its theory extensions."""
