"""Pretty-printing types, propositions and objects back to surface syntax.

The inverse of :mod:`repro.tr.parse`: rendered text re-parses to an
equal term (a property test in ``tests/test_pretty.py`` checks the
round trip).  Used by diagnostics, so the error boxes read like the
paper's — ``(Refine [i : Int] (and (<= 0 i) (< i (len B))))`` rather
than an internal canonical form.
"""

from __future__ import annotations

from typing import List

from .objects import (
    BVExpr,
    FieldRef,
    LinExpr,
    NullObj,
    Obj,
    PairObj,
    Var,
)
from .props import (
    Alias,
    And,
    BVProp,
    Congruence,
    FalseProp,
    IsType,
    LeqZero,
    NotType,
    Or,
    Prop,
    TrueProp,
)
from .results import TypeResult
from .types import (
    BOOL,
    BOT,
    TOP,
    FalseT,
    Fun,
    Int,
    Pair,
    Poly,
    Refine,
    Str,
    TrueT,
    TVar,
    Type,
    Union,
    Vec,
    Void,
)

__all__ = ["pretty_type", "pretty_prop", "pretty_obj", "pretty_result"]


# ----------------------------------------------------------------------
# objects
# ----------------------------------------------------------------------
def pretty_obj(obj: Obj) -> str:
    if isinstance(obj, NullObj):
        return "∅"
    if isinstance(obj, Var):
        return obj.name
    if isinstance(obj, FieldRef):
        return f"({obj.field} {pretty_obj(obj.base)})"
    if isinstance(obj, PairObj):
        return f"(cons-obj {pretty_obj(obj.fst)} {pretty_obj(obj.snd)})"
    if isinstance(obj, LinExpr):
        return _pretty_linexpr(obj)
    if isinstance(obj, BVExpr):
        args = " ".join(
            pretty_obj(a) if isinstance(a, Obj) else str(a) for a in obj.args
        )
        return f"(bv-{obj.op} {args})"
    raise TypeError(f"not an object: {obj!r}")


def _pretty_term(atom: Obj, coeff: int) -> str:
    if coeff == 1:
        return pretty_obj(atom)
    return f"(* {coeff} {pretty_obj(atom)})"


def _pretty_linexpr(expr: LinExpr) -> str:
    if not expr.terms:
        return str(expr.const)
    parts: List[str] = [
        _pretty_term(atom, coeff) for atom, coeff in expr.terms
    ]
    if expr.const != 0:
        parts.insert(0, str(expr.const))
    if len(parts) == 1:
        return parts[0]
    return "(+ " + " ".join(parts) + ")"


# ----------------------------------------------------------------------
# propositions
# ----------------------------------------------------------------------
def pretty_prop(prop: Prop) -> str:
    if isinstance(prop, TrueProp):
        return "tt"
    if isinstance(prop, FalseProp):
        return "ff"
    if isinstance(prop, And):
        return "(and " + " ".join(pretty_prop(c) for c in prop.conjuncts) + ")"
    if isinstance(prop, Or):
        return "(or " + " ".join(pretty_prop(d) for d in prop.disjuncts) + ")"
    if isinstance(prop, IsType):
        return f"(is {pretty_obj(prop.obj)} {pretty_type(prop.type)})"
    if isinstance(prop, NotType):
        return f"(is-not {pretty_obj(prop.obj)} {pretty_type(prop.type)})"
    if isinstance(prop, Alias):
        return f"(alias {pretty_obj(prop.left)} {pretty_obj(prop.right)})"
    if isinstance(prop, LeqZero):
        return _pretty_inequality(prop.expr)
    if isinstance(prop, BVProp):
        return f"(bv{prop.op} {pretty_obj(prop.lhs)} {pretty_obj(prop.rhs)})"
    if isinstance(prop, Congruence):
        if prop.modulus == 2:
            return f"({'even' if prop.residue == 0 else 'odd'} {pretty_obj(prop.obj)})"
        if prop.residue == 0:
            return f"(divisible {pretty_obj(prop.obj)} {prop.modulus})"
        return f"(congruent {pretty_obj(prop.obj)} {prop.modulus} {prop.residue})"
    return repr(prop)


def _pretty_inequality(expr: LinExpr) -> str:
    """Render ``e ≤ 0`` as a readable two-sided comparison.

    Negative-coefficient terms move to the right-hand side, so
    ``i - len(v) + 1 ≤ 0`` prints as ``(< i (len v))``.
    """
    left: List[str] = []
    right: List[str] = []
    for atom, coeff in expr.terms:
        if coeff > 0:
            left.append(_pretty_term(atom, coeff))
        else:
            right.append(_pretty_term(atom, -coeff))
    const = expr.const
    strict = False
    if const == 1 and left and right:
        strict = True  # x + 1 ≤ y  prints as  (< x y)
        const = 0
    if const > 0:
        left.insert(0, str(const))
    elif const < 0:
        right.insert(0, str(-const))

    def side(parts: List[str]) -> str:
        if not parts:
            return "0"
        if len(parts) == 1:
            return parts[0]
        return "(+ " + " ".join(parts) + ")"

    op = "<" if strict else "<="
    return f"({op} {side(left)} {side(right)})"


# ----------------------------------------------------------------------
# types
# ----------------------------------------------------------------------
def pretty_type(ty: Type) -> str:
    if ty == BOOL:
        return "Bool"
    if ty == BOT:
        return "Bot"
    if ty == TOP:
        return "Any"
    if isinstance(ty, Int):
        return "Int"
    if isinstance(ty, TrueT):
        return "True"
    if isinstance(ty, FalseT):
        return "False"
    if isinstance(ty, Str):
        return "Str"
    if isinstance(ty, Void):
        return "Void"
    if isinstance(ty, TVar):
        return ty.name
    if isinstance(ty, Union):
        return "(U " + " ".join(pretty_type(m) for m in ty.members) + ")"
    if isinstance(ty, Pair):
        return f"(Pairof {pretty_type(ty.fst)} {pretty_type(ty.snd)})"
    if isinstance(ty, Vec):
        return f"(Vecof {pretty_type(ty.elem)})"
    if isinstance(ty, Refine):
        return (
            f"(Refine [{ty.var} : {pretty_type(ty.base)}] {pretty_prop(ty.prop)})"
        )
    if isinstance(ty, Fun):
        doms = " ".join(
            f"[{name} : {pretty_type(arg)}]" for name, arg in ty.args
        )
        rng = pretty_type(ty.result.type)
        if doms:
            return f"({doms} -> {rng})"
        return f"(-> {rng})"
    if isinstance(ty, Poly):
        return f"(All ({' '.join(ty.tvars)}) {pretty_type(ty.body)})"
    raise TypeError(f"not a type: {ty!r}")


def pretty_result(result: TypeResult) -> str:
    core = (
        f"({pretty_type(result.type)} ; {pretty_prop(result.then_prop)} | "
        f"{pretty_prop(result.else_prop)} ; {pretty_obj(result.obj)})"
    )
    for name, ty in reversed(result.binders):
        core = f"(Exists [{name} : {pretty_type(ty)}] {core})"
    return core
