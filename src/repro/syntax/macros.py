"""The macro expander: Racket's derived forms → core forms.

Typed Racket "type checks programs after macro expansion" (section
4.4), and the paper's central inference challenge is the ``letrec`` +
``λ`` residue of the ``for`` iteration macros.  This expander produces
exactly that residue: ``for/sum`` becomes the ``letrec`` loop shown in
section 4.4 (start/end/step/loop/pos/acc are fresh, unannotatable
identifiers), and the conditional/binding sugar (``cond``, ``when``,
``unless``, ``and``, ``or``, ``let*``, named ``let``, ``begin``,
internal ``define``) lowers to ``if``/``let``/``letrec``.

Variadic arithmetic and chained comparisons are also lowered to the
binary primitives the Δ table types.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sexp.reader import SExp, Symbol
from ..tr.results import fresh_name

__all__ = ["MacroError", "expand", "expand_body", "gensym"]

class MacroError(SyntaxError):
    """Raised on a malformed use of a derived form."""


def gensym(hint: str = "g") -> Symbol:
    """A fresh identifier, drawn from the shared fresh-name counter.

    Sharing the counter with :mod:`repro.tr.results` means the
    program's ``fresh_floor`` watermark covers macro-introduced names
    too, so check-time witnesses can never collide with them.
    """
    return Symbol(fresh_name(hint))


def _sym(name: str) -> Symbol:
    return Symbol(name)


_LET = _sym("let")
_LET1 = _sym("let1")  # core single-binding let (macro output only)
_IF = _sym("if")
_LAMBDA = _sym("λ")
_LETREC = _sym("letrec")
_VOID = [_sym("void")]

_VARIADIC_ARITH = {"+", "*"}
_CHAINED_CMP = {"<", "<=", "≤", ">", ">=", "≥", "="}


def expand(sexp: SExp) -> SExp:
    """Fully expand one form.

    Type positions — annotation declarations, ``ann`` types, λ-parameter
    and binding annotations, ``struct`` field lists — are left
    untouched: their ``and``/``or`` are propositions, not expressions.
    """
    if not isinstance(sexp, list) or not sexp:
        return sexp
    head = sexp[0]
    if isinstance(head, Symbol):
        name = head.name
        if name == ":" or name == "struct" or name == "require" or name == "provide":
            return sexp
        if name in ("λ", "lambda") and len(sexp) >= 3:
            return [head, sexp[1], expand(expand_body(sexp[2:]))]
        if name == "ann" and len(sexp) == 3:
            return [head, expand(sexp[1]), sexp[2]]
        if name == "let1" and len(sexp) == 3 and isinstance(sexp[1], list):
            binding = sexp[1]
            if len(binding) == 2:
                new_binding: SExp = [binding[0], expand(binding[1])]
            elif len(binding) == 4:
                new_binding = [binding[0], binding[1], binding[2], expand(binding[3])]
            else:
                raise MacroError(f"bad let1 binding: {binding!r}")
            return [head, new_binding, expand(sexp[2])]
        if name == "letrec" and len(sexp) >= 3 and isinstance(sexp[1], list):
            new_bindings = []
            for binding in sexp[1]:
                if isinstance(binding, list) and len(binding) == 2:
                    new_bindings.append([binding[0], expand(binding[1])])
                elif isinstance(binding, list) and len(binding) == 4:
                    new_bindings.append(
                        [binding[0], binding[1], binding[2], expand(binding[3])]
                    )
                else:
                    raise MacroError(f"bad letrec binding: {binding!r}")
            return [head, new_bindings, expand(expand_body(sexp[2:]))]
        if name == "define" and len(sexp) >= 3:
            return [head, sexp[1], expand(expand_body(sexp[2:]))]
        expander = _MACROS.get(name)
        if expander is not None:
            return expand(expander(sexp))
        if name in _VARIADIC_ARITH and len(sexp) > 3:
            lowered = _lower_variadic(sexp)
            if lowered is not sexp:
                return expand(lowered)
        if name in _CHAINED_CMP and len(sexp) > 3:
            return expand(_lower_chain(sexp))
    return [expand(item) for item in sexp]


def expand_body(forms: Sequence[SExp]) -> SExp:
    """A body sequence → one expression (internal defines become lets)."""
    if not forms:
        raise MacroError("empty body")
    first = forms[0]
    if (
        isinstance(first, list)
        and first
        and isinstance(first[0], Symbol)
        and first[0].name == "define"
    ):
        if len(forms) == 1:
            raise MacroError("a body cannot end with a definition")
        if len(first) >= 3 and isinstance(first[1], Symbol):
            return [_LET1, [first[1], _begin(first[2:])], expand_body(forms[1:])]
        if len(first) >= 3 and isinstance(first[1], list):
            # (define (f a ...) body ...) internal function
            name = first[1][0]
            lam = [_LAMBDA, first[1][1:]] + list(first[2:])
            return [_LETREC, [[name, lam]], expand_body(forms[1:])]
        raise MacroError(f"bad internal define: {first!r}")
    if len(forms) == 1:
        return forms[0]
    return [_LET1, [gensym("ignore"), forms[0]], expand_body(forms[1:])]


def _begin(forms: Sequence[SExp]) -> SExp:
    return expand_body(list(forms))


def _lower_variadic(sexp: list) -> SExp:
    op = sexp[0]
    acc = sexp[1]
    for arg in sexp[2:]:
        acc = [op, acc, arg]
    return acc


def _lower_chain(sexp: list) -> SExp:
    """``(< a b c)`` → ``(and (< a b) (< b c))``.

    Middle operands that are not atoms are let-bound first so they are
    evaluated once (as Racket does).
    """
    op = sexp[0]
    operands = list(sexp[1:])
    bindings: List[list] = []
    names: List[SExp] = []
    for i, operand in enumerate(operands):
        if 0 < i < len(operands) - 1 and isinstance(operand, list):
            name = gensym("cmp")
            bindings.append([name, operand])
            names.append(name)
        else:
            names.append(operand)
    body: SExp = [_sym("and")] + [
        [op, a, b] for a, b in zip(names, names[1:])
    ]
    for name, rhs in reversed(bindings):
        body = [_LET1, [name, rhs], body]
    return body


# ----------------------------------------------------------------------
# individual macros
# ----------------------------------------------------------------------
def _expand_cond(sexp: list) -> SExp:
    clauses = sexp[1:]
    if not clauses:
        return _VOID
    clause = clauses[0]
    if not isinstance(clause, list) or not clause:
        raise MacroError(f"bad cond clause: {clause!r}")
    test = clause[0]
    if test == _sym("else"):
        if len(clauses) != 1:
            raise MacroError("cond: else clause must be last")
        return _begin(clause[1:])
    rest = [_sym("cond")] + clauses[1:]
    return [_IF, test, _begin(clause[1:]), rest]


def _expand_when(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError("when needs a test and a body")
    return [_IF, sexp[1], _begin(sexp[2:]), _VOID]


def _expand_unless(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError("unless needs a test and a body")
    return [_IF, sexp[1], _VOID, _begin(sexp[2:])]


def _expand_and(sexp: list) -> SExp:
    args = sexp[1:]
    if not args:
        return True
    if len(args) == 1:
        return args[0]
    return [_IF, args[0], [_sym("and")] + args[1:], False]


def _expand_or(sexp: list) -> SExp:
    args = sexp[1:]
    if not args:
        return False
    if len(args) == 1:
        return args[0]
    tmp = gensym("or")
    return [_LET1, [tmp, args[0]], [_IF, tmp, tmp, [_sym("or")] + args[1:]]]


def _expand_let(sexp: list) -> SExp:
    if len(sexp) >= 4 and isinstance(sexp[1], Symbol):
        return _expand_named_let(sexp)
    if len(sexp) < 3:
        raise MacroError(f"bad let: {sexp!r}")
    bindings = sexp[1]
    body = _begin(sexp[2:])
    if not isinstance(bindings, list):
        raise MacroError(f"bad let bindings: {bindings!r}")
    # Parallel scope: since the parser α-renames everything, sequential
    # nesting of distinct names is equivalent.
    for binding in reversed(bindings):
        if isinstance(binding, list) and len(binding) in (2, 4):
            body = [_LET1, binding, body]
        else:
            raise MacroError(f"bad let binding: {binding!r}")
    return body


def _expand_let_star(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError(f"bad let*: {sexp!r}")
    body = _begin(sexp[2:])
    for binding in reversed(sexp[1]):
        body = [_LET1, binding, body]
    return body


def _expand_named_let(sexp: list) -> SExp:
    """``(let loop ([x init] ...) body)`` → ``letrec`` + call.

    Annotated bindings ``[x : τ init]`` become annotated λ params.
    """
    loop_name = sexp[1]
    bindings = sexp[2]
    params: List[SExp] = []
    inits: List[SExp] = []
    for binding in bindings:
        if isinstance(binding, list) and len(binding) == 2:
            params.append(binding[0])
            inits.append(binding[1])
        elif (
            isinstance(binding, list)
            and len(binding) == 4
            and binding[1] == _sym(":")
        ):
            params.append([binding[0], _sym(":"), binding[2]])
            inits.append(binding[3])
        else:
            raise MacroError(f"bad named-let binding: {binding!r}")
    lam = [_LAMBDA, params, _begin(sexp[3:])]
    return [_LETREC, [[loop_name, lam]], [loop_name] + inits]


def _parse_range_clause(clause: SExp):
    """``[i (in-range ...)]`` → (var, start, end, step)."""
    if (
        not isinstance(clause, list)
        or len(clause) != 2
        or not isinstance(clause[0], Symbol)
    ):
        raise MacroError(f"bad for clause: {clause!r}")
    var, seq = clause
    if not (isinstance(seq, list) and seq and seq[0] == _sym("in-range")):
        raise MacroError(f"only (in-range ...) sequences are supported: {seq!r}")
    args = seq[1:]
    if len(args) == 1:
        return var, 0, args[0], 1
    if len(args) == 2:
        return var, args[0], args[1], 1
    if len(args) == 3:
        if not isinstance(args[2], int):
            raise MacroError("in-range step must be a literal integer")
        return var, args[0], args[1], args[2]
    raise MacroError(f"bad in-range: {seq!r}")


def _expand_for_loop(clause: SExp, body: Sequence[SExp], accumulate: str) -> SExp:
    """The section 4.4 expansion shared by for / for/sum / for/product."""
    var, start, end, step = _parse_range_clause(clause)
    loop = gensym("loop")
    pos = gensym("pos")
    acc = gensym("acc")
    start_name = gensym("start")
    end_name = gensym("end")
    test_op = _sym("<") if step > 0 else _sym(">")
    if accumulate == "sum":
        initial: SExp = 0
        combine: SExp = [_sym("+"), acc, _begin(body)]
        base: SExp = acc
    elif accumulate == "product":
        initial = 1
        combine = [_sym("*"), acc, _begin(body)]
        base = acc
    else:  # plain for: accumulate nothing
        initial = 0
        combine = [_LET1, [gensym("ignore"), _begin(body)], 0]
        base = _VOID
    recur = [loop, [_sym("+"), step, pos], combine]
    lam = [
        _LAMBDA,
        [pos, acc],
        [
            _sym("cond"),
            [[test_op, pos, end_name], [_sym("define"), var, pos], recur],
            [_sym("else"), base],
        ],
    ]
    return [
        _LET1,
        [start_name, start],
        [
            _LET1,
            [end_name, end],
            [[_LETREC, [[loop, lam]], loop], start_name, initial],
        ],
    ]


def _expand_for_sum(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/sum supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "sum")


def _expand_for_product(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/product supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "product")


def _expand_for(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "void")


def _expand_for_fold(sexp: list) -> SExp:
    """``(for/fold ([acc init]) ([i (in-range ...)]) body)``."""
    if len(sexp) < 4 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/fold supports exactly one accumulator")
    if not isinstance(sexp[2], list) or len(sexp[2]) != 1:
        raise MacroError("for/fold supports exactly one clause")
    acc_binding = sexp[1][0]
    acc_name, acc_init = acc_binding[0], acc_binding[1]
    var, start, end, step = _parse_range_clause(sexp[2][0])
    loop = gensym("loop")
    pos = gensym("pos")
    start_name = gensym("start")
    end_name = gensym("end")
    test_op = _sym("<") if step > 0 else _sym(">")
    recur = [loop, [_sym("+"), step, pos], _begin(sexp[3:])]
    lam = [
        _LAMBDA,
        [pos, acc_name],
        [
            _sym("cond"),
            [[test_op, pos, end_name], [_sym("define"), var, pos], recur],
            [_sym("else"), acc_name],
        ],
    ]
    return [
        _LET1,
        [start_name, start],
        [
            _LET1,
            [end_name, end],
            [[_LETREC, [[loop, lam]], loop], start_name, acc_init],
        ],
    ]


def _expand_vec_match(sexp: list) -> SExp:
    """``(vec-match v [(x y z) body] [else e])``.

    The "pattern matching on vectors" idiom the paper credits for
    plot's high automatic-verification rate: an explicit length test
    guards constant-index accesses.
    """
    if len(sexp) != 4:
        raise MacroError("vec-match needs a subject and two clauses")
    subject, pat_clause, else_clause = sexp[1], sexp[2], sexp[3]
    if not (isinstance(pat_clause, list) and len(pat_clause) >= 2):
        raise MacroError(f"bad vec-match clause: {pat_clause!r}")
    pattern = pat_clause[0]
    if not (isinstance(else_clause, list) and else_clause[0] == _sym("else")):
        raise MacroError("vec-match needs an else clause")
    vec_name = gensym("vec")
    body = _begin(pat_clause[1:])
    for index in reversed(range(len(pattern))):
        body = [_LET1, [pattern[index], [_sym("vec-ref"), vec_name, index]], body]
    return [
        _LET1,
        [vec_name, subject],
        [
            _IF,
            [_sym("="), [_sym("len"), vec_name], len(pattern)],
            body,
            _begin(else_clause[1:]),
        ],
    ]


_MACROS = {
    "cond": _expand_cond,
    "when": _expand_when,
    "unless": _expand_unless,
    "and": _expand_and,
    "or": _expand_or,
    "let": _expand_let,
    "let*": _expand_let_star,
    "begin": lambda sexp: _begin(sexp[1:]),
    "for/sum": _expand_for_sum,
    "for/product": _expand_for_product,
    "for": _expand_for,
    "for/fold": _expand_for_fold,
    "vec-match": _expand_vec_match,
}
