"""The macro expander: Racket's derived forms → core forms.

Typed Racket "type checks programs after macro expansion" (section
4.4), and the paper's central inference challenge is the ``letrec`` +
``λ`` residue of the ``for`` iteration macros.  This expander produces
exactly that residue: ``for/sum`` becomes the ``letrec`` loop shown in
section 4.4 (start/end/step/loop/pos/acc are fresh, unannotatable
identifiers), and the conditional/binding sugar (``cond``, ``when``,
``unless``, ``and``, ``or``, ``let*``, named ``let``, ``begin``,
internal ``define``) lowers to ``if``/``let``/``letrec``.

Variadic arithmetic and chained comparisons are also lowered to the
binary primitives the Δ table types.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..sexp.reader import SExp, Symbol
from ..tr.results import fresh_name

__all__ = ["MacroError", "expand", "expand_body", "gensym"]

class MacroError(SyntaxError):
    """Raised on a malformed use of a derived form."""


def gensym(hint: str = "g") -> Symbol:
    """A fresh identifier, drawn from the shared fresh-name counter.

    Sharing the counter with :mod:`repro.tr.results` means the
    program's ``fresh_floor`` watermark covers macro-introduced names
    too, so check-time witnesses can never collide with them.
    """
    return Symbol(fresh_name(hint))


def _sym(name: str) -> Symbol:
    return Symbol(name)


_LET = _sym("let")
_LET1 = _sym("let1")  # core single-binding let (macro output only)
_IF = _sym("if")
_LAMBDA = _sym("λ")
_LETREC = _sym("letrec")
_VOID = [_sym("void")]

_VARIADIC_ARITH = {"+", "*"}
_CHAINED_CMP = {"<", "<=", "≤", ">", ">=", "≥", "="}


def _rewrite_head(sexp: SExp) -> SExp:
    """Apply root-level rewrites (macros, variadic/chain lowering) to a
    fixpoint, without descending into children."""
    while isinstance(sexp, list) and sexp and isinstance(sexp[0], Symbol):
        name = sexp[0].name
        expander = _MACROS.get(name)
        if expander is not None:
            sexp = expander(sexp)
            continue
        if name in _VARIADIC_ARITH and len(sexp) > 3:
            lowered = _lower_variadic(sexp)
            if lowered is not sexp:
                sexp = lowered
                continue
        if name in _CHAINED_CMP and len(sexp) > 3:
            sexp = _lower_chain(sexp)
            continue
        break
    return sexp


def expand(sexp: SExp) -> SExp:
    """Fully expand one form.

    Type positions — annotation declarations, ``ann`` types, λ-parameter
    and binding annotations, ``struct`` field lists — are left
    untouched: their ``and``/``or`` are propositions, not expressions.

    The traversal is an explicit work stack (depth-first, left to
    right — the same order, and therefore the same ``gensym`` stream,
    as the old recursive expander): nesting depth is a property of the
    *program*, and the ``for``-loop and ``cond`` towers of real modules
    must not be limited by the Python stack.  Each stack entry is a
    ``(container, index)`` slot to expand in place, or a deferred
    body-splice ``(container, index, forms)`` that runs
    :func:`expand_body` only after the slots pushed above it (a
    ``letrec``'s binding expressions) have fully expanded.
    """
    root: List[SExp] = [sexp]
    stack: List[tuple] = [(root, 0, None)]
    while stack:
        container, index, body_forms = stack.pop()
        if body_forms is not None:
            # Deferred splice: turn a body sequence into one expression
            # now (its gensyms must come after the sibling slots
            # already expanded), then expand it.
            container[index] = expand_body(body_forms)
            stack.append((container, index, None))
            continue
        node = _rewrite_head(container[index])
        container[index] = node
        if not isinstance(node, list) or not node:
            continue
        head = node[0]
        if isinstance(head, Symbol):
            name = head.name
            if name in (":", "struct", "require", "provide"):
                continue
            if name in ("λ", "lambda") and len(node) >= 3:
                new = [head, node[1], None]
                container[index] = new
                stack.append((new, 2, node[2:]))
                continue
            if name == "ann" and len(node) == 3:
                new = [head, node[1], node[2]]
                container[index] = new
                stack.append((new, 1, None))
                continue
            if name == "let1" and len(node) == 3 and isinstance(node[1], list):
                binding = node[1]
                if len(binding) == 2:
                    new_binding: SExp = [binding[0], binding[1]]
                    rhs_index = 1
                elif len(binding) == 4:
                    new_binding = list(binding)
                    rhs_index = 3
                else:
                    raise MacroError(f"bad let1 binding: {binding!r}")
                new = [head, new_binding, node[2]]
                container[index] = new
                stack.append((new, 2, None))  # body (expanded after rhs)
                stack.append((new_binding, rhs_index, None))
                continue
            if name == "letrec" and len(node) >= 3 and isinstance(node[1], list):
                new_bindings: List[SExp] = []
                slots: List[tuple] = []
                for binding in node[1]:
                    if isinstance(binding, list) and len(binding) == 2:
                        new_binding = list(binding)
                        slots.append((new_binding, 1, None))
                    elif isinstance(binding, list) and len(binding) == 4:
                        new_binding = list(binding)
                        slots.append((new_binding, 3, None))
                    else:
                        raise MacroError(f"bad letrec binding: {binding!r}")
                    new_bindings.append(new_binding)
                new = [head, new_bindings, None]
                container[index] = new
                stack.append((new, 2, node[2:]))  # body splice, deferred
                for slot in reversed(slots):
                    stack.append(slot)
                continue
            if name == "define" and len(node) >= 3:
                new = [head, node[1], None]
                container[index] = new
                stack.append((new, 2, node[2:]))
                continue
        # default: expand every item, left to right
        new = list(node)
        container[index] = new
        for item_index in reversed(range(len(new))):
            stack.append((new, item_index, None))
    return root[0]


def expand_body(forms: Sequence[SExp]) -> SExp:
    """A body sequence → one expression (internal defines become lets).

    Two passes, both iterative: the first walks front to back building
    each form's binding (calling ``gensym``/:func:`_begin` in the same
    order the old front-recursive version did), the second folds the
    bindings around the tail expression right to left.
    """
    if not forms:
        raise MacroError("empty body")
    last = len(forms) - 1
    pieces: List[Tuple[Symbol, SExp]] = []
    for position, form in enumerate(forms):
        is_define = (
            isinstance(form, list)
            and form
            and isinstance(form[0], Symbol)
            and form[0].name == "define"
        )
        if is_define:
            if position == last:
                raise MacroError("a body cannot end with a definition")
            if len(form) >= 3 and isinstance(form[1], Symbol):
                pieces.append((_LET1, [form[1], _begin(form[2:])]))
            elif len(form) >= 3 and isinstance(form[1], list):
                # (define (f a ...) body ...) internal function
                name = form[1][0]
                lam = [_LAMBDA, form[1][1:]] + list(form[2:])
                pieces.append((_LETREC, [[name, lam]]))
            else:
                raise MacroError(f"bad internal define: {form!r}")
        elif position == last:
            break
        else:
            pieces.append((_LET1, [gensym("ignore"), form]))
    body = forms[last]
    for binder, payload in reversed(pieces):
        body = [binder, payload, body]
    return body


def _begin(forms: Sequence[SExp]) -> SExp:
    return expand_body(list(forms))


def _lower_variadic(sexp: list) -> SExp:
    op = sexp[0]
    acc = sexp[1]
    for arg in sexp[2:]:
        acc = [op, acc, arg]
    return acc


def _lower_chain(sexp: list) -> SExp:
    """``(< a b c)`` → ``(and (< a b) (< b c))``.

    Middle operands that are not atoms are let-bound first so they are
    evaluated once (as Racket does).
    """
    op = sexp[0]
    operands = list(sexp[1:])
    bindings: List[list] = []
    names: List[SExp] = []
    for i, operand in enumerate(operands):
        if 0 < i < len(operands) - 1 and isinstance(operand, list):
            name = gensym("cmp")
            bindings.append([name, operand])
            names.append(name)
        else:
            names.append(operand)
    body: SExp = [_sym("and")] + [
        [op, a, b] for a, b in zip(names, names[1:])
    ]
    for name, rhs in reversed(bindings):
        body = [_LET1, [name, rhs], body]
    return body


# ----------------------------------------------------------------------
# individual macros
# ----------------------------------------------------------------------
def _expand_cond(sexp: list) -> SExp:
    clauses = sexp[1:]
    if not clauses:
        return _VOID
    clause = clauses[0]
    if not isinstance(clause, list) or not clause:
        raise MacroError(f"bad cond clause: {clause!r}")
    test = clause[0]
    if test == _sym("else"):
        if len(clauses) != 1:
            raise MacroError("cond: else clause must be last")
        return _begin(clause[1:])
    rest = [_sym("cond")] + clauses[1:]
    return [_IF, test, _begin(clause[1:]), rest]


def _expand_when(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError("when needs a test and a body")
    return [_IF, sexp[1], _begin(sexp[2:]), _VOID]


def _expand_unless(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError("unless needs a test and a body")
    return [_IF, sexp[1], _VOID, _begin(sexp[2:])]


def _expand_and(sexp: list) -> SExp:
    args = sexp[1:]
    if not args:
        return True
    if len(args) == 1:
        return args[0]
    return [_IF, args[0], [_sym("and")] + args[1:], False]


def _expand_or(sexp: list) -> SExp:
    args = sexp[1:]
    if not args:
        return False
    if len(args) == 1:
        return args[0]
    tmp = gensym("or")
    return [_LET1, [tmp, args[0]], [_IF, tmp, tmp, [_sym("or")] + args[1:]]]


def _expand_let(sexp: list) -> SExp:
    if len(sexp) >= 4 and isinstance(sexp[1], Symbol):
        return _expand_named_let(sexp)
    if len(sexp) < 3:
        raise MacroError(f"bad let: {sexp!r}")
    bindings = sexp[1]
    body = _begin(sexp[2:])
    if not isinstance(bindings, list):
        raise MacroError(f"bad let bindings: {bindings!r}")
    # Parallel scope: since the parser α-renames everything, sequential
    # nesting of distinct names is equivalent.
    for binding in reversed(bindings):
        if isinstance(binding, list) and len(binding) in (2, 4):
            body = [_LET1, binding, body]
        else:
            raise MacroError(f"bad let binding: {binding!r}")
    return body


def _expand_let_star(sexp: list) -> SExp:
    if len(sexp) < 3:
        raise MacroError(f"bad let*: {sexp!r}")
    body = _begin(sexp[2:])
    for binding in reversed(sexp[1]):
        body = [_LET1, binding, body]
    return body


def _expand_named_let(sexp: list) -> SExp:
    """``(let loop ([x init] ...) body)`` → ``letrec`` + call.

    Annotated bindings ``[x : τ init]`` become annotated λ params.
    """
    loop_name = sexp[1]
    bindings = sexp[2]
    params: List[SExp] = []
    inits: List[SExp] = []
    for binding in bindings:
        if isinstance(binding, list) and len(binding) == 2:
            params.append(binding[0])
            inits.append(binding[1])
        elif (
            isinstance(binding, list)
            and len(binding) == 4
            and binding[1] == _sym(":")
        ):
            params.append([binding[0], _sym(":"), binding[2]])
            inits.append(binding[3])
        else:
            raise MacroError(f"bad named-let binding: {binding!r}")
    lam = [_LAMBDA, params, _begin(sexp[3:])]
    return [_LETREC, [[loop_name, lam]], [loop_name] + inits]


def _parse_range_clause(clause: SExp):
    """``[i (in-range ...)]`` → (var, start, end, step)."""
    if (
        not isinstance(clause, list)
        or len(clause) != 2
        or not isinstance(clause[0], Symbol)
    ):
        raise MacroError(f"bad for clause: {clause!r}")
    var, seq = clause
    if not (isinstance(seq, list) and seq and seq[0] == _sym("in-range")):
        raise MacroError(f"only (in-range ...) sequences are supported: {seq!r}")
    args = seq[1:]
    if len(args) == 1:
        return var, 0, args[0], 1
    if len(args) == 2:
        return var, args[0], args[1], 1
    if len(args) == 3:
        if not isinstance(args[2], int):
            raise MacroError("in-range step must be a literal integer")
        return var, args[0], args[1], args[2]
    raise MacroError(f"bad in-range: {seq!r}")


def _expand_for_loop(clause: SExp, body: Sequence[SExp], accumulate: str) -> SExp:
    """The section 4.4 expansion shared by for / for/sum / for/product."""
    var, start, end, step = _parse_range_clause(clause)
    loop = gensym("loop")
    pos = gensym("pos")
    acc = gensym("acc")
    start_name = gensym("start")
    end_name = gensym("end")
    test_op = _sym("<") if step > 0 else _sym(">")
    if accumulate == "sum":
        initial: SExp = 0
        combine: SExp = [_sym("+"), acc, _begin(body)]
        base: SExp = acc
    elif accumulate == "product":
        initial = 1
        combine = [_sym("*"), acc, _begin(body)]
        base = acc
    else:  # plain for: accumulate nothing
        initial = 0
        combine = [_LET1, [gensym("ignore"), _begin(body)], 0]
        base = _VOID
    recur = [loop, [_sym("+"), step, pos], combine]
    lam = [
        _LAMBDA,
        [pos, acc],
        [
            _sym("cond"),
            [[test_op, pos, end_name], [_sym("define"), var, pos], recur],
            [_sym("else"), base],
        ],
    ]
    return [
        _LET1,
        [start_name, start],
        [
            _LET1,
            [end_name, end],
            [[_LETREC, [[loop, lam]], loop], start_name, initial],
        ],
    ]


def _expand_for_sum(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/sum supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "sum")


def _expand_for_product(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/product supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "product")


def _expand_for(sexp: list) -> SExp:
    if len(sexp) < 3 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for supports exactly one clause")
    return _expand_for_loop(sexp[1][0], sexp[2:], "void")


def _expand_for_fold(sexp: list) -> SExp:
    """``(for/fold ([acc init]) ([i (in-range ...)]) body)``."""
    if len(sexp) < 4 or not isinstance(sexp[1], list) or len(sexp[1]) != 1:
        raise MacroError("for/fold supports exactly one accumulator")
    if not isinstance(sexp[2], list) or len(sexp[2]) != 1:
        raise MacroError("for/fold supports exactly one clause")
    acc_binding = sexp[1][0]
    acc_name, acc_init = acc_binding[0], acc_binding[1]
    var, start, end, step = _parse_range_clause(sexp[2][0])
    loop = gensym("loop")
    pos = gensym("pos")
    start_name = gensym("start")
    end_name = gensym("end")
    test_op = _sym("<") if step > 0 else _sym(">")
    recur = [loop, [_sym("+"), step, pos], _begin(sexp[3:])]
    lam = [
        _LAMBDA,
        [pos, acc_name],
        [
            _sym("cond"),
            [[test_op, pos, end_name], [_sym("define"), var, pos], recur],
            [_sym("else"), acc_name],
        ],
    ]
    return [
        _LET1,
        [start_name, start],
        [
            _LET1,
            [end_name, end],
            [[_LETREC, [[loop, lam]], loop], start_name, acc_init],
        ],
    ]


def _expand_vec_match(sexp: list) -> SExp:
    """``(vec-match v [(x y z) body] [else e])``.

    The "pattern matching on vectors" idiom the paper credits for
    plot's high automatic-verification rate: an explicit length test
    guards constant-index accesses.
    """
    if len(sexp) != 4:
        raise MacroError("vec-match needs a subject and two clauses")
    subject, pat_clause, else_clause = sexp[1], sexp[2], sexp[3]
    if not (isinstance(pat_clause, list) and len(pat_clause) >= 2):
        raise MacroError(f"bad vec-match clause: {pat_clause!r}")
    pattern = pat_clause[0]
    if not (isinstance(else_clause, list) and else_clause[0] == _sym("else")):
        raise MacroError("vec-match needs an else clause")
    vec_name = gensym("vec")
    body = _begin(pat_clause[1:])
    for index in reversed(range(len(pattern))):
        body = [_LET1, [pattern[index], [_sym("vec-ref"), vec_name, index]], body]
    return [
        _LET1,
        [vec_name, subject],
        [
            _IF,
            [_sym("="), [_sym("len"), vec_name], len(pattern)],
            body,
            _begin(else_clause[1:]),
        ],
    ]


_MACROS = {
    "cond": _expand_cond,
    "when": _expand_when,
    "unless": _expand_unless,
    "and": _expand_and,
    "or": _expand_or,
    "let": _expand_let,
    "let*": _expand_let_star,
    "begin": lambda sexp: _begin(sexp[1:]),
    "for/sum": _expand_for_sum,
    "for/product": _expand_for_product,
    "for": _expand_for,
    "for/fold": _expand_for_fold,
    "vec-match": _expand_vec_match,
}
