"""Surface parser: expanded S-expressions → core AST.

Responsibilities beyond shape-checking:

* **α-renaming.**  Every local binder is renamed to a globally unique
  name the first time a name is reused, so the checker and logic never
  have to reason about shadowing (the paper's "standard convention of
  choosing fresh names" in T-Abs, made concrete).
* **Annotation collection.**  Top-level ``(: name : ...)`` declarations
  attach to the following ``define``.
* **Struct registration.**  ``(struct Name (field ...))`` registers
  accessors that parse to :class:`~repro.syntax.ast.StructRefE` — the
  feature the checker reports as unsupported (section 5.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..checker.prims import is_prim_name, resolve_prim_name
from ..sexp.reader import SExp, Symbol, read_all
from ..tr.results import fresh_watermark, reset_fresh_names
from ..tr.parse import TypeSyntaxError, parse_type
from ..tr.types import Type
from .ast import (
    AnnE,
    AppE,
    BoolE,
    Define,
    Expr,
    FstE,
    IfE,
    IntE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    PrimE,
    Program,
    SetE,
    SndE,
    StrE,
    StructRefE,
    VarE,
    VecE,
)
from .macros import MacroError, expand, expand_body

__all__ = ["ParseError", "parse_program", "parse_expr_text"]

_COLON = Symbol(":")
_ARROW = Symbol("->")


class ParseError(SyntaxError):
    """Raised on malformed surface syntax."""


@dataclass
class _Scope:
    """Lexical scope mapping source names to unique names."""

    bindings: Dict[str, str]
    parent: Optional["_Scope"] = None

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def child(self) -> "_Scope":
        return _Scope({}, self)


class _Parser:
    def __init__(self) -> None:
        self._used_names: Set[str] = set()
        self._struct_fields: Dict[str, str] = {}  # accessor -> field name
        self._struct_ctors: Set[str] = set()

    # ------------------------------------------------------------------
    def fresh_binding(self, scope: _Scope, name: str) -> str:
        unique = name
        counter = 1
        while unique in self._used_names:
            unique = f"{name}~{counter}"
            counter += 1
        self._used_names.add(unique)
        scope.bindings[name] = unique
        return unique

    # ------------------------------------------------------------------
    def parse_program(self, forms: Sequence[SExp]) -> Program:
        annotations: Dict[str, Type] = {}
        defines: List[Tuple[str, SExp]] = []
        body_forms: List[SExp] = []
        top = _Scope({})

        for form in forms:
            if _is_form(form, ":"):
                name, ty = self._parse_annotation(form)
                annotations[name] = ty
            elif _is_form(form, "struct"):
                self._register_struct(form)
            elif _is_form(form, "define"):
                name, rhs = self._normalize_define(form)
                defines.append((name, rhs))
                self._used_names.add(name)
                top.bindings[name] = name
            elif _is_form(form, "require") or _is_form(form, "provide"):
                continue
            else:
                body_forms.append(form)

        parsed_defines: List[Define] = []
        for name, rhs in defines:
            expr = self.parse_expr(expand(rhs), top)
            parsed_defines.append(Define(name, expr, annotations.get(name)))
        body = tuple(self.parse_expr(expand(form), top) for form in body_forms)
        return Program(tuple(parsed_defines), body)

    def _parse_annotation(self, form: list) -> Tuple[str, Type]:
        # (: name τ)  or  (: name : dom ... -> rng)
        if len(form) < 3 or not isinstance(form[1], Symbol):
            raise ParseError(f"bad annotation: {form!r}")
        name = form[1].name
        if len(form) == 3:
            return name, parse_type(form[2])
        if form[2] == _COLON:
            return name, parse_type(form[3:] if len(form) > 4 else form[3])
        raise ParseError(f"bad annotation: {form!r}")

    def _normalize_define(self, form: list) -> Tuple[str, SExp]:
        if len(form) < 3:
            raise ParseError(f"bad define: {form!r}")
        target = form[1]
        if isinstance(target, Symbol):
            if len(form) == 3:
                return target.name, form[2]
            raise ParseError(f"bad define: {form!r}")
        if isinstance(target, list) and target and isinstance(target[0], Symbol):
            lam: SExp = [Symbol("λ"), target[1:]] + list(form[2:])
            return target[0].name, lam
        raise ParseError(f"bad define: {form!r}")

    def _register_struct(self, form: list) -> None:
        if len(form) < 3 or not isinstance(form[1], Symbol):
            raise ParseError(f"bad struct: {form!r}")
        struct_name = form[1].name
        fields = form[2]
        if not isinstance(fields, list):
            raise ParseError(f"bad struct fields: {form!r}")
        self._struct_ctors.add(struct_name)
        for field_form in fields:
            field_name = (
                field_form.name if isinstance(field_form, Symbol) else
                field_form[0].name
            )
            self._struct_fields[f"{struct_name}-{field_name}"] = field_name

    # ------------------------------------------------------------------
    def parse_expr(self, sexp: SExp, scope: _Scope) -> Expr:
        if isinstance(sexp, bool):
            return BoolE(sexp)
        if isinstance(sexp, int):
            return IntE(sexp)
        if isinstance(sexp, str):
            return StrE(sexp)
        if isinstance(sexp, Symbol):
            return self._parse_symbol(sexp, scope)
        if isinstance(sexp, list) and sexp:
            return self._parse_compound(sexp, scope)
        raise ParseError(f"cannot parse {sexp!r}")

    def _parse_symbol(self, sym: Symbol, scope: _Scope) -> Expr:
        bound = scope.lookup(sym.name)
        if bound is not None:
            return VarE(bound)
        prim = resolve_prim_name(sym.name)
        if prim is not None:
            return PrimE(prim)
        raise ParseError(f"unbound identifier {sym.name!r}")

    def _parse_compound(self, sexp: list, scope: _Scope) -> Expr:
        head = sexp[0]
        if isinstance(head, Symbol) and scope.lookup(head.name) is None:
            name = head.name
            handler = _SPECIAL_FORMS.get(name)
            if handler is not None:
                return handler(self, sexp, scope)
            if name in self._struct_fields:
                if len(sexp) != 2:
                    raise ParseError(f"bad struct accessor use: {sexp!r}")
                return StructRefE(
                    self.parse_expr(sexp[1], scope), self._struct_fields[name]
                )
            if name in self._struct_ctors:
                return StructRefE(
                    self.parse_expr(sexp[1], scope) if len(sexp) > 1 else BoolE(False),
                    "make",
                )
        fn = self.parse_expr(head, scope)
        args = tuple(self.parse_expr(arg, scope) for arg in sexp[1:])
        return AppE(fn, args)

    # ---------------------------------------------------------- special forms
    def _parse_lambda(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) < 3:
            raise ParseError(f"bad λ: {sexp!r}")
        params_form = sexp[1]
        if not isinstance(params_form, list):
            raise ParseError(f"bad λ parameter list: {params_form!r}")
        inner = scope.child()
        params: List[Tuple[str, Optional[Type]]] = []
        annotations: Dict[str, Type] = {}
        raw: List[Tuple[str, Optional[SExp]]] = []
        for param in params_form:
            if isinstance(param, Symbol):
                raw.append((param.name, None))
            elif (
                isinstance(param, list)
                and len(param) == 3
                and isinstance(param[0], Symbol)
                and param[1] == _COLON
            ):
                raw.append((param[0].name, param[2]))
            else:
                raise ParseError(f"bad λ parameter: {param!r}")
        rename: Dict[str, str] = {}
        for name, ann in raw:
            unique = self.fresh_binding(inner, name)
            rename[name] = unique
        for name, ann in raw:
            ty = None
            if ann is not None:
                try:
                    ty = parse_type(ann)
                except TypeSyntaxError as exc:
                    raise ParseError(str(exc)) from exc
            params.append((rename[name], ty))
        body = self.parse_expr(
            expand(expand_body(sexp[2:])) if len(sexp) > 3 else sexp[2], inner
        )
        return LamE(tuple(params), body)

    def _parse_if(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 4:
            raise ParseError(f"if needs exactly three sub-expressions: {sexp!r}")
        return IfE(
            self.parse_expr(sexp[1], scope),
            self.parse_expr(sexp[2], scope),
            self.parse_expr(sexp[3], scope),
        )

    def _parse_let(self, sexp: list, scope: _Scope) -> Expr:
        # Core let produced by the expander: (let (x rhs) body) or
        # (let (x : τ rhs) body).  Whole let *spines* are parsed by one
        # call — macro towers (`let*`, internal defines, `begin`) lower
        # to chains whose length tracks the source program, and parsing
        # must not recurse once per link.
        spine: List[Tuple[str, Expr]] = []
        current = sexp
        while True:
            if len(current) != 3 or not isinstance(current[1], list):
                raise ParseError(f"bad core let: {current!r}")
            binding = current[1]
            if len(binding) == 2 and isinstance(binding[0], Symbol):
                name_sym, rhs_form = binding
                ann = None
            elif (
                len(binding) == 4
                and isinstance(binding[0], Symbol)
                and binding[1] == _COLON
            ):
                name_sym, ann, rhs_form = binding[0], binding[2], binding[3]
            else:
                raise ParseError(f"bad core let binding: {binding!r}")
            rhs = self.parse_expr(rhs_form, scope)
            if ann is not None:
                rhs = AnnE(rhs, parse_type(ann))
            inner = scope.child()
            unique = self.fresh_binding(inner, name_sym.name)
            spine.append((unique, rhs))
            scope = inner
            body_form = current[2]
            if _is_form(body_form, "let1") and scope.lookup("let1") is None:
                current = body_form
                continue
            body = self.parse_expr(body_form, scope)
            break
        for unique, rhs in reversed(spine):
            body = LetE(unique, rhs, body)
        return body

    def _parse_letrec(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) < 3 or not isinstance(sexp[1], list):
            raise ParseError(f"bad letrec: {sexp!r}")
        inner = scope.child()
        names: List[str] = []
        annotations: List[Optional[Type]] = []
        lam_forms: List[SExp] = []
        for binding in sexp[1]:
            if not (isinstance(binding, list) and len(binding) in (2, 4)):
                raise ParseError(f"bad letrec binding: {binding!r}")
            if len(binding) == 4 and binding[1] == _COLON:
                name_sym, ann_form, rhs = binding[0], binding[2], binding[3]
                annotations.append(parse_type(ann_form))
            else:
                name_sym, rhs = binding
                annotations.append(None)
            if not isinstance(name_sym, Symbol):
                raise ParseError(f"bad letrec binding name: {binding!r}")
            names.append(self.fresh_binding(inner, name_sym.name))
            lam_forms.append(rhs)
        bindings = []
        for name, ann, lam_form in zip(names, annotations, lam_forms):
            lam = self.parse_expr(lam_form, inner)
            if not isinstance(lam, LamE):
                raise ParseError("letrec bindings must be λ expressions")
            bindings.append((name, ann, lam))
        body = self.parse_expr(
            expand(expand_body(sexp[2:])) if len(sexp) > 3 else sexp[2], inner
        )
        return LetRecE(tuple(bindings), body)

    def _parse_cons(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 3:
            raise ParseError(f"cons takes two arguments: {sexp!r}")
        return PairE(self.parse_expr(sexp[1], scope), self.parse_expr(sexp[2], scope))

    def _parse_fst(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 2:
            raise ParseError(f"fst takes one argument: {sexp!r}")
        return FstE(self.parse_expr(sexp[1], scope))

    def _parse_snd(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 2:
            raise ParseError(f"snd takes one argument: {sexp!r}")
        return SndE(self.parse_expr(sexp[1], scope))

    def _parse_vector(self, sexp: list, scope: _Scope) -> Expr:
        return VecE(tuple(self.parse_expr(e, scope) for e in sexp[1:]))

    def _parse_set(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 3 or not isinstance(sexp[1], Symbol):
            raise ParseError(f"bad set!: {sexp!r}")
        bound = scope.lookup(sexp[1].name)
        if bound is None:
            raise ParseError(f"set! of unbound identifier {sexp[1].name!r}")
        return SetE(bound, self.parse_expr(sexp[2], scope))

    def _parse_ann(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 3:
            raise ParseError(f"bad ann: {sexp!r}")
        return AnnE(self.parse_expr(sexp[1], scope), parse_type(sexp[2]))

    def _parse_error(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) < 2:
            raise ParseError("error needs a message")
        message = sexp[1]
        msg_expr = (
            StrE(message) if isinstance(message, str)
            else self.parse_expr(message, scope)
        )
        return AppE(PrimE("error"), (msg_expr,))

    def _parse_struct_ref(self, sexp: list, scope: _Scope) -> Expr:
        if len(sexp) != 3 or not isinstance(sexp[2], Symbol):
            raise ParseError(f"bad struct-ref: {sexp!r}")
        return StructRefE(self.parse_expr(sexp[1], scope), sexp[2].name)


_SPECIAL_FORMS = {
    "λ": _Parser._parse_lambda,
    "lambda": _Parser._parse_lambda,
    "if": _Parser._parse_if,
    "let1": _Parser._parse_let,
    "letrec": _Parser._parse_letrec,
    "cons": _Parser._parse_cons,
    "fst": _Parser._parse_fst,
    "car": _Parser._parse_fst,
    "snd": _Parser._parse_snd,
    "cdr": _Parser._parse_snd,
    "vector": _Parser._parse_vector,
    "vec": _Parser._parse_vector,
    "set!": _Parser._parse_set,
    "ann": _Parser._parse_ann,
    "error": _Parser._parse_error,
    "struct-ref": _Parser._parse_struct_ref,
}


def _is_form(sexp: SExp, name: str) -> bool:
    return (
        isinstance(sexp, list)
        and bool(sexp)
        and isinstance(sexp[0], Symbol)
        and sexp[0].name == name
    )


#: a name the shared fresh-name counter could itself produce
_FRESHLIKE_NAME = re.compile(r"%(\d+)$")


def _max_embedded_index(forms: Sequence[SExp]) -> int:
    """The largest trailing ``%N`` index among the source's symbols.

    Guards the freshness floor against *user-written* names that look
    like generated ones (the reader does accept ``%`` in symbols).
    """
    best = -1
    stack: List[SExp] = list(forms)
    while stack:
        item = stack.pop()
        if isinstance(item, list):
            stack.extend(item)
        elif isinstance(item, Symbol):
            match = _FRESHLIKE_NAME.search(item.name)
            if match:
                best = max(best, int(match.group(1)))
    return best


def parse_program(source) -> Program:
    """Parse a whole module from text or a list of S-expressions.

    The shared fresh-name counter restarts at 0 so the generated names
    embedded in the program (macro gensyms, unnamed type arguments)
    are deterministic per source, and the returned program carries a
    ``fresh_floor`` exceeding every ``%``-name it contains — the
    checker restarts the counter there (see
    :func:`repro.tr.results.reset_fresh_names`).
    """
    forms = read_all(source) if isinstance(source, str) else list(source)
    reset_fresh_names()
    try:
        program = _Parser().parse_program(forms)
    except (MacroError, TypeSyntaxError) as exc:
        raise ParseError(str(exc)) from exc
    floor = max(fresh_watermark(), _max_embedded_index(forms) + 1)
    return Program(program.defines, program.body, floor)


def parse_expr_text(text: str) -> Expr:
    """Parse a single expression (convenience for tests/examples)."""
    program = parse_program(text)
    if program.defines or len(program.body) != 1:
        raise ParseError("expected exactly one expression")
    return program.body[0]
