"""Surface syntax: AST, macro expander, α-renaming parser."""

from .parser import ParseError, parse_expr_text, parse_program

__all__ = ["ParseError", "parse_program", "parse_expr_text"]
