"""Core (post-expansion) abstract syntax for λRTR programs.

This is the expression grammar of Figure 2 extended with the forms the
paper's implementation needs: n-ary functions, vectors, ``letrec``
(the residue of Racket's iteration macros, section 4.4), ``set!``
(section 4.2's mutation), type ascription, and structs (a feature RTR
recognises but the checker deliberately reports as unsupported —
mirroring the "Unimplemented features" category of section 5.1).

All expressions carry an optional source location for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..tr.types import Type

__all__ = [
    "Expr",
    "VarE",
    "IntE",
    "BoolE",
    "StrE",
    "PrimE",
    "LamE",
    "AppE",
    "IfE",
    "LetE",
    "LetRecE",
    "PairE",
    "FstE",
    "SndE",
    "VecE",
    "SetE",
    "AnnE",
    "StructRefE",
    "Define",
    "Program",
]


@dataclass(frozen=True)
class Expr:
    """Base class; ``loc`` is a (line, column) pair when known."""

    __slots__ = ()


@dataclass(frozen=True)
class VarE(Expr):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntE(Expr):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolE(Expr):
    value: bool

    def __repr__(self) -> str:
        return "#t" if self.value else "#f"


@dataclass(frozen=True)
class StrE(Expr):
    value: str

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class PrimE(Expr):
    """A reference to a primitive operation from the Δ table."""

    name: str

    def __repr__(self) -> str:
        return f"#%{self.name}"


@dataclass(frozen=True)
class LamE(Expr):
    """``(λ ([x : τ] ...) body)``; annotations may be ``None`` (inferred)."""

    params: Tuple[Tuple[str, Optional[Type]], ...]
    body: Expr

    def param_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.params)

    def __repr__(self) -> str:
        params = " ".join(
            f"[{n} : {t!r}]" if t is not None else n for n, t in self.params
        )
        return f"(λ ({params}) {self.body!r})"


@dataclass(frozen=True)
class AppE(Expr):
    fn: Expr
    args: Tuple[Expr, ...]

    def __repr__(self) -> str:
        return "(" + " ".join(repr(e) for e in (self.fn,) + self.args) + ")"


@dataclass(frozen=True)
class IfE(Expr):
    test: Expr
    then: Expr
    els: Expr

    def __repr__(self) -> str:
        return f"(if {self.test!r} {self.then!r} {self.els!r})"


@dataclass(frozen=True)
class LetE(Expr):
    name: str
    rhs: Expr
    body: Expr

    def __repr__(self) -> str:
        return f"(let ({self.name} {self.rhs!r}) {self.body!r})"


@dataclass(frozen=True)
class LetRecE(Expr):
    """``(letrec ([f e] ...) body)`` — bindings must be lambdas.

    The optional annotation per binding comes from a surrounding
    ``(: f : ...)`` declaration or an inline ascription; un-annotated
    bindings go through the section 4.4 inference heuristic.
    """

    bindings: Tuple[Tuple[str, Optional[Type], LamE], ...]
    body: Expr

    def __repr__(self) -> str:
        bindings = " ".join(f"[{n} {l!r}]" for n, _, l in self.bindings)
        return f"(letrec ({bindings}) {self.body!r})"


@dataclass(frozen=True)
class PairE(Expr):
    fst: Expr
    snd: Expr

    def __repr__(self) -> str:
        return f"(cons {self.fst!r} {self.snd!r})"


@dataclass(frozen=True)
class FstE(Expr):
    pair: Expr

    def __repr__(self) -> str:
        return f"(fst {self.pair!r})"


@dataclass(frozen=True)
class SndE(Expr):
    pair: Expr

    def __repr__(self) -> str:
        return f"(snd {self.pair!r})"


@dataclass(frozen=True)
class VecE(Expr):
    """A vector literal ``(vector e ...)`` — length statically known."""

    elems: Tuple[Expr, ...]

    def __repr__(self) -> str:
        return "(vector " + " ".join(repr(e) for e in self.elems) + ")"


@dataclass(frozen=True)
class SetE(Expr):
    """``(set! x e)`` — the conservative mutation story of section 4.2."""

    name: str
    rhs: Expr

    def __repr__(self) -> str:
        return f"(set! {self.name} {self.rhs!r})"


@dataclass(frozen=True)
class AnnE(Expr):
    """``(ann e τ)`` — type ascription."""

    expr: Expr
    type: Type

    def __repr__(self) -> str:
        return f"(ann {self.expr!r} {self.type!r})"


@dataclass(frozen=True)
class StructRefE(Expr):
    """A dependent struct-field access — recognised but unsupported.

    Section 5.1: "6% of the unverified accesses involved Racket
    features we had neglected to support (e.g. dependent record
    fields)".  The checker raises ``UnsupportedFeature`` on this node.
    """

    expr: Expr
    field_name: str

    def __repr__(self) -> str:
        return f"(struct-ref {self.expr!r} {self.field_name})"


@dataclass(frozen=True)
class Define:
    """A top-level ``(define name expr)`` with optional annotation."""

    name: str
    expr: Expr
    annotation: Optional[Type] = None


@dataclass(frozen=True)
class Program:
    """A module: top-level definitions followed by expressions.

    ``fresh_floor`` is the parser's freshness watermark: an index
    strictly greater than every ``%``-suffixed name occurring in the
    program (macro gensyms, unnamed type arguments, or user-written).
    The checker restarts the fresh-name counter there, which makes
    check-time names both deterministic per program (cache hits across
    re-checks) and capture-free against embedded names.
    """

    defines: Tuple[Define, ...]
    body: Tuple[Expr, ...]
    fresh_floor: int = 0
