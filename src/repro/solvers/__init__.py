"""Solver backends: Fourier-Motzkin, DPLL SAT, bit-blasting."""
