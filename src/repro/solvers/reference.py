"""The legacy solver cores: Fourier-Motzkin elimination and DPLL.

These are the paper-faithful naive decision procedures the repository
started with — "a simple implementation of Fourier-Motzkin elimination
as a lightweight solver" (section 2.1, citing Dantzig & Eaves) and a
textbook recursive DPLL for the bit-blasted bitvector theory.  Since
the fast cores landed (:mod:`repro.solvers.simplex`,
:mod:`repro.solvers.cdcl`) they serve two jobs:

* the ``legacy`` half of the ``solver_backend`` knob
  (:mod:`repro.solvers.backend`) — a fallback that keeps the whole
  pipeline runnable on the original cores;
* the *reference oracle* for differential testing: the fuzz runner's
  ``--solver-oracle`` mode and the solver property tests check that
  the fast cores agree with these on every verdict.

Both procedures are *sound for refutation*: UNSAT answers are always
correct over the integers/booleans, while SAT answers may be
over-approximate (rational-only for FM) — the conservative direction,
since the type checker only acts on UNSAT.  Work bounds turn
pathological queries into :data:`~repro.solvers.linform.UNKNOWN` /
:class:`ResourceWarning`, which callers treat as "not proved".
"""

from __future__ import annotations

import gc
from typing import Dict, Iterable, List, Optional, Sequence

from .linform import SAT, UNKNOWN, UNSAT, Atom, Constraint

__all__ = ["fm_satisfiable", "fm_entails", "dpll_solve"]


# ======================================================================
# Fourier-Motzkin elimination (the legacy linear-arithmetic core)
# ======================================================================
def _combine(lower: Constraint, upper: Constraint, atom: Atom) -> Constraint:
    """Eliminate ``atom`` from a lower bound (coeff < 0) and an upper
    bound (coeff > 0) by taking the positive combination that cancels it."""
    lo = lower.coeff_map()
    up = upper.coeff_map()
    a = -lo[atom]  # positive
    b = up[atom]  # positive
    combined: Dict[Atom, int] = {}
    for key, coeff in lo.items():
        combined[key] = combined.get(key, 0) + b * coeff
    for key, coeff in up.items():
        combined[key] = combined.get(key, 0) + a * coeff
    const = b * lower.const + a * upper.const
    combined.pop(atom, None)
    return Constraint.make(combined, const).normalized()


def _choose_atom(constraints: Sequence[Constraint]) -> Optional[Atom]:
    """Pick the elimination variable minimising the FM product bound."""
    uppers: Dict[Atom, int] = {}
    lowers: Dict[Atom, int] = {}
    for con in constraints:
        for atom, coeff in con.coeffs:
            if coeff > 0:
                uppers[atom] = uppers.get(atom, 0) + 1
            else:
                lowers[atom] = lowers.get(atom, 0) + 1
    atoms = set(uppers) | set(lowers)
    if not atoms:
        return None

    def cost(atom: Atom) -> int:
        return uppers.get(atom, 0) * lowers.get(atom, 0)

    return min(atoms, key=lambda a: (cost(a), repr(a)))


def fm_satisfiable(
    constraints: Iterable[Constraint], max_constraints: int = 6000
) -> str:
    """Decide a conjunction of constraints by Fourier-Motzkin elimination.

    Returns :data:`UNSAT`, :data:`SAT` (rationally satisfiable, almost
    always integer-satisfiable for checker-shaped queries) or
    :data:`UNKNOWN` if the work bound was exceeded.
    """
    work: List[Constraint] = []
    seen: set = set()
    for con in constraints:
        norm = con.normalized()
        if norm.is_contradiction():
            return UNSAT
        if norm.is_trivial() or norm in seen:
            continue
        seen.add(norm)
        work.append(norm)

    # Elimination churns through cycle-free constraint combinations;
    # pause the cyclic collector as the SAT core does so heavy queries
    # do not spend their time in generation-0 scans.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _eliminate(work, max_constraints)
    finally:
        if gc_was_enabled:
            gc.enable()


def _eliminate(work: List[Constraint], max_constraints: int) -> str:
    while True:
        atom = _choose_atom(work)
        if atom is None:
            return SAT
        uppers = [c for c in work if c.coeff_map().get(atom, 0) > 0]
        lowers = [c for c in work if c.coeff_map().get(atom, 0) < 0]
        rest = [c for c in work if atom not in c.coeff_map()]
        if len(rest) + len(uppers) * len(lowers) > max_constraints:
            return UNKNOWN
        new_work: List[Constraint] = list(rest)
        new_seen = set(rest)
        for lo in lowers:
            for up in uppers:
                combined = _combine(lo, up, atom)
                if combined.is_contradiction():
                    return UNSAT
                if combined.is_trivial() or combined in new_seen:
                    continue
                new_seen.add(combined)
                new_work.append(combined)
        work = new_work


def fm_entails(
    assumptions: Iterable[Constraint], goal: Constraint, max_constraints: int = 6000
) -> bool:
    """Does the conjunction of ``assumptions`` entail ``goal``?

    Checked by refutation: ``assumptions ∧ ¬goal`` must be UNSAT, where
    ``¬(e ≤ 0)`` is ``1 - e ≤ 0`` over the integers.
    """
    verdict = fm_satisfiable(
        list(assumptions) + [goal.negated()], max_constraints
    )
    return verdict == UNSAT


# ======================================================================
# recursive DPLL (the legacy SAT core)
# ======================================================================
def _unit_propagate(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Optional[List[List[int]]]:
    """Simplify ``clauses`` under ``assignment``, propagating all units.

    Returns the residual clause list, or ``None`` on conflict.
    Mutates ``assignment`` with propagated literals.
    """
    work = clauses
    while True:
        new_clauses: List[List[int]] = []
        units: List[int] = []
        for clause in work:
            resolved = False
            residual: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        resolved = True
                        break
                else:
                    residual.append(lit)
            if resolved:
                continue
            if not residual:
                return None  # conflict: clause falsified
            if len(residual) == 1:
                units.append(residual[0])
            new_clauses.append(residual)
        if not units:
            return new_clauses
        for lit in units:
            var = abs(lit)
            value = lit > 0
            if var in assignment:
                if assignment[var] != value:
                    return None
            else:
                assignment[var] = value
        work = new_clauses


def _choose_literal(clauses: Sequence[Sequence[int]]) -> int:
    """Branch on the most frequent literal in the shortest clauses."""
    best_len = min(len(c) for c in clauses)
    counts: Dict[int, int] = {}
    for clause in clauses:
        if len(clause) == best_len:
            for lit in clause:
                counts[lit] = counts.get(lit, 0) + 1
    return max(counts, key=lambda l: (counts[l], -abs(l)))


def dpll_solve(cnf: Iterable[Iterable[int]], max_conflicts: int = 200_000):
    """Decide ``cnf`` by recursive DPLL with unit propagation.

    Returns ``(sat, model, conflicts)``.  Raises :class:`ResourceWarning`
    as an exception if the conflict budget is exhausted — callers that
    use SAT for *refutation* must treat that as "not proved", never as
    UNSAT.
    """
    clauses = [list(dict.fromkeys(c)) for c in cnf]
    for clause in clauses:
        if any(-lit in clause for lit in clause):
            clause.clear()
            clause.append(0)  # tautology marker
    clauses = [c for c in clauses if c != [0]]

    conflicts = [0]

    def dpll(clauses: List[List[int]], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        simplified = _unit_propagate(clauses, assignment)
        if simplified is None:
            conflicts[0] += 1
            if conflicts[0] > max_conflicts:
                raise ResourceWarning("SAT conflict budget exhausted")
            return None
        if not simplified:
            return assignment
        lit = _choose_literal(simplified)
        for choice in (lit, -lit):
            trail = dict(assignment)
            trail[abs(choice)] = choice > 0
            model = dpll(simplified, trail)
            if model is not None:
                return model
        return None

    # The search allocates millions of short-lived, cycle-free lists;
    # pausing the cyclic collector for its duration removes constant
    # generation-0 scans (refcounting reclaims everything regardless)
    # and makes solve time independent of how large the rest of the
    # process heap has grown.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        model = dpll(clauses, {})
    finally:
        if gc_was_enabled:
            gc.enable()
    if model is None:
        return False, None, conflicts[0]
    return True, model, conflicts[0]
