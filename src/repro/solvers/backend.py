"""The ``solver_backend`` knob: which cores decide theory queries.

Two backends share byte-compatible solver APIs
(:class:`~repro.solvers.linear.IncrementalConstraintSet`,
:class:`~repro.solvers.sat.IncrementalSatSolver`):

* ``fast``   — the industrial-strength cores: an incremental dual
  simplex over exact rationals (:mod:`repro.solvers.simplex`) and a
  CDCL SAT solver with watched literals, clause learning, VSIDS and
  Luby restarts (:mod:`repro.solvers.cdcl`).  The default.
* ``legacy`` — the paper-faithful naive cores: Fourier-Motzkin
  elimination and recursive DPLL (:mod:`repro.solvers.reference`).
  Kept in-tree as the differential-fuzzing oracle for the fast cores
  (``repro fuzz --solver-oracle``) and as a fallback.

The process default comes from ``REPRO_SOLVER_BACKEND`` (read once,
lazily); individual theories and solver facades accept an explicit
``backend=`` argument that overrides it.  Both backends are sound for
refutation, so verdicts must agree — the fuzz oracle and the pinned
corpus test in CI pin that down.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "FAST",
    "LEGACY",
    "BACKENDS",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "using_backend",
]

FAST = "fast"
LEGACY = "legacy"
BACKENDS = (FAST, LEGACY)

_default: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown solver backend {name!r} (expected one of {BACKENDS})"
        )
    return name


def default_backend() -> str:
    """The process-wide backend: ``REPRO_SOLVER_BACKEND`` or ``fast``."""
    global _default
    if _default is None:
        _default = _validate(os.environ.get("REPRO_SOLVER_BACKEND", FAST))
    return _default


def set_default_backend(name: str) -> str:
    """Override the process default; returns the previous value."""
    global _default
    previous = default_backend()
    _default = _validate(name)
    return previous


def resolve_backend(backend: Optional[str]) -> str:
    """An explicit backend, or the process default when ``None``."""
    if backend is None:
        return default_backend()
    return _validate(backend)


@contextmanager
def using_backend(name: str) -> Iterator[str]:
    """Temporarily switch the process default (tests, the fuzz oracle)."""
    previous = set_default_backend(name)
    try:
        yield name
    finally:
        set_default_backend(previous)
