"""The shared linear-constraint representation and solver verdicts.

Both linear-arithmetic cores — the legacy Fourier-Motzkin eliminator
(:mod:`repro.solvers.reference`) and the incremental dual simplex
(:mod:`repro.solvers.simplex`) — speak this one representation, which
is what makes them drop-in interchangeable behind
:class:`~repro.solvers.linear.IncrementalConstraintSet`.

Constraints are kept in the homogeneous form ``Σ aᵢ·xᵢ + c ≤ 0`` over
opaque hashable atom keys, with integer coefficients.  GCD
normalisation (dividing by the coefficient GCD and flooring the
constant) strengthens the rational form with integer reasoning — e.g.
``2x ≤ 1`` becomes ``x ≤ 0`` — and both cores apply it to every
constraint they ingest, so their integer tightening agrees at the
single-constraint level.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor, gcd
from typing import Dict, Hashable, Tuple

__all__ = ["Atom", "Constraint", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

Atom = Hashable


@dataclass(frozen=True)
class Constraint:
    """``Σ coeffs[x]·x + const ≤ 0`` with non-zero integer coefficients."""

    coeffs: Tuple[Tuple[Atom, int], ...]
    const: int

    @staticmethod
    def make(coeffs: Dict[Atom, int], const: int) -> "Constraint":
        items = tuple(sorted(((a, c) for a, c in coeffs.items() if c != 0), key=lambda t: repr(t[0])))
        return Constraint(items, const)

    def coeff_map(self) -> Dict[Atom, int]:
        return dict(self.coeffs)

    def is_trivial(self) -> bool:
        return not self.coeffs and self.const <= 0

    def is_contradiction(self) -> bool:
        return not self.coeffs and self.const > 0

    def negated(self) -> "Constraint":
        """``¬(e ≤ 0)`` over the integers: ``1 - e ≤ 0``."""
        return Constraint.make(
            {atom: -coeff for atom, coeff in self.coeffs}, 1 - self.const
        )

    def normalized(self) -> "Constraint":
        """Divide by the GCD of the coefficients, tightening the constant.

        ``Σ aᵢxᵢ ≤ -c`` with g = gcd(aᵢ) becomes ``Σ (aᵢ/g)xᵢ ≤
        ⌊-c/g⌋`` over the integers.
        """
        if not self.coeffs:
            return self
        g = 0
        for _, coeff in self.coeffs:
            g = gcd(g, abs(coeff))
        if g <= 1:
            return self
        new_coeffs = tuple((atom, coeff // g) for atom, coeff in self.coeffs)
        # Σ a/g x ≤ floor(-c / g)  ⟹  Σ a/g x + (-floor(-c/g)) ≤ 0
        new_const = -floor(-self.const / g)
        return Constraint(new_coeffs, new_const)
