"""Propositional SAT solving — the backend-dispatching facade.

This is the propositional engine underneath the bitvector theory
(:mod:`repro.solvers.bitblast`): where the paper's implementation
leverages Z3's bitvector reasoning, this reproduction bit-blasts to CNF
and refutes with a SAT solver, keeping the whole pipeline
self-contained.

CNF follows the DIMACS convention: variables are positive integers,
literals are non-zero integers (negative = negated), a clause is a
sequence of literals and a formula is a list of clauses.

The public surface (:func:`solve`, :func:`is_satisfiable`,
:class:`IncrementalSatSolver`) is unchanged; the deciding core is
selected by the ``solver_backend`` knob (:mod:`repro.solvers.backend`):

* ``fast`` (default): the CDCL engine of :mod:`repro.solvers.cdcl`.
  :class:`IncrementalSatSolver` maps ``push``/``pop`` to *selector
  literals* — clauses added inside a pushed frame are guarded by that
  frame's selector, queries solve under the active selectors as
  assumptions, and ``pop`` retires a selector with a permanent unit.
  The engine object persists across queries, so learned clauses are
  reused across a whole ``check_many`` batch instead of restarting the
  search per goal.
* ``legacy``: the original recursive DPLL, now living in
  :mod:`repro.solvers.reference` as the differential-testing oracle;
  ``push``/``pop`` is clause-list truncation and every query re-solves
  from scratch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .backend import FAST, resolve_backend
from .cdcl import CDCL
from .reference import dpll_solve

__all__ = ["CNF", "IncrementalSatSolver", "SatResult", "solve", "is_satisfiable"]

CNF = List[List[int]]

#: Selector variables for push/pop frames live far above any variable
#: the bit-blaster allocates, so the two ranges can both keep growing.
_SELECTOR_BASE = 1_000_000_000


class SatResult:
    """Outcome of a SAT call: ``sat`` flag plus a model when satisfiable."""

    __slots__ = ("sat", "model", "conflicts")

    def __init__(self, sat: bool, model: Optional[Dict[int, bool]] = None, conflicts: int = 0):
        self.sat = sat
        self.model = model
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.sat

    def __repr__(self) -> str:
        return f"SatResult(sat={self.sat}, conflicts={self.conflicts})"


def solve(
    cnf: Iterable[Iterable[int]],
    max_conflicts: int = 200_000,
    backend: Optional[str] = None,
) -> SatResult:
    """Decide ``cnf`` with the selected backend core.

    Raises :class:`ResourceWarning` as an exception if the conflict
    budget is exhausted — callers that use SAT for *refutation* must
    treat that as "not proved", never as UNSAT.
    """
    if resolve_backend(backend) == FAST:
        engine = CDCL()
        engine.add_clauses(cnf)
        sat, model = engine.solve(max_conflicts=max_conflicts)
        return SatResult(sat, model, engine.conflicts)
    sat, model, conflicts = dpll_solve(cnf, max_conflicts)
    return SatResult(sat, model, conflicts)


def is_satisfiable(
    cnf: Iterable[Iterable[int]], backend: Optional[str] = None
) -> bool:
    return solve(cnf, backend=backend).sat


class IncrementalSatSolver:
    """A push/pop clause stack over the selected SAT core.

    The incremental discipline the bitvector theory context uses: the
    (large) environment encoding is asserted once, then each goal is
    checked under a ``push``/``pop`` bracket holding only the negated
    goal.  Satisfiability answers are memoised per content generation,
    so re-checking an unchanged stack is free.

    Under ``fast`` the incrementality is real solver incrementality:
    one persistent CDCL engine, frames as assumption selectors, learned
    clauses surviving across queries.  Under ``legacy`` it is the
    *translation* that is incremental (the clause list), and DPLL
    restarts per query.
    """

    __slots__ = (
        "_clauses",
        "_marks",
        "_memo",
        "max_conflicts",
        "_backend",
        "_engine",
        "_selectors",
        "_next_selector",
        "_shared_counters",
        "_flush_base",
    )

    def __init__(
        self, max_conflicts: int = 200_000, backend: Optional[str] = None
    ) -> None:
        self._clauses: CNF = []
        self._marks: List[int] = []
        self._memo: Optional[bool] = None
        self.max_conflicts = max_conflicts
        self._backend = resolve_backend(backend)
        self._engine: Optional[CDCL] = (
            CDCL() if self._backend == FAST else None
        )
        #: one active selector per pushed frame (parallel to ``_marks``)
        self._selectors: List[int] = []
        self._next_selector = _SELECTOR_BASE
        #: shared counter dict (``EngineStats.solver_counters``) and the
        #: engine-counter snapshot already flushed into it
        self._shared_counters: Optional[Dict[str, int]] = None
        self._flush_base: Dict[str, int] = {}

    @property
    def backend(self) -> str:
        return self._backend

    def __len__(self) -> int:
        return len(self._clauses)

    # ------------------------------------------------------------------
    # counter plumbing
    # ------------------------------------------------------------------
    def bind_counters(self, shared: Optional[Dict[str, int]]) -> None:
        """Flush per-core work counters into ``shared`` after each query."""
        self._shared_counters = shared

    def _flush(self) -> None:
        if self._shared_counters is None or self._engine is None:
            return
        snapshot = self._engine.counters()
        base = self._flush_base
        shared = self._shared_counters
        for key, value in snapshot.items():
            delta = value - base.get(key, 0)
            if delta:
                shared[key] = shared.get(key, 0) + delta
        self._flush_base = snapshot

    # ------------------------------------------------------------------
    def add_clause(self, clause: Sequence[int]) -> None:
        self._clauses.append(list(clause))
        self._memo = None
        if self._engine is not None:
            if self._selectors:
                # Guarded: active only while this frame's selector is
                # assumed true; pop retires it with a permanent unit.
                self._engine.add_clause([-self._selectors[-1], *clause])
            else:
                self._engine.add_clause(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        # References are stored as-is: both cores copy clauses on
        # ingest, and push/pop only truncates this list.
        if self._engine is None:
            self._clauses.extend(clauses)
            self._memo = None
            return
        for clause in clauses:
            self.add_clause(clause)

    def push(self) -> None:
        self._marks.append(len(self._clauses))
        if self._engine is not None:
            self._next_selector += 1
            self._selectors.append(self._next_selector)

    def pop(self) -> None:
        mark = self._marks.pop()
        if len(self._clauses) != mark:
            del self._clauses[mark:]
            self._memo = None
        if self._engine is not None:
            selector = self._selectors.pop()
            # Permanently deactivate the frame's guarded clauses.
            self._engine.add_clause([-selector])

    def check_sat(self) -> bool:
        """Is the clause stack satisfiable?

        Resource exhaustion reports *satisfiable* (cannot refute), the
        sound direction for refutation-based callers.
        """
        if self._memo is None:
            try:
                if self._engine is not None:
                    sat, _model = self._engine.solve(
                        assumptions=self._selectors,
                        max_conflicts=self.max_conflicts,
                    )
                    self._memo = sat
                else:
                    sat, _model, _ = dpll_solve(
                        self._clauses, self.max_conflicts
                    )
                    self._memo = sat
            except ResourceWarning:
                return True  # not memoised: a retry may get luckier
            finally:
                self._flush()
        return self._memo

    def check_many(
        self, extra_clause_sets: Iterable[Iterable[Sequence[int]]]
    ) -> List[bool]:
        """Satisfiability under several alternative clause augmentations.

        Each element of ``extra_clause_sets`` is speculatively asserted
        inside a ``push``/``pop`` bracket over the *same* fixed clause
        prefix — the multi-goal shape of the bitvector theory's batched
        dispatch, where one bit-blasted ``[[Γ]]_T`` serves every goal in
        the batch without being copied or re-encoded.  Under ``fast``
        each bracket is a fresh selector on the same persistent engine,
        so conflict clauses learned on one goal prune the search for
        every later goal in the batch.
        """
        results: List[bool] = []
        for extra in extra_clause_sets:
            self.push()
            self.add_clauses(extra)
            results.append(self.check_sat())
            self.pop()
        return results

    def clone(self) -> "IncrementalSatSolver":
        """An independent solver with the same clause stack.

        Under ``fast`` the clause frames are replayed into a fresh
        engine — learned clauses are a cache and are not carried over.
        """
        dup = IncrementalSatSolver(self.max_conflicts, backend=self._backend)
        start = 0
        for mark in self._marks:
            for clause in self._clauses[start:mark]:
                dup.add_clause(clause)
            dup.push()
            start = mark
        for clause in self._clauses[start:]:
            dup.add_clause(clause)
        dup._memo = self._memo
        dup._shared_counters = self._shared_counters
        return dup
