"""A small DPLL SAT solver (unit propagation + branching heuristic).

This is the propositional engine underneath the bitvector theory
(:mod:`repro.solvers.bitblast`): where the paper's implementation
leverages Z3's bitvector reasoning, this reproduction bit-blasts to CNF
and refutes with DPLL, keeping the whole pipeline self-contained.

CNF follows the DIMACS convention: variables are positive integers,
literals are non-zero integers (negative = negated), a clause is a
sequence of literals and a formula is a list of clauses.
"""

from __future__ import annotations

import gc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CNF", "IncrementalSatSolver", "SatResult", "solve", "is_satisfiable"]

CNF = List[List[int]]


class SatResult:
    """Outcome of a SAT call: ``sat`` flag plus a model when satisfiable."""

    __slots__ = ("sat", "model", "conflicts")

    def __init__(self, sat: bool, model: Optional[Dict[int, bool]] = None, conflicts: int = 0):
        self.sat = sat
        self.model = model
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.sat

    def __repr__(self) -> str:
        return f"SatResult(sat={self.sat}, conflicts={self.conflicts})"


def _unit_propagate(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Optional[List[List[int]]]:
    """Simplify ``clauses`` under ``assignment``, propagating all units.

    Returns the residual clause list, or ``None`` on conflict.
    Mutates ``assignment`` with propagated literals.
    """
    work = clauses
    while True:
        new_clauses: List[List[int]] = []
        units: List[int] = []
        for clause in work:
            resolved = False
            residual: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        resolved = True
                        break
                else:
                    residual.append(lit)
            if resolved:
                continue
            if not residual:
                return None  # conflict: clause falsified
            if len(residual) == 1:
                units.append(residual[0])
            new_clauses.append(residual)
        if not units:
            return new_clauses
        for lit in units:
            var = abs(lit)
            value = lit > 0
            if var in assignment:
                if assignment[var] != value:
                    return None
            else:
                assignment[var] = value
        work = new_clauses


def _choose_literal(clauses: Sequence[Sequence[int]]) -> int:
    """Branch on the most frequent literal in the shortest clauses."""
    best_len = min(len(c) for c in clauses)
    counts: Dict[int, int] = {}
    for clause in clauses:
        if len(clause) == best_len:
            for lit in clause:
                counts[lit] = counts.get(lit, 0) + 1
    return max(counts, key=lambda l: (counts[l], -abs(l)))


def solve(cnf: Iterable[Iterable[int]], max_conflicts: int = 200_000) -> SatResult:
    """Decide ``cnf`` by recursive DPLL with unit propagation.

    Raises :class:`ResourceWarning` as an exception if the conflict
    budget is exhausted — callers that use SAT for *refutation* must
    treat that as "not proved", never as UNSAT.
    """
    clauses = [list(dict.fromkeys(c)) for c in cnf]
    for clause in clauses:
        if any(-lit in clause for lit in clause):
            clause.clear()
            clause.append(0)  # tautology marker
    clauses = [c for c in clauses if c != [0]]

    conflicts = [0]

    def dpll(clauses: List[List[int]], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        simplified = _unit_propagate(clauses, assignment)
        if simplified is None:
            conflicts[0] += 1
            if conflicts[0] > max_conflicts:
                raise ResourceWarning("SAT conflict budget exhausted")
            return None
        if not simplified:
            return assignment
        lit = _choose_literal(simplified)
        for choice in (lit, -lit):
            trail = dict(assignment)
            trail[abs(choice)] = choice > 0
            model = dpll(simplified, trail)
            if model is not None:
                return model
        return None

    # The search allocates millions of short-lived, cycle-free lists;
    # pausing the cyclic collector for its duration removes constant
    # generation-0 scans (refcounting reclaims everything regardless)
    # and makes solve time independent of how large the rest of the
    # process heap has grown.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        model = dpll(clauses, {})
    finally:
        if gc_was_enabled:
            gc.enable()
    if model is None:
        return SatResult(False, None, conflicts[0])
    return SatResult(True, model, conflicts[0])


def is_satisfiable(cnf: Iterable[Iterable[int]]) -> bool:
    return solve(cnf).sat


class IncrementalSatSolver:
    """A push/pop clause stack over the DPLL core.

    The incremental discipline the bitvector theory context uses: the
    (large) environment encoding is asserted once, then each goal is
    checked under a ``push``/``pop`` bracket holding only the negated
    goal.  Satisfiability answers are memoised per content generation,
    so re-checking an unchanged stack is free.  The DPLL search itself
    restarts per query — it is the *translation* that is incremental,
    which is where the engine's time went.
    """

    __slots__ = ("_clauses", "_marks", "_memo", "max_conflicts")

    def __init__(self, max_conflicts: int = 200_000) -> None:
        self._clauses: CNF = []
        self._marks: List[int] = []
        self._memo: Optional[bool] = None
        self.max_conflicts = max_conflicts

    def __len__(self) -> int:
        return len(self._clauses)

    def add_clause(self, clause: Sequence[int]) -> None:
        self._clauses.append(list(clause))
        self._memo = None

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        # References are stored as-is: the DPLL core copies clauses
        # before simplifying, and push/pop only truncates this list.
        self._clauses.extend(clauses)
        self._memo = None

    def push(self) -> None:
        self._marks.append(len(self._clauses))

    def pop(self) -> None:
        mark = self._marks.pop()
        if len(self._clauses) != mark:
            del self._clauses[mark:]
            self._memo = None

    def check_sat(self) -> bool:
        """Is the clause stack satisfiable?

        Resource exhaustion reports *satisfiable* (cannot refute), the
        sound direction for refutation-based callers.
        """
        if self._memo is None:
            try:
                self._memo = solve(self._clauses, self.max_conflicts).sat
            except ResourceWarning:
                return True  # not memoised: a retry may get luckier
        return self._memo

    def check_many(
        self, extra_clause_sets: Iterable[Iterable[Sequence[int]]]
    ) -> List[bool]:
        """Satisfiability under several alternative clause augmentations.

        Each element of ``extra_clause_sets`` is speculatively asserted
        inside a ``push``/``pop`` bracket over the *same* fixed clause
        prefix — the multi-goal shape of the bitvector theory's batched
        dispatch, where one bit-blasted ``[[Γ]]_T`` serves every goal in
        the batch without being copied or re-encoded.
        """
        results: List[bool] = []
        for extra in extra_clause_sets:
            self.push()
            self.add_clauses(extra)
            results.append(self.check_sat())
            self.pop()
        return results

    def clone(self) -> "IncrementalSatSolver":
        dup = IncrementalSatSolver(self.max_conflicts)
        dup._clauses = [list(c) for c in self._clauses]
        dup._marks = list(self._marks)
        dup._memo = self._memo
        return dup
