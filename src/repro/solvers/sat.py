"""A small DPLL SAT solver (unit propagation + branching heuristic).

This is the propositional engine underneath the bitvector theory
(:mod:`repro.solvers.bitblast`): where the paper's implementation
leverages Z3's bitvector reasoning, this reproduction bit-blasts to CNF
and refutes with DPLL, keeping the whole pipeline self-contained.

CNF follows the DIMACS convention: variables are positive integers,
literals are non-zero integers (negative = negated), a clause is a
sequence of literals and a formula is a list of clauses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CNF", "SatResult", "solve", "is_satisfiable"]

CNF = List[List[int]]


class SatResult:
    """Outcome of a SAT call: ``sat`` flag plus a model when satisfiable."""

    __slots__ = ("sat", "model", "conflicts")

    def __init__(self, sat: bool, model: Optional[Dict[int, bool]] = None, conflicts: int = 0):
        self.sat = sat
        self.model = model
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.sat

    def __repr__(self) -> str:
        return f"SatResult(sat={self.sat}, conflicts={self.conflicts})"


def _unit_propagate(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Optional[List[List[int]]]:
    """Simplify ``clauses`` under ``assignment``, propagating all units.

    Returns the residual clause list, or ``None`` on conflict.
    Mutates ``assignment`` with propagated literals.
    """
    work = clauses
    while True:
        new_clauses: List[List[int]] = []
        units: List[int] = []
        for clause in work:
            resolved = False
            residual: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        resolved = True
                        break
                else:
                    residual.append(lit)
            if resolved:
                continue
            if not residual:
                return None  # conflict: clause falsified
            if len(residual) == 1:
                units.append(residual[0])
            new_clauses.append(residual)
        if not units:
            return new_clauses
        for lit in units:
            var = abs(lit)
            value = lit > 0
            if var in assignment:
                if assignment[var] != value:
                    return None
            else:
                assignment[var] = value
        work = new_clauses


def _choose_literal(clauses: Sequence[Sequence[int]]) -> int:
    """Branch on the most frequent literal in the shortest clauses."""
    best_len = min(len(c) for c in clauses)
    counts: Dict[int, int] = {}
    for clause in clauses:
        if len(clause) == best_len:
            for lit in clause:
                counts[lit] = counts.get(lit, 0) + 1
    return max(counts, key=lambda l: (counts[l], -abs(l)))


def solve(cnf: Iterable[Iterable[int]], max_conflicts: int = 200_000) -> SatResult:
    """Decide ``cnf`` by recursive DPLL with unit propagation.

    Raises :class:`ResourceWarning` as an exception if the conflict
    budget is exhausted — callers that use SAT for *refutation* must
    treat that as "not proved", never as UNSAT.
    """
    clauses = [list(dict.fromkeys(c)) for c in cnf]
    for clause in clauses:
        if any(-lit in clause for lit in clause):
            clause.clear()
            clause.append(0)  # tautology marker
    clauses = [c for c in clauses if c != [0]]

    conflicts = [0]

    def dpll(clauses: List[List[int]], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        simplified = _unit_propagate(clauses, assignment)
        if simplified is None:
            conflicts[0] += 1
            if conflicts[0] > max_conflicts:
                raise ResourceWarning("SAT conflict budget exhausted")
            return None
        if not simplified:
            return assignment
        lit = _choose_literal(simplified)
        for choice in (lit, -lit):
            trail = dict(assignment)
            trail[abs(choice)] = choice > 0
            model = dpll(simplified, trail)
            if model is not None:
                return model
        return None

    model = dpll(clauses, {})
    if model is None:
        return SatResult(False, None, conflicts[0])
    return SatResult(True, model, conflicts[0])


def is_satisfiable(cnf: Iterable[Iterable[int]]) -> bool:
    return solve(cnf).sat
