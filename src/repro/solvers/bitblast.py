"""Bit-blasting of fixed-width bitvector terms to CNF.

The bitvector theory (section 2.2 of the paper) is decided by lowering
every term to a vector of propositional literals (LSB first) with
Tseitin-encoded gates, then refuting with the DPLL solver in
:mod:`repro.solvers.sat`.

The :class:`BitBlaster` hands out fresh variables, caches term
encodings, and offers the operations the AES ``xtime`` example and the
enriched primitive environment need: bitwise logic, addition,
multiplication, constant shifts, and unsigned comparisons.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .sat import CNF, solve

__all__ = ["BitBlaster"]

Bits = Tuple[int, ...]


class BitBlaster:
    """Accumulates CNF clauses while encoding bitvector terms."""

    def __init__(self) -> None:
        self.clauses: CNF = []
        self._next_var = 1
        self._true_lit = self.fresh()
        self.clauses.append([self._true_lit])
        self._var_bits: Dict[Hashable, Bits] = {}

    # ------------------------------------------------------------------
    # literals
    # ------------------------------------------------------------------
    def fresh(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    @property
    def true_lit(self) -> int:
        return self._true_lit

    @property
    def false_lit(self) -> int:
        return -self._true_lit

    def constant(self, value: int, width: int) -> Bits:
        """Encode the unsigned constant ``value`` at ``width`` bits."""
        return tuple(
            self.true_lit if (value >> i) & 1 else self.false_lit for i in range(width)
        )

    def variable(self, key: Hashable, width: int) -> Bits:
        """The (cached) bit-vector of fresh literals naming ``key``."""
        bits = self._var_bits.get(key)
        if bits is None:
            bits = tuple(self.fresh() for _ in range(width))
            self._var_bits[key] = bits
        if len(bits) != width:
            raise ValueError(f"width mismatch for {key!r}: {len(bits)} vs {width}")
        return bits

    # ------------------------------------------------------------------
    # gates (Tseitin encodings)
    # ------------------------------------------------------------------
    def gate_and(self, a: int, b: int) -> int:
        c = self.fresh()
        self.clauses += [[-c, a], [-c, b], [c, -a, -b]]
        return c

    def gate_or(self, a: int, b: int) -> int:
        c = self.fresh()
        self.clauses += [[c, -a], [c, -b], [-c, a, b]]
        return c

    def gate_xor(self, a: int, b: int) -> int:
        c = self.fresh()
        self.clauses += [[-c, a, b], [-c, -a, -b], [c, -a, b], [c, a, -b]]
        return c

    def gate_iff(self, a: int, b: int) -> int:
        return -self.gate_xor(a, b)

    def gate_ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        c = self.fresh()
        self.clauses += [
            [-c, -cond, then_lit],
            [-c, cond, else_lit],
            [c, -cond, -then_lit],
            [c, cond, -else_lit],
        ]
        return c

    def gate_majority(self, a: int, b: int, c: int) -> int:
        out = self.fresh()
        self.clauses += [
            [-out, a, b],
            [-out, a, c],
            [-out, b, c],
            [out, -a, -b],
            [out, -a, -c],
            [out, -b, -c],
        ]
        return out

    # ------------------------------------------------------------------
    # word-level operations
    # ------------------------------------------------------------------
    def bv_not(self, a: Bits) -> Bits:
        return tuple(-bit for bit in a)

    def bv_and(self, a: Bits, b: Bits) -> Bits:
        return tuple(self.gate_and(x, y) for x, y in zip(a, b))

    def bv_or(self, a: Bits, b: Bits) -> Bits:
        return tuple(self.gate_or(x, y) for x, y in zip(a, b))

    def bv_xor(self, a: Bits, b: Bits) -> Bits:
        return tuple(self.gate_xor(x, y) for x, y in zip(a, b))

    def bv_add(self, a: Bits, b: Bits) -> Bits:
        """Ripple-carry addition, truncating the final carry (mod 2^w)."""
        carry = self.false_lit
        out: List[int] = []
        for x, y in zip(a, b):
            s = self.gate_xor(self.gate_xor(x, y), carry)
            carry = self.gate_majority(x, y, carry)
            out.append(s)
        return tuple(out)

    def bv_shl(self, a: Bits, amount: int) -> Bits:
        width = len(a)
        return tuple(
            self.false_lit if i < amount else a[i - amount] for i in range(width)
        )

    def bv_lshr(self, a: Bits, amount: int) -> Bits:
        width = len(a)
        return tuple(
            a[i + amount] if i + amount < width else self.false_lit
            for i in range(width)
        )

    def bv_mul(self, a: Bits, b: Bits) -> Bits:
        """Shift-and-add multiplication (mod 2^w)."""
        width = len(a)
        acc = self.constant(0, width)
        for i in range(width):
            shifted = self.bv_shl(a, i)
            gated = tuple(self.gate_and(bit, b[i]) for bit in shifted)
            acc = self.bv_add(acc, gated)
        return acc

    # ------------------------------------------------------------------
    # predicates (return a single literal)
    # ------------------------------------------------------------------
    def bv_eq(self, a: Bits, b: Bits) -> int:
        acc = self.true_lit
        for x, y in zip(a, b):
            acc = self.gate_and(acc, self.gate_iff(x, y))
        return acc

    def bv_ult(self, a: Bits, b: Bits) -> int:
        """Unsigned ``a < b``: MSB-first lexicographic comparison."""
        lt = self.false_lit
        for x, y in zip(a, b):  # LSB to MSB, so fold keeps MSB dominant
            bit_lt = self.gate_and(-x, y)
            bit_eq = self.gate_iff(x, y)
            lt = self.gate_or(bit_lt, self.gate_and(bit_eq, lt))
        return lt

    def bv_ule(self, a: Bits, b: Bits) -> int:
        return -self.bv_ult(b, a)

    # ------------------------------------------------------------------
    # assertions and solving
    # ------------------------------------------------------------------
    def assert_lit(self, lit: int) -> None:
        self.clauses.append([lit])

    def check_sat(self, backend: Optional[str] = None) -> bool:
        """Is the accumulated formula satisfiable?

        A solver resource exhaustion is reported as *satisfiable*
        (cannot refute), keeping the enclosing proof search sound.
        ``backend`` selects the SAT core (``None`` = process default).
        """
        try:
            return solve(self.clauses, backend=backend).sat
        except ResourceWarning:
            return True
