"""A CDCL SAT solver (the fast propositional core).

Conflict-driven clause learning in the MiniSat lineage (Eén &
Sörensson, SAT 2003), replacing the recursive DPLL core behind
:class:`~repro.solvers.sat.IncrementalSatSolver`:

* **two-watched-literal** propagation — each clause watches two
  literals, so unit propagation touches only clauses whose watch just
  became false, never the whole database;
* **first-UIP conflict analysis** — every conflict learns one
  asserting clause and backjumps non-chronologically to the second
  highest decision level in it;
* **VSIDS** branching — variable activities bumped on conflict
  participation and exponentially decayed, served from a lazy
  max-heap with phase saving;
* **Luby restarts** — the search restarts on the Luby sequence
  (unit 100 conflicts), keeping learned clauses;
* **assumption-based incremental solving** — :meth:`solve` takes a
  list of assumption literals decided before any free decision
  (MiniSat's ``solve(assumps)``), which is what lets the facade map
  ``push``/``pop`` to selector literals and reuse learned clauses
  across an entire ``check_many`` batch.

Learned clauses are kept for the engine's lifetime (no deletion
policy): the bit-blasted instances this repository produces stay in
the thousands of clauses, and the conflict budget bounds runaway
growth.  Variables are arbitrary positive ints and all maps are dicts,
so sparse variable spaces (the facade's high-range selector literals)
cost nothing.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..budget import current_budget

__all__ = ["CDCL", "luby"]

_RESTART_UNIT = 100
_ACTIVITY_DECAY = 0.95
_ACTIVITY_RESCALE = 1e100


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class CDCL:
    """A stateful CDCL engine over DIMACS-style integer literals.

    Clauses accumulate via :meth:`add_clause` (only legal between
    :meth:`solve` calls, i.e. at decision level 0); :meth:`solve`
    decides the database under optional assumptions.  Counters
    (:attr:`conflicts`, :attr:`learned`, :attr:`restarts`,
    :attr:`propagations`, :attr:`decisions`) are cumulative and
    surface through ``EngineStats.solver_counters``.
    """

    __slots__ = (
        "_clauses",
        "_learnts",
        "_watches",
        "_assign",
        "_level",
        "_reason",
        "_trail",
        "_trail_lim",
        "_qhead",
        "_activity",
        "_heap",
        "_phase",
        "_vars",
        "_var_inc",
        "_ok",
        "conflicts",
        "learned",
        "restarts",
        "propagations",
        "decisions",
    )

    def __init__(self) -> None:
        self._clauses: List[List[int]] = []
        self._learnts: List[List[int]] = []
        #: literal → clauses currently watching that literal
        self._watches: Dict[int, List[List[int]]] = {}
        self._assign: Dict[int, bool] = {}
        self._level: Dict[int, int] = {}
        self._reason: Dict[int, Optional[List[int]]] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []
        self._phase: Dict[int, bool] = {}
        self._vars: set = set()
        self._var_inc = 1.0
        #: False once the clause database is unsatisfiable outright
        self._ok = True
        self.conflicts = 0
        self.learned = 0
        self.restarts = 0
        self.propagations = 0
        self.decisions = 0

    # ------------------------------------------------------------------
    # assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        assigned = self._assign.get(abs(lit))
        if assigned is None:
            return None
        return assigned == (lit > 0)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _new_var(self, var: int) -> None:
        if var not in self._vars:
            self._vars.add(var)
            self._activity[var] = 0.0
            heappush(self._heap, (0.0, var))

    def _bump(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > _ACTIVITY_RESCALE:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            activity = self._activity[var]
        heappush(self._heap, (-activity, var))

    def _decay(self) -> None:
        self._var_inc /= _ACTIVITY_DECAY

    # ------------------------------------------------------------------
    # clause ingestion (decision level 0 only)
    # ------------------------------------------------------------------
    def add_clause(self, clause: Sequence[int]) -> None:
        """Assert a clause at the top level.

        Tautologies are dropped, level-0-false literals removed (level-0
        assignments are permanent), units enqueued immediately.  An
        empty (or falsified-unit) result marks the database UNSAT.
        """
        assert not self._trail_lim, "add_clause only at decision level 0"
        if not self._ok:
            return
        seen: Dict[int, None] = {}
        lits: List[int] = []
        for lit in clause:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen[lit] = None
            value = self._value(lit)
            if value is True:
                return  # satisfied at level 0
            if value is False:
                continue  # permanently false: drop the literal
            lits.append(lit)
        if not lits:
            self._ok = False
            return
        for lit in lits:
            self._new_var(abs(lit))
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            if self._propagate() is not None:
                self._ok = False
            return
        self._clauses.append(lits)
        self._watches.setdefault(lits[0], []).append(lits)
        self._watches.setdefault(lits[1], []).append(lits)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # two-watched-literal propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """Propagate the trail to fixpoint; return a conflict clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            watchers = self._watches.get(-lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # normalise: the false watch sits at clause[1]
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    other = clause[k]
                    if self._value(other) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if self._value(first) is False:
                        kept.extend(watchers[i:])
                        self._watches[-lit] = kept
                        self._qhead = len(self._trail)
                        return clause
                    self._enqueue(first, clause)
            self._watches[-lit] = kept
        return None

    # ------------------------------------------------------------------
    # first-UIP conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """Learn an asserting clause from ``conflict``.

        Returns ``(learnt, backjump_level)`` with the asserting literal
        at ``learnt[0]`` and a highest-remaining-level literal at
        ``learnt[1]`` (ready for watching).
        """
        current = len(self._trail_lim)
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen: set = set()
        counter = 0
        lit = 0  # 0 = "iterate the whole conflict clause"
        index = len(self._trail)
        clause = conflict
        while True:
            start = 0 if lit == 0 else 1  # reason clauses carry lit at [0]
            for q in clause[start:]:
                var = abs(q)
                if var not in seen and self._level[var] > 0:
                    seen.add(var)
                    self._bump(var)
                    if self._level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                lit = self._trail[index]
                if abs(lit) in seen:
                    break
            seen.remove(abs(lit))
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[abs(lit)]
        learnt[0] = -lit
        if len(learnt) == 1:
            return learnt, 0
        # position a literal from the backjump level at learnt[1]
        best = 1
        for k in range(2, len(learnt)):
            if self._level[abs(learnt[k])] > self._level[abs(learnt[best])]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._phase[var] = lit > 0
            del self._assign[var]
            del self._level[var]
            self._reason.pop(var, None)
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _record_learnt(self, learnt: List[int]) -> None:
        self.learned += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        self._learnts.append(learnt)
        self._watches.setdefault(learnt[0], []).append(learnt)
        self._watches.setdefault(learnt[1], []).append(learnt)
        self._enqueue(learnt[0], learnt)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        heap = self._heap
        while heap:
            neg_activity, var = heappop(heap)
            if var in self._assign:
                continue
            if -neg_activity != self._activity[var]:
                continue  # stale entry: a fresher one is in the heap
            return var
        # stale-only heap exhaustion: fall back to any unassigned var
        for var in self._vars:
            if var not in self._assign:
                heappush(heap, (-self._activity[var], var))
                return var
        return None

    # ------------------------------------------------------------------
    # the search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: int = 200_000,
    ) -> Tuple[bool, Optional[Dict[int, bool]]]:
        """Decide the database under ``assumptions``.

        Returns ``(sat, model)``; ``model`` maps every known variable to
        a bool when sat.  Raises :class:`ResourceWarning` when the
        conflict budget is exhausted — callers that refute must treat
        that as "not proved", never as UNSAT.  The engine always
        returns at decision level 0, so clause addition stays legal.
        """
        if not self._ok:
            return False, None
        for lit in assumptions:
            self._new_var(abs(lit))
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._search(list(assumptions), max_conflicts)
        finally:
            self._cancel_until(0)
            if gc_was_enabled:
                gc.enable()

    def _search(
        self, assumptions: List[int], max_conflicts: int
    ) -> Tuple[bool, Optional[Dict[int, bool]]]:
        if self._propagate() is not None:
            self._ok = False  # level-0 conflict: unconditionally UNSAT
            return False, None
        budget = 0
        restart_number = 0
        restart_limit = _RESTART_UNIT * luby(1)
        conflicts_here = 0
        request_budget = current_budget()
        request_tick = None if request_budget is None else request_budget.tick
        while True:
            if request_tick is not None:
                # cooperative cancellation, once per propagate/decide
                # round; ``solve``'s finally backtracks to level 0, the
                # same unwind path its own conflict budget uses.
                request_tick()
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                budget += 1
                conflicts_here += 1
                if not self._trail_lim:
                    self._ok = False
                    return False, None
                if len(self._trail_lim) <= len(assumptions):
                    # Conflict forced by the assumptions alone.
                    return False, None
                if budget > max_conflicts:
                    raise ResourceWarning("SAT conflict budget exhausted")
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(max(back_level, len(assumptions)))
                self._record_learnt(learnt)
                self._decay()
                continue
            if conflicts_here >= restart_limit:
                restart_number += 1
                self.restarts += 1
                conflicts_here = 0
                restart_limit = _RESTART_UNIT * luby(restart_number + 1)
                self._cancel_until(len(assumptions))
                continue
            level = len(self._trail_lim)
            if level < len(assumptions):
                # Re-assert the next assumption as a pseudo-decision.
                lit = assumptions[level]
                value = self._value(lit)
                if value is False:
                    return False, None  # assumption contradicted
                self._trail_lim.append(len(self._trail))
                if value is None:
                    self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var is None:
                model = dict(self._assign)
                return True, model
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            phase = self._phase.get(var, False)
            self._enqueue(var if phase else -var, None)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Cumulative work counters (flushed into ``EngineStats``)."""
        return {
            "cdcl.conflicts": self.conflicts,
            "cdcl.learned": self.learned,
            "cdcl.restarts": self.restarts,
            "cdcl.propagations": self.propagations,
            "cdcl.decisions": self.decisions,
        }
