"""Linear integer arithmetic solving — the backend-dispatching facade.

This module keeps the public surface the theory layer has always used
— :class:`Constraint`, :class:`IncrementalConstraintSet`,
:func:`fm_satisfiable`, :func:`fm_entails`, the
:data:`SAT`/:data:`UNSAT`/:data:`UNKNOWN` verdicts — while the actual
deciding is done by one of two cores selected by the
``solver_backend`` knob (:mod:`repro.solvers.backend`):

* ``fast`` (default): the incremental dual simplex of
  :mod:`repro.solvers.simplex` — assumptions are translated into the
  tableau *once*, push/pop retract bounds in O(1), and each
  :meth:`IncrementalConstraintSet.entails` goal costs a handful of
  pivots instead of a full re-elimination;
* ``legacy``: the original Fourier-Motzkin eliminator, now living in
  :mod:`repro.solvers.reference` as the differential-testing oracle.

Both cores are *sound for refutation*: :data:`UNSAT` answers are
always correct over the integers, while :data:`SAT` answers may be
rational-only; work bounds yield :data:`UNKNOWN` ("not proved").  The
type checker only acts on UNSAT, so the conservative direction is the
safe one — and it is also what makes the two backends comparable
verdict-for-verdict in the fuzz ``--solver-oracle`` mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .backend import FAST, resolve_backend
from .linform import SAT, UNKNOWN, UNSAT, Atom, Constraint
from .reference import fm_entails, fm_satisfiable
from .simplex import Simplex

__all__ = [
    "Constraint",
    "IncrementalConstraintSet",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "fm_satisfiable",
    "fm_entails",
]


class IncrementalConstraintSet:
    """A push/pop constraint store — the SMT-style context backing the
    incremental linear-arithmetic theory.

    Constraints are normalised and deduplicated *once*, as they are
    asserted; :meth:`entails` and :meth:`satisfiable` answers are
    memoised until the next content change, so repeated goals against a
    stable assumption set (the dominant checker pattern) cost a single
    dictionary probe.  :meth:`push`/:meth:`pop` bracket speculative
    assertions; :meth:`clone` shares nothing mutable, letting a derived
    context start from an already-translated assumption set.

    Under the ``fast`` backend every asserted constraint is also a
    bound update on a persistent simplex tableau, so a goal is decided
    by refuting its negation incrementally; under ``legacy`` each query
    re-runs Fourier-Motzkin elimination over :meth:`constraints`.
    """

    __slots__ = (
        "_frames",
        "_seen",
        "_contradiction_level",
        "_memo",
        "_sat_memo",
        "_backend",
        "_engine",
        "_shared_counters",
        "_flush_base",
    )

    def __init__(self, backend: Optional[str] = None) -> None:
        self._frames: List[List[Constraint]] = [[]]
        self._seen: set = set()
        #: frame index at which a contradictory constraint was asserted,
        #: or None — popping past it restores consistency.
        self._contradiction_level: Optional[int] = None
        self._memo: Dict[Constraint, bool] = {}
        self._sat_memo: Optional[str] = None
        self._backend = resolve_backend(backend)
        self._engine: Optional[Simplex] = (
            Simplex() if self._backend == FAST else None
        )
        #: shared counter dict (``EngineStats.solver_counters``) and the
        #: engine-counter snapshot already flushed into it
        self._shared_counters: Optional[Dict[str, int]] = None
        self._flush_base: Dict[str, int] = {}

    @property
    def backend(self) -> str:
        return self._backend

    # ------------------------------------------------------------------
    # counter plumbing
    # ------------------------------------------------------------------
    def bind_counters(self, shared: Optional[Dict[str, int]]) -> None:
        """Flush per-core work counters into ``shared`` after each query."""
        self._shared_counters = shared

    def _flush(self) -> None:
        if self._shared_counters is None or self._engine is None:
            return
        snapshot = self._engine.counters()
        base = self._flush_base
        shared = self._shared_counters
        for key, value in snapshot.items():
            delta = value - base.get(key, 0)
            if delta:
                shared[key] = shared.get(key, 0) + delta
        self._flush_base = snapshot

    # ------------------------------------------------------------------
    def push(self) -> None:
        self._frames.append([])
        if self._engine is not None:
            self._engine.push()

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise IndexError("pop without matching push")
        frame = self._frames.pop()
        for con in frame:
            self._seen.discard(con)
        if (
            self._contradiction_level is not None
            and self._contradiction_level >= len(self._frames)
        ):
            self._contradiction_level = None
        if frame:
            self._memo = {}
            self._sat_memo = None
        if self._engine is not None:
            self._engine.pop()

    def add(self, con: Constraint) -> None:
        norm = con.normalized()
        if norm.is_contradiction():
            if self._contradiction_level is None:
                self._contradiction_level = len(self._frames) - 1
                # Recorded in the frame so pop() can retract it.
                self._frames[-1].append(norm)
                self._seen.add(norm)
                self._memo = {}
                self._sat_memo = None
            return
        if norm.is_trivial() or norm in self._seen:
            return
        self._seen.add(norm)
        self._frames[-1].append(norm)
        self._memo = {}
        self._sat_memo = None
        if self._engine is not None:
            # A bound conflict is recorded inside the engine (and
            # retracted by the matching pop); queries then answer UNSAT
            # without pivoting.
            self._engine.assert_constraint(norm)

    def clone(self) -> "IncrementalConstraintSet":
        dup = IncrementalConstraintSet.__new__(IncrementalConstraintSet)
        dup._frames = [list(frame) for frame in self._frames]
        dup._seen = set(self._seen)
        dup._contradiction_level = self._contradiction_level
        dup._memo = dict(self._memo)
        dup._sat_memo = self._sat_memo
        dup._backend = self._backend
        dup._engine = self._engine.clone() if self._engine is not None else None
        dup._shared_counters = self._shared_counters
        # The parent already flushed (or will flush) its own counters;
        # the clone only reports work done after the split.
        dup._flush_base = (
            dup._engine.counters() if dup._engine is not None else {}
        )
        return dup

    # ------------------------------------------------------------------
    def constraints(self) -> List[Constraint]:
        return [con for frame in self._frames for con in frame]

    def __len__(self) -> int:
        return sum(len(frame) for frame in self._frames)

    def satisfiable(self, max_constraints: int = 6000) -> str:
        if self._contradiction_level is not None:
            return UNSAT
        if self._sat_memo is None:
            if self._engine is not None:
                self._sat_memo = self._engine.check_integer(
                    max_pivots=max_constraints
                )
                self._flush()
            else:
                self._sat_memo = fm_satisfiable(
                    self.constraints(), max_constraints
                )
        return self._sat_memo

    def entails(self, goal: Constraint, max_constraints: int = 6000) -> bool:
        if self._contradiction_level is not None:
            return True  # ex falso
        cached = self._memo.get(goal)
        if cached is None:
            if self._engine is not None:
                cached = self._engine.entails(goal, max_pivots=max_constraints)
                self._flush()
            else:
                cached = fm_entails(self.constraints(), goal, max_constraints)
            self._memo[goal] = cached
        return cached

    def entails_many(
        self, goals: Sequence[Constraint], max_constraints: int = 6000
    ) -> List[bool]:
        """Decide several goals against the same assumption set.

        Under ``fast`` each goal is a push/assert/check/pop bracket on
        the *same* tableau — the assumptions are translated once for the
        whole batch.  Under ``legacy`` the assumption constraints are
        materialised once and shared by every elimination run.  Answers
        agree exactly with per-goal :meth:`entails` calls (both go
        through the same memo).
        """
        if self._contradiction_level is not None:
            return [True] * len(goals)
        base: Optional[List[Constraint]] = None
        results: List[bool] = []
        engine = self._engine
        for goal in goals:
            cached = self._memo.get(goal)
            if cached is None:
                if engine is not None:
                    cached = engine.entails(goal, max_pivots=max_constraints)
                else:
                    if base is None:
                        base = self.constraints()
                    cached = fm_entails(base, goal, max_constraints)
                self._memo[goal] = cached
            results.append(cached)
        if engine is not None:
            self._flush()
        return results
