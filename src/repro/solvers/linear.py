"""Fourier-Motzkin elimination over linear integer constraints.

This is the "simple implementation of Fourier-Motzkin elimination as a
lightweight solver" the paper uses for the theory of linear integer
arithmetic (section 2.1, citing Dantzig & Eaves).

Constraints are kept in the homogeneous form ``Σ aᵢ·xᵢ + c ≤ 0`` over
opaque hashable atom keys.  The solver decides (un)satisfiability of a
conjunction by eliminating variables one at a time; the classic
rational procedure is strengthened with GCD normalisation (dividing
each constraint by the GCD of its coefficients and tightening the
constant with a floor), which makes many integer-only contradictions
— e.g. ``2x ≤ 1 ∧ 1 ≤ 2x`` — detectable.

The procedure is *sound for refutation*: :data:`UNSAT` answers are
always correct over the integers, while :data:`SAT` answers may be
rational-only.  The type checker only acts on UNSAT (to prove a goal by
refuting its negation), so the conservative direction is the safe one.
A work bound keeps pathological eliminations from blowing up; when the
bound trips the solver answers :data:`UNKNOWN`, which callers treat as
"not proved".
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from math import floor, gcd
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Constraint",
    "IncrementalConstraintSet",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "fm_satisfiable",
    "fm_entails",
]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

Atom = Hashable


@dataclass(frozen=True)
class Constraint:
    """``Σ coeffs[x]·x + const ≤ 0`` with non-zero integer coefficients."""

    coeffs: Tuple[Tuple[Atom, int], ...]
    const: int

    @staticmethod
    def make(coeffs: Dict[Atom, int], const: int) -> "Constraint":
        items = tuple(sorted(((a, c) for a, c in coeffs.items() if c != 0), key=lambda t: repr(t[0])))
        return Constraint(items, const)

    def coeff_map(self) -> Dict[Atom, int]:
        return dict(self.coeffs)

    def is_trivial(self) -> bool:
        return not self.coeffs and self.const <= 0

    def is_contradiction(self) -> bool:
        return not self.coeffs and self.const > 0

    def normalized(self) -> "Constraint":
        """Divide by the GCD of the coefficients, tightening the constant.

        ``Σ aᵢxᵢ ≤ -c`` with g = gcd(aᵢ) becomes ``Σ (aᵢ/g)xᵢ ≤
        ⌊-c/g⌋`` over the integers.
        """
        if not self.coeffs:
            return self
        g = 0
        for _, coeff in self.coeffs:
            g = gcd(g, abs(coeff))
        if g <= 1:
            return self
        new_coeffs = tuple((atom, coeff // g) for atom, coeff in self.coeffs)
        # Σ a/g x ≤ floor(-c / g)  ⟹  Σ a/g x + (-floor(-c/g)) ≤ 0
        new_const = -floor(-self.const / g)
        return Constraint(new_coeffs, new_const)


def _combine(lower: Constraint, upper: Constraint, atom: Atom) -> Constraint:
    """Eliminate ``atom`` from a lower bound (coeff < 0) and an upper
    bound (coeff > 0) by taking the positive combination that cancels it."""
    lo = lower.coeff_map()
    up = upper.coeff_map()
    a = -lo[atom]  # positive
    b = up[atom]  # positive
    combined: Dict[Atom, int] = {}
    for key, coeff in lo.items():
        combined[key] = combined.get(key, 0) + b * coeff
    for key, coeff in up.items():
        combined[key] = combined.get(key, 0) + a * coeff
    const = b * lower.const + a * upper.const
    combined.pop(atom, None)
    return Constraint.make(combined, const).normalized()


def _choose_atom(constraints: Sequence[Constraint]) -> Optional[Atom]:
    """Pick the elimination variable minimising the FM product bound."""
    uppers: Dict[Atom, int] = {}
    lowers: Dict[Atom, int] = {}
    for con in constraints:
        for atom, coeff in con.coeffs:
            if coeff > 0:
                uppers[atom] = uppers.get(atom, 0) + 1
            else:
                lowers[atom] = lowers.get(atom, 0) + 1
    atoms = set(uppers) | set(lowers)
    if not atoms:
        return None

    def cost(atom: Atom) -> int:
        return uppers.get(atom, 0) * lowers.get(atom, 0)

    return min(atoms, key=lambda a: (cost(a), repr(a)))


def fm_satisfiable(
    constraints: Iterable[Constraint], max_constraints: int = 6000
) -> str:
    """Decide a conjunction of constraints by Fourier-Motzkin elimination.

    Returns :data:`UNSAT`, :data:`SAT` (rationally satisfiable, almost
    always integer-satisfiable for checker-shaped queries) or
    :data:`UNKNOWN` if the work bound was exceeded.
    """
    work: List[Constraint] = []
    seen: set = set()
    for con in constraints:
        norm = con.normalized()
        if norm.is_contradiction():
            return UNSAT
        if norm.is_trivial() or norm in seen:
            continue
        seen.add(norm)
        work.append(norm)

    # Elimination churns through cycle-free constraint combinations;
    # pause the cyclic collector as the SAT core does so heavy queries
    # do not spend their time in generation-0 scans.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _eliminate(work, max_constraints)
    finally:
        if gc_was_enabled:
            gc.enable()


def _eliminate(work: List[Constraint], max_constraints: int) -> str:
    while True:
        atom = _choose_atom(work)
        if atom is None:
            return SAT
        uppers = [c for c in work if c.coeff_map().get(atom, 0) > 0]
        lowers = [c for c in work if c.coeff_map().get(atom, 0) < 0]
        rest = [c for c in work if atom not in c.coeff_map()]
        if len(rest) + len(uppers) * len(lowers) > max_constraints:
            return UNKNOWN
        new_work: List[Constraint] = list(rest)
        new_seen = set(rest)
        for lo in lowers:
            for up in uppers:
                combined = _combine(lo, up, atom)
                if combined.is_contradiction():
                    return UNSAT
                if combined.is_trivial() or combined in new_seen:
                    continue
                new_seen.add(combined)
                new_work.append(combined)
        work = new_work


def fm_entails(
    assumptions: Iterable[Constraint], goal: Constraint, max_constraints: int = 6000
) -> bool:
    """Does the conjunction of ``assumptions`` entail ``goal``?

    Checked by refutation: ``assumptions ∧ ¬goal`` must be UNSAT, where
    ``¬(e ≤ 0)`` is ``1 - e ≤ 0`` over the integers.
    """
    negated = Constraint.make(
        {atom: -coeff for atom, coeff in goal.coeffs}, 1 - goal.const
    )
    verdict = fm_satisfiable(list(assumptions) + [negated], max_constraints)
    return verdict == UNSAT


class IncrementalConstraintSet:
    """A push/pop constraint store — the SMT-style context backing the
    incremental linear-arithmetic theory.

    Constraints are normalised and deduplicated *once*, as they are
    asserted; :meth:`entails` and :meth:`satisfiable` answers are
    memoised until the next content change, so repeated goals against a
    stable assumption set (the dominant checker pattern) cost a single
    dictionary probe.  :meth:`push`/:meth:`pop` bracket speculative
    assertions; :meth:`clone` shares nothing mutable, letting a derived
    context start from an already-translated assumption set.
    """

    __slots__ = ("_frames", "_seen", "_contradiction_level", "_memo", "_sat_memo")

    def __init__(self) -> None:
        self._frames: List[List[Constraint]] = [[]]
        self._seen: set = set()
        #: frame index at which a contradictory constraint was asserted,
        #: or None — popping past it restores consistency.
        self._contradiction_level: Optional[int] = None
        self._memo: Dict[Constraint, bool] = {}
        self._sat_memo: Optional[str] = None

    # ------------------------------------------------------------------
    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise IndexError("pop without matching push")
        frame = self._frames.pop()
        for con in frame:
            self._seen.discard(con)
        if (
            self._contradiction_level is not None
            and self._contradiction_level >= len(self._frames)
        ):
            self._contradiction_level = None
        if frame:
            self._memo = {}
            self._sat_memo = None

    def add(self, con: Constraint) -> None:
        norm = con.normalized()
        if norm.is_contradiction():
            if self._contradiction_level is None:
                self._contradiction_level = len(self._frames) - 1
                # Recorded in the frame so pop() can retract it.
                self._frames[-1].append(norm)
                self._seen.add(norm)
                self._memo = {}
                self._sat_memo = None
            return
        if norm.is_trivial() or norm in self._seen:
            return
        self._seen.add(norm)
        self._frames[-1].append(norm)
        self._memo = {}
        self._sat_memo = None

    def clone(self) -> "IncrementalConstraintSet":
        dup = IncrementalConstraintSet.__new__(IncrementalConstraintSet)
        dup._frames = [list(frame) for frame in self._frames]
        dup._seen = set(self._seen)
        dup._contradiction_level = self._contradiction_level
        dup._memo = dict(self._memo)
        dup._sat_memo = self._sat_memo
        return dup

    # ------------------------------------------------------------------
    def constraints(self) -> List[Constraint]:
        return [con for frame in self._frames for con in frame]

    def __len__(self) -> int:
        return sum(len(frame) for frame in self._frames)

    def satisfiable(self, max_constraints: int = 6000) -> str:
        if self._contradiction_level is not None:
            return UNSAT
        if self._sat_memo is None:
            self._sat_memo = fm_satisfiable(self.constraints(), max_constraints)
        return self._sat_memo

    def entails(self, goal: Constraint, max_constraints: int = 6000) -> bool:
        if self._contradiction_level is not None:
            return True  # ex falso
        cached = self._memo.get(goal)
        if cached is None:
            cached = fm_entails(self.constraints(), goal, max_constraints)
            self._memo[goal] = cached
        return cached

    def entails_many(
        self, goals: Sequence[Constraint], max_constraints: int = 6000
    ) -> List[bool]:
        """Decide several goals against the same assumption set.

        The assumption constraints are materialised once and shared by
        every elimination run — the multi-goal analogue of
        :meth:`entails`, used by the theory layer's batched dispatch.
        Answers agree exactly with per-goal :meth:`entails` calls (both
        go through the same memo).
        """
        if self._contradiction_level is not None:
            return [True] * len(goals)
        base: Optional[List[Constraint]] = None
        results: List[bool] = []
        for goal in goals:
            cached = self._memo.get(goal)
            if cached is None:
                if base is None:
                    base = self.constraints()
                cached = fm_entails(base, goal, max_constraints)
                self._memo[goal] = cached
            results.append(cached)
        return results
