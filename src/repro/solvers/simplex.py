"""Incremental dual simplex over exact rationals (the fast LA core).

The Simplex-for-DPLL(T) architecture of Dutertre & de Moura ("A Fast
Linear-Arithmetic Solver for DPLL(T)", CAV 2006), specialised to the
conjunction-of-inequalities queries the λRTR theory layer produces:

* every distinct multi-atom linear form ``Σ aᵢxᵢ`` gets one **slack
  variable** ``s`` with the tableau equation ``s = Σ aᵢxᵢ``; the
  tableau is shared by every assertion and goal that mentions the
  form;
* asserting ``Σ aᵢxᵢ + c ≤ 0`` is a **bound update** (``s ≤ -c`` or,
  for single-atom constraints, a bound directly on the atom's
  variable) recorded on a trail, so :meth:`push`/:meth:`pop` retract
  assertions in O(1) per bound without touching the tableau;
* feasibility is restored by **Bland's-rule pivoting** on the basic
  variable with the smallest index that violates a bound — the check
  is *incremental*: after a pop or a new assertion it resumes from the
  current (almost-feasible) assignment instead of re-solving;
* :meth:`entails` refutes the negated goal inside a push/pop bracket
  — the integer negation ``¬(e ≤ 0) ≡ 1 - e ≤ 0`` — so a goal costs a
  couple of bound asserts and the pivots needed to re-establish
  feasibility, not a re-translation of Γ.  A slack row created *for*
  a goal is garbage-collected afterwards, keeping the tableau at the
  size of Γ across arbitrarily long goal streams.

Exactness without :class:`~fractions.Fraction` rows: each tableau row
is stored as integer coefficients with one positive integer
denominator (``den·basic = Σ coeff·nonbasic``), GCD-reduced after
every pivot.  Pivoting is integer-only arithmetic; the assignment ``β``
holds plain ``int`` values while they are integral (almost always, for
the checker's unit-coefficient constraints) and promotes to
``Fraction`` only when a pivot lands on a fractional vertex.

Integer reasoning: every ingested constraint is GCD-normalised
(:meth:`~repro.solvers.linform.Constraint.normalized`), and a bounded
**branch-and-bound** layer splits on atom variables with fractional
values (``x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉``) to find integer-only contradictions
the rational relaxation misses.  Exhausting the node or pivot budget
answers :data:`~repro.solvers.linform.UNKNOWN` — the solver stays
*sound for refutation* exactly like the Fourier-Motzkin core it
replaces: UNSAT is always correct over the integers, SAT may be
rational-only.
"""

from __future__ import annotations

from fractions import Fraction
from math import floor, gcd
from typing import Dict, List, Optional, Set, Tuple

from ..budget import current_budget
from .linform import SAT, UNKNOWN, UNSAT, Constraint

__all__ = ["Simplex"]

#: branch-and-bound node budget per top-level check — generous for the
#: checker's almost-always-integral queries, bounded for fuzz noise.
DEFAULT_BB_NODES = 256

#: how many goal-created slack rows to keep for reuse.  Checker goal
#: streams repeat linear *forms* (``i − n``, ``i + 1 − len``) with
#: varying constants, so caching the tableau row skips both the row
#: construction and the pivot that would re-enter it next time; the cap
#: keeps an adversarial stream of distinct forms from growing the
#: tableau without bound (each extra row taxes every later pivot).
GOAL_FORM_CACHE = 24



class Simplex:
    """An incremental simplex context deciding integer-sound queries.

    State is the Dutertre–de Moura triple: a tableau of basic-variable
    rows over nonbasic columns, per-variable bounds, and a rational
    assignment ``β`` that always satisfies the tableau equations and
    keeps every *nonbasic* variable within its bounds.  Counters
    (:attr:`pivots`, :attr:`checks`, :attr:`branches`) are cumulative
    and surface through ``EngineStats.solver_counters``.
    """

    __slots__ = (
        "_atom_vars",
        "_atom_of",
        "_forms",
        "_goal_forms",
        "_rows",
        "_dens",
        "_cols",
        "_lower",
        "_upper",
        "_beta",
        "_next_var",
        "_violated",
        "_trail",
        "_conflict_level",
        "pivots",
        "checks",
        "branches",
    )

    def __init__(self) -> None:
        #: atom key → variable id (creation order; Bland's rule uses ids)
        self._atom_vars: Dict[object, int] = {}
        #: variable id → atom key (slack variables are absent: only
        #: atom variables participate in branch-and-bound)
        self._atom_of: Dict[int, object] = {}
        #: canonical multi-atom form → slack variable id
        self._forms: Dict[Tuple, int] = {}
        #: insertion-ordered LRU of forms created *for goals* (still
        #: unbounded once their query popped) — evicted via
        #: :meth:`_drop_form` when over :data:`GOAL_FORM_CACHE`
        self._goal_forms: Dict[Tuple, None] = {}
        #: basic variable → {nonbasic variable: integer coefficient}
        self._rows: Dict[int, Dict[int, int]] = {}
        #: basic variable → positive integer row denominator:
        #: ``den·basic = Σ coeff·nonbasic``
        self._dens: Dict[int, int] = {}
        #: nonbasic variable → set of basic variables whose row uses it
        self._cols: Dict[int, Set[int]] = {}
        self._lower: Dict[int, int] = {}
        self._upper: Dict[int, int] = {}
        #: variable → value: ``int`` while integral, ``Fraction`` once
        #: fractional (they interoperate; ``int.denominator`` exists)
        self._beta: Dict[int, object] = {}
        #: monotonic id source — never reused, even after a dropped
        #: goal row frees its slack (a recycled id would alias a live
        #: variable)
        self._next_var = 0
        #: basic variables whose β may have drifted out of bounds — the
        #: work-list :meth:`check` drains instead of scanning every row
        #: (β only moves through :meth:`_update`/:meth:`_pivot_and_update`,
        #: which register the touched basics here; pop only loosens
        #: bounds, so it can never create a violation)
        self._violated: Set[int] = set()
        #: bound-change trail, one frame per push level
        self._trail: List[List[Tuple[bool, int, Optional[int]]]] = [[]]
        #: frame index whose assertion contradicted an existing bound
        self._conflict_level: Optional[int] = None
        self.pivots = 0
        self.checks = 0
        self.branches = 0

    # ------------------------------------------------------------------
    # variables and the tableau
    # ------------------------------------------------------------------
    def _new_var(self) -> int:
        var = self._next_var
        self._next_var = var + 1
        self._beta[var] = 0
        return var

    def _atom_var(self, atom: object) -> int:
        var = self._atom_vars.get(atom)
        if var is None:
            var = self._new_var()
            self._atom_vars[atom] = var
            self._atom_of[var] = atom
        return var

    def _slack_var(self, form: Tuple[Tuple[object, int], ...]) -> int:
        """The slack variable for ``Σ aᵢxᵢ``, creating row + β on demand."""
        slack = self._forms.get(form)
        if slack is not None:
            return slack
        # Build the defining row over *nonbasic* variables: any atom
        # that is currently basic is substituted by its own row.  All
        # integer arithmetic: scale by the LCM of the basic atoms' row
        # denominators up front.
        atom_vars = [(self._atom_var(atom), coeff) for atom, coeff in form]
        den = 1
        for var, _ in atom_vars:
            inner_den = self._dens.get(var)
            if inner_den is not None:
                den = den * inner_den // gcd(den, inner_den)
        acc: Dict[int, int] = {}
        value = 0
        for var, coeff in atom_vars:
            value += coeff * self._beta[var]
            inner = self._rows.get(var)
            if inner is None:
                acc[var] = acc.get(var, 0) + coeff * den
            else:
                scale = coeff * (den // self._dens[var])
                for nonbasic, num in inner.items():
                    acc[nonbasic] = acc.get(nonbasic, 0) + scale * num
        row = {var: num for var, num in acc.items() if num}
        slack = self._new_var()
        self._forms[form] = slack
        self._set_row(slack, row, den)
        self._beta[slack] = value
        for var in row:
            self._cols.setdefault(var, set()).add(slack)
        return slack

    def _set_row(self, basic: int, row: Dict[int, int], den: int) -> None:
        """Install a GCD-reduced row (callers guarantee ``den > 0``)."""
        g = den
        for num in row.values():
            g = gcd(g, num)
            if g == 1:
                break
        if g > 1:
            row = {var: num // g for var, num in row.items()}
            den //= g
        self._rows[basic] = row
        self._dens[basic] = den

    def _drop_form(self, form: Tuple) -> None:
        """Garbage-collect a slack created for a since-retracted goal.

        Only legal when the slack carries no bounds (the goal's bound
        was popped).  If the slack was pivoted nonbasic in the
        meantime, one pivot brings it back to basic; the variable that
        left the basis is nudged back inside its bounds to restore the
        nonbasic invariant.
        """
        slack = self._forms.pop(form)
        if slack not in self._rows:
            dependents = self._cols.get(slack)
            if not dependents:
                self._cols.pop(slack, None)
                del self._beta[slack]
                return
            leave = next(iter(dependents))
            self._pivot(leave, slack)
            lower = self._lower.get(leave)
            upper = self._upper.get(leave)
            beta = self._beta[leave]
            if lower is not None and beta < lower:
                self._update(leave, lower)
            elif upper is not None and beta > upper:
                self._update(leave, upper)
        row = self._rows.pop(slack)
        del self._dens[slack]
        for var in row:
            self._cols[var].discard(slack)
        del self._beta[slack]

    # ------------------------------------------------------------------
    # push / pop: bounds-based assertion and retraction
    # ------------------------------------------------------------------
    def push(self) -> None:
        self._trail.append([])

    def pop(self) -> None:
        if len(self._trail) == 1:
            raise IndexError("pop without matching push")
        frame = self._trail.pop()
        for is_upper, var, old in reversed(frame):
            if is_upper:
                if old is None:
                    self._upper.pop(var, None)
                else:
                    self._upper[var] = old
            else:
                if old is None:
                    self._lower.pop(var, None)
                else:
                    self._lower[var] = old
        if (
            self._conflict_level is not None
            and self._conflict_level >= len(self._trail)
        ):
            self._conflict_level = None

    def _update(self, var: int, value: Fraction) -> None:
        """Move nonbasic ``var`` to ``value``, keeping β on the tableau."""
        delta = value - self._beta[var]
        if delta:
            beta = self._beta
            rows = self._rows
            dens = self._dens
            dependents = self._cols.get(var, ())
            for basic in dependents:
                den = dens[basic]
                if den == 1:
                    # int·int stays int — the hot path for the unit
                    # coefficients checker constraints are made of
                    beta[basic] += rows[basic][var] * delta
                else:
                    beta[basic] += Fraction(rows[basic][var], den) * delta
            self._violated.update(dependents)
            beta[var] = value

    def _assert_upper(self, var: int, bound: int) -> bool:
        lower = self._lower.get(var)
        if lower is not None and bound < lower:
            return False
        upper = self._upper.get(var)
        if upper is None or bound < upper:
            self._trail[-1].append((True, var, upper))
            self._upper[var] = bound
            if var in self._rows:
                self._violated.add(var)
            elif self._beta[var] > bound:
                self._update(var, bound)
        return True

    def _assert_lower(self, var: int, bound: int) -> bool:
        upper = self._upper.get(var)
        if upper is not None and bound > upper:
            return False
        lower = self._lower.get(var)
        if lower is None or bound > lower:
            self._trail[-1].append((False, var, lower))
            self._lower[var] = bound
            if var in self._rows:
                self._violated.add(var)
            elif self._beta[var] < bound:
                self._update(var, bound)
        return True

    def assert_constraint(self, con: Constraint) -> bool:
        """Assert a *normalised* ``Σ aᵢxᵢ + c ≤ 0`` as a bound update.

        Returns ``False`` (and records a conflict retracted by the
        matching :meth:`pop`) when the bound contradicts an existing
        one; constant-only constraints are the caller's business.
        """
        if self._conflict_level is not None:
            return False
        ok = self._assert_constraint(con)
        if not ok:
            self._conflict_level = len(self._trail) - 1
        return ok

    def _assert_constraint(self, con: Constraint) -> bool:
        coeffs = con.coeffs
        if not coeffs:
            return con.const <= 0
        if len(coeffs) == 1:
            # GCD normalisation leaves single-atom coefficients at ±1.
            atom, coeff = coeffs[0]
            var = self._atom_var(atom)
            if coeff == 1:
                return self._assert_upper(var, -con.const)
            if coeff == -1:
                return self._assert_lower(var, con.const)
        # Multi-atom: sign-normalise the form so ``f`` and ``-f`` share
        # one slack variable (an upper bound on one is a lower bound on
        # the other).
        if coeffs[0][1] > 0:
            slack = self._slack_var(coeffs)
            return self._assert_upper(slack, -con.const)
        negated = tuple((atom, -coeff) for atom, coeff in coeffs)
        slack = self._slack_var(negated)
        return self._assert_lower(slack, con.const)

    @property
    def in_conflict(self) -> bool:
        return self._conflict_level is not None

    # ------------------------------------------------------------------
    # the feasibility check (Bland's rule)
    # ------------------------------------------------------------------
    def _pivot(self, leave: int, enter: int) -> None:
        """Swap basic ``leave`` with nonbasic ``enter`` (integer algebra)."""
        row = self._rows.pop(leave)
        den = self._dens.pop(leave)
        factor = row.pop(enter)
        sign = 1 if factor > 0 else -1
        for var in row:
            self._cols[var].discard(leave)
        dependents = self._cols.pop(enter, set())
        dependents.discard(leave)
        # |factor|·enter = sign·den·leave − sign·Σ row[k]·k
        new_row: Dict[int, int] = {leave: sign * den}
        for var, num in row.items():
            if num:
                new_row[var] = -sign * num
        self._set_row(enter, new_row, sign * factor)
        new_row = self._rows[enter]
        new_den = self._dens[enter]
        for var in new_row:
            self._cols.setdefault(var, set()).add(enter)
        for basic in dependents:
            brow = self._rows[basic]
            scale = brow.pop(enter)
            # new_den·bden·basic = Σ (new_den·brow[k] + scale·new_row[k])·k
            merged: Dict[int, int] = {
                var: new_den * num for var, num in brow.items()
            }
            for var, num in new_row.items():
                updated = merged.get(var, 0) + scale * num
                if updated:
                    merged[var] = updated
                else:
                    merged.pop(var, None)
            cols = self._cols
            for var in brow:
                if var not in merged:
                    cols[var].discard(basic)
            for var in merged:
                if var not in brow:
                    cols.setdefault(var, set()).add(basic)
            self._set_row(basic, merged, new_den * self._dens[basic])
        self.pivots += 1

    def _pivot_and_update(self, leave: int, enter: int, value: Fraction) -> None:
        num = self._rows[leave][enter]
        den = self._dens[leave]
        diff = value - self._beta[leave]
        if den == 1 and (num == 1 or num == -1):
            theta = diff * num  # 1/±1 == ±1: stays int for int β
        else:
            theta = diff * Fraction(den, num)
        beta = self._beta
        beta[leave] = value
        beta[enter] += theta
        rows = self._rows
        dens = self._dens
        dependents = self._cols.get(enter, ())
        for basic in dependents:
            if basic != leave:
                bden = dens[basic]
                if bden == 1:
                    beta[basic] += rows[basic][enter] * theta
                else:
                    beta[basic] += Fraction(rows[basic][enter], bden) * theta
        self._violated.update(dependents)
        self._violated.add(enter)  # basic after the pivot, β just moved
        self._pivot(leave, enter)

    def check(self, max_pivots: int = 20_000) -> str:
        """Restore β to a bound-respecting assignment, or refute.

        Returns :data:`SAT` (rationally feasible), :data:`UNSAT`
        (a Bland-certified infeasible row) or :data:`UNKNOWN` when the
        pivot budget trips.
        """
        if self._conflict_level is not None:
            return UNSAT
        self.checks += 1
        budget = max_pivots
        beta = self._beta
        lower = self._lower
        upper = self._upper
        rows = self._rows
        violated = self._violated
        # Heuristic pivoting (largest violation / largest coefficient)
        # makes rapid progress but can cycle; after a grace allowance we
        # switch to Bland's rule (min indices), which terminates from
        # any tableau state.
        bland_after = budget - max(64, len(rows) * 4)
        request_budget = current_budget()
        request_tick = None if request_budget is None else request_budget.tick
        while True:
            if request_tick is not None:
                # cooperative cancellation, once per pivot round; callers
                # (``entails``'s push/finally-pop bracket) restore bounds
                # on the way out, so an abort leaves the tableau reusable.
                request_tick()
            bland = budget <= bland_after
            # Drain the work-list: anything back in bounds (or no longer
            # basic — ex-basics are always left inside their bounds) is
            # dropped.
            leave = None
            need_raise = False
            gap = None
            settled = []
            for basic in violated:
                if basic not in rows:
                    settled.append(basic)
                    continue
                value = beta[basic]
                bound = lower.get(basic)
                if bound is not None and value < bound:
                    if bland:
                        if leave is None or basic < leave:
                            leave, need_raise = basic, True
                    elif gap is None or bound - value > gap:
                        leave, need_raise, gap = basic, True, bound - value
                    continue
                bound = upper.get(basic)
                if bound is not None and value > bound:
                    if bland:
                        if leave is None or basic < leave:
                            leave, need_raise = basic, False
                    elif gap is None or value - bound > gap:
                        leave, need_raise, gap = basic, False, value - bound
                else:
                    settled.append(basic)
            violated.difference_update(settled)
            if leave is None:
                return SAT
            if budget <= 0:
                return UNKNOWN
            # Entering variable: an eligible nonbasic of the leave row
            # (den > 0, so the integer numerator carries the coefficient
            # sign) — largest |coefficient| normally, smallest index
            # under Bland.
            enter = None
            best = 0
            for var, num in rows[leave].items():
                if bland:
                    if enter is not None and var > enter:
                        continue
                elif -best < num < best:
                    continue
                if (num > 0) == need_raise:
                    bound = upper.get(var)
                    if bound is None or beta[var] < bound:
                        enter = var
                        best = num if num > 0 else -num
                else:
                    bound = lower.get(var)
                    if bound is None or beta[var] > bound:
                        enter = var
                        best = num if num > 0 else -num
            if enter is None:
                return UNSAT
            target = lower[leave] if need_raise else upper[leave]
            self._pivot_and_update(leave, enter, target)
            budget -= 1

    # ------------------------------------------------------------------
    # integer tightening: bounded branch-and-bound
    # ------------------------------------------------------------------
    def check_integer(
        self, max_pivots: int = 20_000, max_nodes: int = DEFAULT_BB_NODES
    ) -> str:
        """:meth:`check`, then branch on fractional atom values.

        UNSAT means integer-infeasible; SAT means rationally feasible
        with every atom integral *or* the node budget ran out while a
        rational model existed (the same "SAT may be rational-only"
        contract the Fourier-Motzkin core documents).
        """
        budget = [max_nodes]
        return self._check_integer(max_pivots, budget)

    def _check_integer(self, max_pivots: int, budget: List[int]) -> str:
        verdict = self.check(max_pivots)
        if verdict != SAT:
            return verdict
        fractional = None
        for var in self._atom_of:
            if self._beta[var].denominator != 1:
                fractional = var
                break
        if fractional is None:
            return SAT
        if budget[0] <= 0:
            return SAT  # rational model exists; cannot afford to refute it
        budget[0] -= 1
        self.branches += 1
        split = floor(self._beta[fractional])
        outcomes = []
        for is_upper, bound in ((True, split), (False, split + 1)):
            self.push()
            try:
                if is_upper:
                    feasible = self._assert_upper(fractional, bound)
                else:
                    feasible = self._assert_lower(fractional, bound)
                branch = self._check_integer(max_pivots, budget) if feasible else UNSAT
            finally:
                self.pop()
            if branch == SAT:
                return SAT
            outcomes.append(branch)
        if outcomes[0] == UNSAT and outcomes[1] == UNSAT:
            return UNSAT
        return UNKNOWN

    # ------------------------------------------------------------------
    # entailment by refutation
    # ------------------------------------------------------------------
    def _bounds_entail(self, goal: Constraint) -> bool:
        """Do the current bounds alone already imply ``goal``?

        The bound-propagation shortcut of Dutertre–de Moura §4: with
        the goal read as ``e ≤ t``, an asserted bound on ``e``'s own
        slack, or the interval sum ``Σ aᵢ·bound(xᵢ)``, often discharges
        it without touching the tableau.  Sound and cheap; ``False``
        just means "fall through to the full check".
        """
        coeffs = goal.coeffs
        target = -goal.const
        if len(coeffs) > 1:
            # the goal's own form may carry an asserted bound
            if coeffs[0][1] > 0:
                slack = self._forms.get(coeffs)
                if slack is not None:
                    bound = self._upper.get(slack)
                    if bound is not None and bound <= target:
                        return True
            else:
                flipped = tuple((atom, -coeff) for atom, coeff in coeffs)
                slack = self._forms.get(flipped)
                if slack is not None:
                    bound = self._lower.get(slack)
                    if bound is not None and -bound <= target:
                        return True
        total = 0
        for atom, coeff in coeffs:
            var = self._atom_vars.get(atom)
            if var is None:
                return False  # unconstrained atom: no finite bound
            bound = self._upper.get(var) if coeff > 0 else self._lower.get(var)
            if bound is None:
                return False
            total += coeff * bound
        return total <= target

    def entails(
        self,
        goal: Constraint,
        max_pivots: int = 20_000,
        max_nodes: int = DEFAULT_BB_NODES,
    ) -> bool:
        """Γ ⊨ goal, via Γ ∧ ¬goal being integer-UNSAT."""
        if self._conflict_level is not None:
            return True  # ex falso
        normalized = goal.normalized()
        if normalized.is_trivial():
            return True
        if self._bounds_entail(normalized):
            return True
        negation = goal.negated().normalized()
        if negation.is_contradiction():
            return True  # the goal is a tautology
        goal_form: Optional[Tuple] = None
        if len(negation.coeffs) > 1:
            key = negation.coeffs
            if key[0][1] <= 0:
                key = tuple((atom, -coeff) for atom, coeff in key)
            if key in self._goal_forms:
                # Reuse the cached row; refresh its LRU position.
                del self._goal_forms[key]
                self._goal_forms[key] = None
            elif key not in self._forms:
                goal_form = key  # created for this goal: cache afterwards
        self.push()
        try:
            if negation.is_trivial():
                pass  # ¬goal is vacuous: entailed iff Γ itself is absurd
            elif not self.assert_constraint(negation):
                return True  # ¬goal contradicts an asserted bound
            return self.check_integer(max_pivots, max_nodes) == UNSAT
        finally:
            self.pop()
            if goal_form is not None and goal_form in self._forms:
                self._goal_forms[goal_form] = None
                self._evict_goal_forms()

    def _evict_goal_forms(self) -> None:
        while len(self._goal_forms) > GOAL_FORM_CACHE:
            form = next(iter(self._goal_forms))
            del self._goal_forms[form]
            slack = self._forms.get(form)
            if slack is None:
                continue
            if slack in self._lower or slack in self._upper:
                # Γ has since asserted a bound on this very form — it is
                # no longer goal-only state, so it stays for good.
                continue
            self._drop_form(form)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Cumulative work counters (flushed into ``EngineStats``)."""
        return {
            "simplex.pivots": self.pivots,
            "simplex.checks": self.checks,
            "simplex.branches": self.branches,
        }

    def clone(self) -> "Simplex":
        """An independent copy sharing nothing mutable.

        The tableau rows are copied shallowly per row (entries are
        plain ints), so deriving a child theory session from a parent
        costs O(tableau) — not a re-translation of Γ.
        """
        dup = Simplex.__new__(Simplex)
        dup._atom_vars = dict(self._atom_vars)
        dup._atom_of = dict(self._atom_of)
        dup._forms = dict(self._forms)
        dup._goal_forms = dict(self._goal_forms)
        dup._rows = {basic: dict(row) for basic, row in self._rows.items()}
        dup._dens = dict(self._dens)
        dup._cols = {var: set(basics) for var, basics in self._cols.items()}
        dup._lower = dict(self._lower)
        dup._upper = dict(self._upper)
        dup._beta = dict(self._beta)
        dup._next_var = self._next_var
        dup._violated = set(self._violated)
        dup._trail = [list(frame) for frame in self._trail]
        dup._conflict_level = self._conflict_level
        dup.pivots = self.pivots
        dup.checks = self.checks
        dup.branches = self.branches
        return dup
