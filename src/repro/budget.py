"""Request budgets: deadlines and cooperative cancellation.

The checking daemon serves every engine request on a single warm lane;
one pathological obligation (deep saturation, a huge bit-blasted goal)
would otherwise block every client forever.  A :class:`Budget` is the
cancellation token that prevents that: the daemon attaches one to each
job, activates it around the engine call, and the hot loops of the
kernel and the solver cores *tick* it — a counter decrement per
iteration, with a real clock read only every ``stride`` ticks, so the
checks are cheap enough for per-pivot / per-conflict / per-worklist-pop
placement.

When the deadline passes (or a watchdog fires :meth:`Budget.cancel`
from another thread), the next full check raises
:class:`DeadlineExceeded` / :class:`JobCancelled`.  The exception
unwinds through code that is already exception-safe by construction:

* ``Simplex.entails`` brackets its probe in ``push()``/``finally: pop()``,
  so aborting mid-pivot restores the tableau bounds;
* ``CDCL.solve`` backtracks to level 0 and re-enables gc in a
  ``finally`` (the same path its own conflict budget uses);
* ``Logic._proves_miss`` only caches *after* the kernel returns, so an
  aborted proof never poisons the memo or the persistent cache;
* partially-saturated environments are request-scoped snapshots that
  are simply dropped.

The active budget travels two ways: explicitly on the ``Logic`` façade
(``logic.budget``, set by :meth:`Logic.budgeted`) for the kernel
stages, and via a thread-local for the solver cores, which are built
standalone and have no back-pointer to the engine.  The engine lane is
single-threaded, so the thread-local is sound; budgets do **not**
cross the fork boundary into pool workers (the pool has its own
PID-level watchdog for that).
"""

from __future__ import annotations

import threading
import time

from contextlib import contextmanager
from typing import Dict, Optional

__all__ = [
    "Budget",
    "CancelledError",
    "DeadlineExceeded",
    "JobCancelled",
    "activate",
    "current_budget",
]


class CancelledError(Exception):
    """Base for cooperative aborts; always retryable at the protocol level."""

    code = "cancelled"
    retryable = True


class DeadlineExceeded(CancelledError):
    """The request's ``deadline_ms`` elapsed mid-proof."""

    code = "deadline_exceeded"


class JobCancelled(CancelledError):
    """The request was cancelled from outside (watchdog, shutdown)."""

    code = "cancelled"


class Budget:
    """Deadline + cancellation token with stride-amortised checks.

    ``tick()`` is designed for inner loops: it decrements a counter and
    only consults the clock every ``stride`` iterations.  ``check()``
    always consults it.  ``cancel()`` may be called from any thread —
    it only flips a bool, which is atomic under the GIL.
    """

    __slots__ = ("started", "deadline", "stride", "_credits", "_cancelled",
                 "_reason", "_stats")

    def __init__(self, deadline_ms: Optional[float] = None,
                 stride: int = 256) -> None:
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool) or deadline_ms <= 0
        ):
            raise ValueError("deadline_ms must be a positive number")
        self.started = time.monotonic()
        self.deadline = (
            None if deadline_ms is None else self.started + deadline_ms / 1000.0
        )
        self.stride = max(1, int(stride))
        self._credits = self.stride
        self._cancelled = False
        self._reason = ""
        self._stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    def bind_stats(self, rule_hits: Optional[Dict[str, int]]) -> None:
        """Record aborts into an ``EngineStats.rule_hits`` style dict."""
        self._stats = rule_hits

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        return self._reason

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_ms(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, (self.deadline - time.monotonic()) * 1000.0)

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.started) * 1000.0

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the budget; the owning thread aborts at its next check."""
        self._reason = reason or "cancelled"
        self._cancelled = True

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise if cancelled or past deadline.  Reads the clock."""
        if self._cancelled:
            self._count("budget.cancelled")
            raise JobCancelled(self._reason or "request cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._count("budget.deadline-exceeded")
            raise DeadlineExceeded(
                "deadline exceeded after %.0fms" % self.elapsed_ms()
            )

    def tick(self) -> None:
        """Amortised check: full ``check()`` every ``stride`` calls."""
        self._credits -= 1
        if self._credits <= 0:
            self._credits = self.stride
            self.check()

    def _count(self, key: str) -> None:
        stats = self._stats
        if stats is not None:
            stats[key] = stats.get(key, 0) + 1


# ----------------------------------------------------------------------
# Thread-local active budget (for the solver cores, which have no
# reference back to the Logic façade).
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def current_budget() -> Optional[Budget]:
    """The budget activated on this thread, if any."""
    return getattr(_ACTIVE, "budget", None)


@contextmanager
def activate(budget: Optional[Budget]):
    """Make ``budget`` the thread's current budget for the block."""
    previous = current_budget()
    _ACTIVE.budget = budget
    try:
        yield budget
    finally:
        _ACTIVE.budget = previous
