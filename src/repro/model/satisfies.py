"""The model relation ρ ⊨ ψ of Figure 8, for empirical soundness.

The paper proves soundness model-theoretically: a runtime environment ρ
*satisfies* a proposition when its assignment of values makes the
proposition a tautology (M-Top, M-And/M-Or, M-Alias, M-Type/M-TypeNot,
M-Refine, M-Theory...).  This module implements that relation on
concrete values so the test suite can check Lemma 2/Theorem 1 on real
executions: evaluate a well-typed expression and assert the resulting
value inhabits the assigned type, and that the matching then/else
proposition is satisfied.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..interp.values import Closure, PairV, PrimV, Value, VoidV
from ..tr.objects import (
    BVExpr,
    FieldRef,
    LinExpr,
    NullObj,
    Obj,
    PairObj,
    Var,
)
from ..tr.props import (
    Alias,
    And,
    BVProp,
    Congruence,
    FalseProp,
    IsType,
    LeqZero,
    NotType,
    Or,
    Prop,
    TrueProp,
)
from ..tr.subst import prop_subst
from ..tr.types import (
    FalseT,
    Fun,
    Int,
    Pair,
    Poly,
    Refine,
    Str,
    Top,
    TrueT,
    TVar,
    Type,
    Union,
    Vec,
    Void,
)

__all__ = ["value_has_type", "eval_obj", "satisfies", "Rho"]

Rho = Dict[str, Value]


def value_has_type(value: Value, ty: Type, rho: Optional[Rho] = None) -> bool:
    """``⊢ v : τ`` on closed values (used by M-Type).

    ``rho`` supplies values for any free variables a dependent type
    mentions (e.g. the ``x``/``y`` in max's range refinement).
    """
    rho = rho or {}
    if isinstance(ty, Top):
        return True
    if isinstance(ty, TVar):
        return True  # parametricity: a rigid variable constrains nothing here
    if isinstance(ty, Int):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(ty, TrueT):
        return value is True
    if isinstance(ty, FalseT):
        return value is False
    if isinstance(ty, Str):
        return isinstance(value, str)
    if isinstance(ty, Void):
        return isinstance(value, VoidV)
    if isinstance(ty, Pair):
        return (
            isinstance(value, PairV)
            and value_has_type(value.fst, ty.fst, rho)
            and value_has_type(value.snd, ty.snd, rho)
        )
    if isinstance(ty, Vec):
        return isinstance(value, list) and all(
            value_has_type(elem, ty.elem, rho) for elem in value
        )
    if isinstance(ty, Union):
        return any(value_has_type(value, member, rho) for member in ty.members)
    if isinstance(ty, (Fun, Poly)):
        return isinstance(value, (Closure, PrimV))
    if isinstance(ty, Refine):
        # M-Refine: satisfy the base type and the proposition with the
        # refinement variable bound to the value.
        if not value_has_type(value, ty.base, rho):
            return False
        inner = dict(rho)
        inner[ty.var] = value
        return satisfies(inner, ty.prop)
    raise TypeError(f"cannot judge {ty!r}")


def eval_obj(rho: Rho, obj: Obj) -> Optional[Value]:
    """ρ(o): the value an object denotes, or None if ρ cannot say."""
    if isinstance(obj, NullObj):
        return None
    if isinstance(obj, Var):
        return rho.get(obj.name)
    if isinstance(obj, FieldRef):
        base = eval_obj(rho, obj.base)
        if base is None:
            return None
        if obj.field == "fst":
            return base.fst if isinstance(base, PairV) else None
        if obj.field == "snd":
            return base.snd if isinstance(base, PairV) else None
        if obj.field == "len":
            return len(base) if isinstance(base, (list, str)) else None
        return None
    if isinstance(obj, PairObj):
        fst = eval_obj(rho, obj.fst)
        snd = eval_obj(rho, obj.snd)
        if fst is None or snd is None:
            return None
        return PairV(fst, snd)
    if isinstance(obj, LinExpr):
        total = obj.const
        for atom, coeff in obj.terms:
            value = eval_obj(rho, atom)
            if not isinstance(value, int) or isinstance(value, bool):
                return None
            total += coeff * value
        return total
    if isinstance(obj, BVExpr):
        args = []
        for arg in obj.args:
            if isinstance(arg, int):
                args.append(arg)
            else:
                value = eval_obj(rho, arg)
                if not isinstance(value, int) or isinstance(value, bool):
                    return None
                args.append(value)
        return _bv_semantics(obj.op, args, obj.width)
    return None


def _bv_semantics(op: str, args, width: int) -> Optional[int]:
    """Integer-level semantics of bitvector terms (matches δ)."""
    if op == "and":
        return args[0] & args[1]
    if op == "or":
        return args[0] | args[1]
    if op == "xor":
        return args[0] ^ args[1]
    if op == "not":
        return (~args[0]) & ((1 << width) - 1)
    if op == "add":
        return args[0] + args[1]
    if op == "mul":
        return args[0] * args[1]
    if op == "shl":
        return args[0] << args[1]
    if op == "lshr":
        return args[0] >> args[1]
    return None


def satisfies(rho: Rho, prop: Prop) -> bool:
    """ρ ⊨ ψ (Figure 8's model relation).

    Conservative on missing information: a proposition whose objects ρ
    cannot evaluate is deemed satisfied (it speaks about terms outside
    the model, like the paper's discarded null-object propositions).
    """
    if isinstance(prop, TrueProp):
        return True
    if isinstance(prop, FalseProp):
        return False
    if isinstance(prop, And):
        return all(satisfies(rho, c) for c in prop.conjuncts)
    if isinstance(prop, Or):
        return any(satisfies(rho, d) for d in prop.disjuncts)
    if isinstance(prop, IsType):
        value = eval_obj(rho, prop.obj)
        if value is None:
            return True
        return value_has_type(value, prop.type, rho)
    if isinstance(prop, NotType):
        value = eval_obj(rho, prop.obj)
        if value is None:
            return True
        return not value_has_type(value, prop.type, rho)
    if isinstance(prop, Alias):
        left = eval_obj(rho, prop.left)
        right = eval_obj(rho, prop.right)
        if left is None or right is None:
            return True
        return left is right or left == right
    if isinstance(prop, LeqZero):
        value = eval_obj(rho, prop.expr)
        if value is None:
            return True
        return value <= 0
    if isinstance(prop, Congruence):
        value = eval_obj(rho, prop.obj)
        if value is None:
            return True
        return value % prop.modulus == prop.residue % prop.modulus
    if isinstance(prop, BVProp):
        left = eval_obj(rho, prop.lhs)
        right = eval_obj(rho, prop.rhs)
        if left is None or right is None:
            return True
        return {
            "=": left == right,
            "≠": left != right,
            "≤": left <= right,
            "<": left < right,
            "≥": left >= right,
            ">": left > right,
        }.get(prop.op, True)
    return True  # unknown/unrefutable atoms constrain nothing in the model
