"""The model relation ρ ⊨ ψ (Fig. 8), for empirical soundness."""

from .satisfies import eval_obj, satisfies, value_has_type

__all__ = ["value_has_type", "satisfies", "eval_obj"]
