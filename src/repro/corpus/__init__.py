"""The synthetic §5 corpus: idiom templates and library profiles."""

from .generator import Library, build_all_libraries, build_library
from .profiles import PROFILES

__all__ = ["Library", "build_library", "build_all_libraries", "PROFILES"]
