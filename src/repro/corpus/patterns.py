"""Vector-access idiom templates for the synthetic corpus (section 5).

The paper's corpus is three real Typed Racket libraries; this
reproduction generates programs exercising the same idiom families the
paper catalogues, and lets the *actual* checker decide each access:

auto tier (verified with no changes — §5's 50%+):
  * ``vec_match``       — pattern matching on vectors (plot's dominant idiom)
  * ``loop_sum``        — loops bounded by a vector's length
  * ``guard``           — explicit 0 ≤ i < len guards
  * ``dyn_check``       — dot-product with an `unless`-guard (§2.1)
  * ``last_elem``       — (len v) - 1 under a non-empty guard
  * ``mod_index``       — (modulo h (len v)) hashing under a non-empty guard
  * ``clamp_index``     — (min i (len-1)) clamping under a non-empty guard
  * ``pairwise``        — adjacent-element loops bounded by len - 1
  * ``write_loop``      — vec-set! fill loops bounded by the length

annotation tier (§5.1 "Annotations added", 34% of math):
  * ``nat_loop``        — the §5.1 recursive product loop: `Nat` is too
                          weak; `(Refine [i : Nat] (≤ i (len ds)))` fixes it
  * ``index_param``     — an index parameter missing its lower bound
  * ``offset_param``    — a raw index parameter needing a #:where domain
  * ``guarded_offset``  — an upper guard on k, but k+1's lower bound
                          needs a Nat annotation

modification tier (§5.1 "Code modified", 13% of math):
  * ``swap``            — vec-swap!: add well-placed dynamic checks (§5.1)
  * ``reverse_loop``    — reverse iteration defeats the Nat heuristic
                          (§4.4); rewriting forward fixes it
  * ``const_index``     — a constant index needing a length guard

residue (never verified; categories from §5.1):
  * ``nonlinear``       — beyond scope: a non-linear index expression
  * ``dims_of``         — beyond scope: length relationships through
                          higher-order structure
  * ``struct_field``    — unimplemented feature: dependent record fields
  * ``mutable_cache``   — unsafe: a guard over a mutable cache (§4.2)

Each instance reports its access count and, for residue accesses, the
category label the paper's authors assigned by manual inspection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["PatternInstance", "PATTERNS", "TIER_POOLS", "instantiate"]

AUTO = "auto"
ANNOTATION = "annotation"
MODIFICATION = "modification"
BEYOND = "beyond-scope"
UNIMPLEMENTED = "unimplemented"
UNSAFE = "unsafe"


@dataclass(frozen=True)
class PatternInstance:
    """One generated program with its variants and expected access tiers."""

    pattern: str
    name: str
    base: str
    annotated: Optional[str]
    modified: Optional[str]
    #: expected tier per access, in pre-order position of the access
    #: in the *expanded* program (same order in every variant).
    expected: Tuple[str, ...]

    @property
    def accesses(self) -> int:
        return len(self.expected)


# ----------------------------------------------------------------------
# auto tier
# ----------------------------------------------------------------------
def pat_vec_match(rng: random.Random, uid: str) -> PatternInstance:
    arity = rng.randint(2, 4)
    names = [f"x{i}" for i in range(arity)]
    body = names[0]
    for name in names[1:]:
        body = f"(+ {body} {name})"
    src = f"""
(: vm{uid} : (Vecof Int) -> Int)
(define (vm{uid} v)
  (vec-match v [({' '.join(names)}) {body}] [else {rng.randint(0, 9)}]))
"""
    return PatternInstance("vec_match", f"vm{uid}", src, None, None, (AUTO,) * arity)


def pat_loop_sum(rng: random.Random, uid: str) -> PatternInstance:
    offset = rng.randint(1, 9)
    src = f"""
(: ls{uid} : (Vecof Int) -> Int)
(define (ls{uid} v)
  (for/sum ([i (in-range (len v))])
    (+ (vec-ref v i) {offset})))
"""
    return PatternInstance("loop_sum", f"ls{uid}", src, None, None, (AUTO,))


def pat_guard(rng: random.Random, uid: str) -> PatternInstance:
    default = rng.randint(0, 99)
    src = f"""
(: gd{uid} : (Vecof Int) Int -> Int)
(define (gd{uid} v i)
  (if (and (<= 0 i) (< i (len v)))
      (vec-ref v i)
      {default}))
"""
    return PatternInstance("guard", f"gd{uid}", src, None, None, (AUTO,))


def pat_dyn_check(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(: dc{uid} : (Vecof Int) (Vecof Int) -> Int)
(define (dc{uid} A B)
  (unless (= (len A) (len B))
    (error "invalid vector lengths!"))
  (for/sum ([i (in-range (len A))])
    (* (vec-ref A i) (vec-ref B i))))
"""
    return PatternInstance("dyn_check", f"dc{uid}", src, None, None, (AUTO, AUTO))


def pat_last_elem(rng: random.Random, uid: str) -> PatternInstance:
    default = rng.randint(0, 9)
    src = f"""
(: le{uid} : (Vecof Int) -> Int)
(define (le{uid} v)
  (if (< 0 (len v))
      (vec-ref v (- (len v) 1))
      {default}))
"""
    return PatternInstance("last_elem", f"le{uid}", src, None, None, (AUTO,))


def pat_clamp_index(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(: cl{uid} : (Vecof Int) Nat -> Int)
(define (cl{uid} v i)
  (if (< 0 (len v))
      (vec-ref v (min i (- (len v) 1)))
      {rng.randint(0, 9)}))
"""
    return PatternInstance("clamp_index", f"cl{uid}", src, None, None, (AUTO,))


def pat_pairwise(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(: pw{uid} : (Vecof Int) -> Int)
(define (pw{uid} v)
  (for/sum ([i (in-range (- (len v) 1))])
    (+ (vec-ref v i) (vec-ref v (+ i 1)))))
"""
    return PatternInstance("pairwise", f"pw{uid}", src, None, None, (AUTO, AUTO))


def pat_write_loop(rng: random.Random, uid: str) -> PatternInstance:
    fill = rng.randint(0, 99)
    src = f"""
(: wl{uid} : (Vecof Int) -> Void)
(define (wl{uid} v)
  (for ([i (in-range (len v))])
    (vec-set! v i {fill})))
"""
    return PatternInstance("write_loop", f"wl{uid}", src, None, None, (AUTO,))


def pat_mod_index(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(: mi{uid} : (Vecof Int) Int -> Int)
(define (mi{uid} v h)
  (if (< 0 (len v))
      (vec-ref v (modulo h (len v)))
      {rng.randint(0, 9)}))
"""
    return PatternInstance("mod_index", f"mi{uid}", src, None, None, (AUTO,))


# ----------------------------------------------------------------------
# annotation tier
# ----------------------------------------------------------------------
def pat_nat_loop(rng: random.Random, uid: str) -> PatternInstance:
    base = f"""
(: nl{uid} : (Vecof Int) -> Int)
(define (nl{uid} ds)
  (let loop ([i : Nat (len ds)] [res : Int 1])
    (cond
      [(zero? i) res]
      [else (loop (- i 1) (* res (vec-ref ds (- i 1))))])))
"""
    annotated = f"""
(: nl{uid} : (Vecof Int) -> Int)
(define (nl{uid} ds)
  (let loop ([i : (Refine [i : Nat] (<= i (len ds))) (len ds)] [res : Int 1])
    (cond
      [(zero? i) res]
      [else (loop (- i 1) (* res (vec-ref ds (- i 1))))])))
"""
    return PatternInstance("nat_loop", f"nl{uid}", base, annotated, None, (ANNOTATION,))


def pat_index_param(rng: random.Random, uid: str) -> PatternInstance:
    default = rng.randint(0, 9)
    base = f"""
(: ip{uid} : [v : (Vecof Int)] [i : Int] -> Int)
(define (ip{uid} v i)
  (if (< i (len v)) (vec-ref v i) {default}))
"""
    annotated = f"""
(: ip{uid} : [v : (Vecof Int)] [i : Nat] -> Int)
(define (ip{uid} v i)
  (if (< i (len v)) (vec-ref v i) {default}))
"""
    return PatternInstance(
        "index_param", f"ip{uid}", base, annotated, None, (ANNOTATION,)
    )


def pat_guarded_offset(rng: random.Random, uid: str) -> PatternInstance:
    base = f"""
(: go{uid} : (Vecof Int) Int -> Int)
(define (go{uid} v k)
  (if (< k (- (len v) 1))
      (vec-ref v (+ k 1))
      0))
"""
    annotated = f"""
(: go{uid} : [v : (Vecof Int)] [k : Nat] -> Int)
(define (go{uid} v k)
  (if (< k (- (len v) 1))
      (vec-ref v (+ k 1))
      0))
"""
    return PatternInstance(
        "guarded_offset", f"go{uid}", base, annotated, None, (ANNOTATION,)
    )


def pat_offset_param(rng: random.Random, uid: str) -> PatternInstance:
    base = f"""
(: op{uid} : [v : (Vecof Int)] [i : Int] -> Int)
(define (op{uid} v i) (vec-ref v i))
"""
    annotated = f"""
(: op{uid} : [v : (Vecof Int)]
             [i : Int #:where (and (<= 0 i) (< i (len v)))] -> Int)
(define (op{uid} v i) (vec-ref v i))
"""
    return PatternInstance(
        "offset_param", f"op{uid}", base, annotated, None, (ANNOTATION,)
    )


# ----------------------------------------------------------------------
# modification tier
# ----------------------------------------------------------------------
def pat_swap(rng: random.Random, uid: str) -> PatternInstance:
    base = f"""
(: sw{uid} : (Vecof Int) Int Int -> Void)
(define (sw{uid} vs i j)
  (unless (= i j)
    (let ([i-val (vec-ref vs i)])
      (let ([j-val (vec-ref vs j)])
        (vec-set! vs i j-val)
        (vec-set! vs j i-val)))))
"""
    modified = f"""
(: sw{uid} : (Vecof Int) Int Int -> Void)
(define (sw{uid} vs i j)
  (unless (= i j)
    (cond
      [(and (< -1 i (len vs))
            (< -1 j (len vs)))
       (let ([i-val (vec-ref vs i)])
         (let ([j-val (vec-ref vs j)])
           (vec-set! vs i j-val)
           (vec-set! vs j i-val)))]
      [else (error "bad index(s)!")])))
"""
    return PatternInstance(
        "swap", f"sw{uid}", base, None, modified, (MODIFICATION,) * 4
    )


def pat_reverse_loop(rng: random.Random, uid: str) -> PatternInstance:
    base = f"""
(: rl{uid} : (Vecof Int) -> Int)
(define (rl{uid} A)
  (for/sum ([i (in-range (- (len A) 1) -1 -1)])
    (vec-ref A i)))
"""
    modified = f"""
(: rl{uid} : (Vecof Int) -> Int)
(define (rl{uid} A)
  (for/sum ([i (in-range (len A))])
    (vec-ref A i)))
"""
    return PatternInstance(
        "reverse_loop", f"rl{uid}", base, None, modified, (MODIFICATION,)
    )


def pat_const_index(rng: random.Random, uid: str) -> PatternInstance:
    k = rng.randint(2, 6)
    base = f"""
(: ci{uid} : (Vecof Int) -> Int)
(define (ci{uid} v) (vec-ref v {k}))
"""
    modified = f"""
(: ci{uid} : (Vecof Int) -> Int)
(define (ci{uid} v)
  (if (< {k} (len v)) (vec-ref v {k}) (error "too short")))
"""
    return PatternInstance(
        "const_index", f"ci{uid}", base, None, modified, (MODIFICATION,)
    )


# ----------------------------------------------------------------------
# residue: beyond scope / unimplemented / unsafe
# ----------------------------------------------------------------------
def pat_nonlinear(rng: random.Random, uid: str) -> PatternInstance:
    default = rng.randint(0, 9)
    src = f"""
(: bs{uid} : [v : (Vecof Int)] [i : Nat] [j : Nat] -> Int)
(define (bs{uid} v i j)
  (if (< (* i j) (len v))
      (vec-ref v (* i j))
      {default}))
"""
    return PatternInstance("nonlinear", f"bs{uid}", src, None, None, (BEYOND,))


def pat_dims_of(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(: do{uid} : [v : (Vecof Int)] [dims : Int] -> Int)
(define (do{uid} v dims)
  (if (< 0 dims)
      (vec-ref v (- dims 1))
      0))
"""
    return PatternInstance("dims_of", f"do{uid}", src, None, None, (BEYOND,))


def pat_struct_field(rng: random.Random, uid: str) -> PatternInstance:
    src = f"""
(struct Cfg{uid} (size))
(: sf{uid} : [v : (Vecof Int)] [c : Any] -> Int)
(define (sf{uid} v c)
  (let ([n (Cfg{uid}-size c)])
    (if (and (int? n) (<= 0 n) (< n (len v)))
        (vec-ref v n)
        0)))
"""
    return PatternInstance(
        "struct_field", f"sf{uid}", src, None, None, (UNIMPLEMENTED,)
    )


def pat_mutable_cache(rng: random.Random, uid: str) -> PatternInstance:
    initial = rng.randint(4, 64)
    src = f"""
(define cache{uid} {initial})
(: mc{uid} : (Vecof Int) Int -> Int)
(define (mc{uid} v n)
  (set! cache{uid} (len v))
  (if (and (<= 0 n) (< n cache{uid}) (= cache{uid} (len v)))
      (vec-ref v n)
      0))
"""
    return PatternInstance("mutable_cache", f"mc{uid}", src, None, None, (UNSAFE,))


PATTERNS: Dict[str, Callable[[random.Random, str], PatternInstance]] = {
    "vec_match": pat_vec_match,
    "loop_sum": pat_loop_sum,
    "guard": pat_guard,
    "dyn_check": pat_dyn_check,
    "last_elem": pat_last_elem,
    "mod_index": pat_mod_index,
    "clamp_index": pat_clamp_index,
    "pairwise": pat_pairwise,
    "write_loop": pat_write_loop,
    "guarded_offset": pat_guarded_offset,
    "nat_loop": pat_nat_loop,
    "index_param": pat_index_param,
    "offset_param": pat_offset_param,
    "swap": pat_swap,
    "reverse_loop": pat_reverse_loop,
    "const_index": pat_const_index,
    "nonlinear": pat_nonlinear,
    "dims_of": pat_dims_of,
    "struct_field": pat_struct_field,
    "mutable_cache": pat_mutable_cache,
}

#: which templates may fill which tier quota
TIER_POOLS: Dict[str, Tuple[str, ...]] = {
    AUTO: (
        "vec_match", "loop_sum", "guard", "dyn_check", "last_elem",
        "mod_index", "clamp_index", "pairwise", "write_loop",
    ),
    ANNOTATION: ("nat_loop", "index_param", "offset_param", "guarded_offset"),
    MODIFICATION: ("swap", "reverse_loop", "const_index"),
    BEYOND: ("nonlinear", "dims_of"),
    UNIMPLEMENTED: ("struct_field",),
    UNSAFE: ("mutable_cache",),
}


def instantiate(pattern: str, rng: random.Random, uid: str) -> PatternInstance:
    return PATTERNS[pattern](rng, uid)
