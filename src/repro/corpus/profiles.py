"""Per-library corpus profiles matching the paper's section 5 data.

The paper analysed three libraries:

====== ======== ================== =========================================
lib    LoC      unique vector ops  provenance
====== ======== ================== =========================================
math   22,503   301                Racket standard library (number theory …)
plot   14,987   655                Racket standard library (2D/3D plotting)
pict3d 19,345   129                purely functional 3D engine
====== ======== ================== =========================================

and reported (Figure 9, §5.1) per-library verification tiers.  Each
profile here fixes the number of access *sites* per idiom tier so the
generated library has the paper's op count and an idiom mix that the
real checker should classify in the paper's proportions: the paper's
percentages describe the idiom composition of the library, and the
reproduction measures whether our checker actually delivers each tier.

plot and pict3d received only a "preliminary review" in the paper, so
only their automatic and annotated tiers are reported there; the rest
of their ops are residue (beyond scope for our purposes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .patterns import (
    PatternInstance,
)

__all__ = ["LibraryProfile", "PROFILES", "PAPER_FIGURE9", "PAPER_CORPUS"]

AUTO = "auto"
ANNOTATION = "annotation"
MODIFICATION = "modification"
BEYOND = "beyond-scope"
UNIMPLEMENTED = "unimplemented"
UNSAFE = "unsafe"


@dataclass(frozen=True)
class LibraryProfile:
    """Generation targets for one synthetic library."""

    name: str
    loc_target: int
    #: vector-ops target per tier; sums to the paper's unique-op count.
    tier_ops: Dict[str, int]
    seed: int

    @property
    def total_ops(self) -> int:
        return sum(self.tier_ops.values())


# Tier op counts are the paper's Figure 9 / §5.1 percentages applied to
# each library's unique-op count (math: 25/34/13/22/6 % and 2 unsafe ops).
PROFILES: Dict[str, LibraryProfile] = {
    "math": LibraryProfile(
        name="math",
        loc_target=22_503,
        tier_ops={
            AUTO: 75,          # 25%
            ANNOTATION: 102,   # 34%
            MODIFICATION: 39,  # 13%
            BEYOND: 65,        # 22% (adjusted to make the total 301)
            UNIMPLEMENTED: 18, # 6%
            UNSAFE: 2,         # "2 vector operations" (§5.1, Unsafe code)
        },
        seed=1600,
    ),
    "plot": LibraryProfile(
        name="plot",
        loc_target=14_987,
        tier_ops={
            AUTO: 485,         # 74%
            ANNOTATION: 39,    # 6%
            MODIFICATION: 0,
            BEYOND: 111,
            UNIMPLEMENTED: 16,
            UNSAFE: 4,
        },
        seed=1601,
    ),
    "pict3d": LibraryProfile(
        name="pict3d",
        loc_target=19_345,
        tier_ops={
            AUTO: 17,          # 13%
            ANNOTATION: 43,    # 33%
            MODIFICATION: 0,
            BEYOND: 60,
            UNIMPLEMENTED: 9,
            UNSAFE: 0,
        },
        seed=1602,
    ),
}

#: The paper's Figure 9 numbers (percent of each library's vector ops).
PAPER_FIGURE9: Dict[str, Dict[str, float]] = {
    "plot": {"auto": 74.0, "annotation": 6.0, "modification": 0.0},
    "pict3d": {"auto": 13.0, "annotation": 33.0, "modification": 0.0},
    "math": {"auto": 25.0, "annotation": 34.0, "modification": 13.0},
}

#: The paper's in-text corpus statistics (§5).
PAPER_CORPUS: Dict[str, Tuple[int, int]] = {
    "math": (22_503, 301),
    "plot": (14_987, 655),
    "pict3d": (19_345, 129),
}
