"""Deterministic corpus generation from a library profile.

``build_library`` instantiates idiom templates until each tier's
vector-op quota is met, then pads with access-free filler functions
(arithmetic/pair/string helpers in the style of real library code)
until the LoC target is reached.  Everything is seeded, so the corpus
— and therefore the whole case study — is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .patterns import PatternInstance, TIER_POOLS, instantiate
from .profiles import PROFILES, LibraryProfile

__all__ = ["Library", "build_library", "build_all_libraries", "count_loc"]


def count_loc(source: str) -> int:
    """Non-blank source lines (matching how library LoC is reported)."""
    return sum(1 for line in source.splitlines() if line.strip())


@dataclass
class Library:
    """A generated corpus library."""

    name: str
    profile: LibraryProfile
    programs: List[PatternInstance]
    fillers: List[str]

    @property
    def ops(self) -> int:
        return sum(program.accesses for program in self.programs)

    @property
    def loc(self) -> int:
        total = sum(count_loc(p.base) for p in self.programs)
        total += sum(count_loc(f) for f in self.fillers)
        return total

    def tier_targets(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for program in self.programs:
            for tier in program.expected:
                out[tier] = out.get(tier, 0) + 1
        return out


_FILLER_TEMPLATES = (
    """
(: {name} : Int Int -> Int)
(define ({name} a b)
  (+ (* {c1} a) (- b {c2})))
""",
    """
(: {name} : Int -> Int)
(define ({name} x)
  (if (< x {c1}) (+ x {c2}) (- x {c2})))
""",
    """
(: {name} : Int Int -> Int)
(define ({name} lo hi)
  (max lo (min hi {c1})))
""",
    """
(: {name} : (Pairof Int Int) -> Int)
(define ({name} p)
  (+ (fst p) (* {c1} (snd p))))
""",
    """
(: {name} : Int -> Bool)
(define ({name} n)
  (and (<= {c1} n) (< n {c2})))
""",
    """
(: {name} : Int Int Int -> Int)
(define ({name} a b c)
  (+ (abs (- a b)) (modulo c {c1})))
""",
)


def _make_filler(rng: random.Random, uid: str) -> str:
    template = rng.choice(_FILLER_TEMPLATES)
    c1 = rng.randint(1, 64)
    return template.format(name=f"h{uid}", c1=c1, c2=c1 + rng.randint(1, 64))


def _stream(profile: LibraryProfile, label: str) -> random.Random:
    """A dedicated RNG stream for one tier (or the filler pass).

    String seeding goes through SHA-512 in CPython, so streams are
    stable across processes and ``PYTHONHASHSEED`` values, and every
    stream is a pure function of ``(profile.seed, label)`` — content
    generated for one tier can never depend on how much randomness
    another tier consumed, nor on the ``tier_ops`` dict's insertion
    order.
    """
    return random.Random(f"{profile.seed}/{label}")


def build_library(profile: LibraryProfile) -> Library:
    """Generate one library exactly meeting its per-tier op quotas.

    Byte-for-byte deterministic for a fixed seed: tiers are visited in
    sorted order, each tier (and the filler pass) draws from its own
    seeded stream, and uids are scoped per tier.
    """
    programs: List[PatternInstance] = []

    for tier in sorted(profile.tier_ops):
        target = profile.tier_ops[tier]
        rng = _stream(profile, tier)
        uid_counter = 0
        produced = 0
        pool = TIER_POOLS[tier]
        pool_index = 0
        while produced < target:
            remaining = target - produced
            # Round-robin the pool, but skip templates whose access count
            # would overshoot the quota.
            for _ in range(len(pool) + 1):
                pattern = pool[pool_index % len(pool)]
                pool_index += 1
                uid_counter += 1
                candidate = instantiate(
                    pattern, rng, f"_{profile.name}_{tier}_{uid_counter}"
                )
                if candidate.accesses <= remaining:
                    programs.append(candidate)
                    produced += candidate.accesses
                    break
            else:  # every template overshoots: take the smallest
                smallest = min(
                    (instantiate(
                        p, rng, f"_{profile.name}_{tier}_{uid_counter}_{k}")
                     for k, p in enumerate(pool)),
                    key=lambda inst: inst.accesses,
                )
                programs.append(smallest)
                produced += smallest.accesses

    library = Library(profile.name, profile, programs, [])
    filler_rng = _stream(profile, "filler")
    filler_uid = 0
    current_loc = sum(count_loc(p.base) for p in programs)
    while current_loc < profile.loc_target:
        filler_uid += 1
        filler = _make_filler(filler_rng, f"_{profile.name}_f{filler_uid}")
        library.fillers.append(filler)
        current_loc += count_loc(filler)
    return library


def build_all_libraries(scale: float = 1.0) -> Dict[str, Library]:
    """Build every profiled library; ``scale`` shrinks quotas for tests."""
    out: Dict[str, Library] = {}
    for name, profile in sorted(PROFILES.items()):
        if scale != 1.0:
            scaled = LibraryProfile(
                name=profile.name,
                loc_target=max(1, int(profile.loc_target * scale)),
                tier_ops={
                    tier: max(1, round(count * scale)) if count else 0
                    for tier, count in profile.tier_ops.items()
                },
                seed=profile.seed,
            )
            out[name] = build_library(scaled)
        else:
            out[name] = build_library(profile)
    return out
