"""S-expression reader for the RTR surface language.

The reader turns program text into a tree of Python values:

* symbols   -> :class:`Symbol`
* integers  -> :class:`int`
* booleans  -> :class:`bool` (``#t``/``#true``, ``#f``/``#false``)
* hex bytes -> :class:`int` (``#x1b`` style bitvector literals)
* strings   -> :class:`str`
* lists     -> :class:`list` (``(...)`` and ``[...]`` both read as lists,
  matching Racket's convention that brackets are interchangeable)

The hot path is a single regex pass that splits the text into a token
list; line/column information is recovered lazily (by counting
newlines up to the token offset) only when an error is reported, so
well-formed input pays nothing for location tracking.
"""

from __future__ import annotations

import re

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

__all__ = [
    "Symbol",
    "ReaderError",
    "read",
    "read_all",
    "read_many",
]


class ReaderError(SyntaxError):
    """Raised when the input text is not a well-formed S-expression."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Symbol:
    """An interned-by-value Racket symbol.

    Symbols compare by name so they can be used directly as dictionary
    keys in the parser's dispatch tables.
    """

    name: str

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


SExp = Union[Symbol, int, bool, str, list]

_DELIMS = {"(": ")", "[": "]", "{": "}"}

#: One alternative per token shape.  Order matters: block comments and
#: quotes must come before the catch-all atom class (``#`` and ``'``
#: are legal *inside* an atom, so only a match at token start makes
#: them special — exactly the behaviour of the old char-at-a-time
#: reader).  Every character matches some alternative, so the
#: tokenizer can never stall.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\n\r\f\v]+)
    | (?P<comment>;[^\n]*)
    | (?P<open>[(\[{])
    | (?P<close>[)\]}])
    | (?P<string>"(?:[^"\\]|\\[\s\S])*")
    | (?P<badstring>")
    | (?P<blockcomment>\#\|)
    | (?P<quote>')
    | (?P<atom>[^()\[\]{}"'; \t\n\r\f\v][^()\[\]{}"; \t\n\r\f\v]*)
    """,
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r"\\([\s\S])")
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}


def _location(text: str, pos: int) -> Tuple[int, int]:
    line = text.count("\n", 0, pos) + 1
    column = pos - text.rfind("\n", 0, pos)
    return line, column


def _error(text: str, message: str, pos: int) -> ReaderError:
    line, column = _location(text, pos)
    return ReaderError(message, line, column)


def _unescape(match: "re.Match[str]") -> str:
    ch = match.group(1)
    return _ESCAPES.get(ch, ch)


def _skip_block_comment(text: str, pos: int) -> int:
    """Skip a (nested) ``#| ... |#`` comment; return the end offset."""
    start = pos
    depth = 0
    n = len(text)
    while pos < n:
        two = text[pos : pos + 2]
        if two == "#|":
            depth += 1
            pos += 2
        elif two == "|#":
            depth -= 1
            pos += 2
            if depth == 0:
                return pos
        else:
            pos += 1
    raise _error(text, "unterminated block comment", start)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """Split ``text`` into ``(kind, lexeme, offset)`` tokens.

    ``kind`` is one of ``"("``, ``")"``, ``"a"`` (atom), ``"s"``
    (string, already unescaped) or ``"'"`` (quote).
    """
    tokens: List[Tuple[str, str, int]] = []
    append = tokens.append
    match = _TOKEN_RE.match
    pos = 0
    n = len(text)
    while pos < n:
        m = match(text, pos)
        kind = m.lastgroup
        if kind == "atom":
            append(("a", m.group(), pos))
        elif kind == "open":
            append(("(", m.group(), pos))
        elif kind == "close":
            append((")", m.group(), pos))
        elif kind == "string":
            body = m.group()[1:-1]
            if "\\" in body:
                body = _ESCAPE_RE.sub(_unescape, body)
            append(("s", body, pos))
        elif kind == "quote":
            append(("'", "'", pos))
        elif kind == "blockcomment":
            pos = _skip_block_comment(text, pos)
            continue
        elif kind == "badstring":
            raise _error(text, "unterminated string", pos)
        # ws / comment: skip
        pos = m.end()
    return tokens


def _parse_atom(text: str, lexeme: str, pos: int) -> SExp:
    if lexeme in ("#t", "#true", "#T"):
        return True
    if lexeme in ("#f", "#false", "#F"):
        return False
    if lexeme.startswith(("#x", "#X")):
        try:
            return int(lexeme[2:], 16)
        except ValueError:
            raise _error(text, f"bad hex literal {lexeme!r}", pos) from None
    if lexeme.startswith(("#b", "#B")):
        try:
            return int(lexeme[2:], 2)
        except ValueError:
            raise _error(text, f"bad binary literal {lexeme!r}", pos) from None
    try:
        return int(lexeme)
    except ValueError:
        pass
    return Symbol(lexeme)


def _read_datum(
    text: str, tokens: List[Tuple[str, str, int]], i: int
) -> Tuple[SExp, int]:
    if i >= len(tokens):
        raise _error(text, "unexpected end of input", len(text))
    kind, lexeme, pos = tokens[i]
    if kind == "a":
        return _parse_atom(text, lexeme, pos), i + 1
    if kind == "s":
        return lexeme, i + 1
    if kind == "(":
        closer = _DELIMS[lexeme]
        items: List[SExp] = []
        j = i + 1
        while True:
            if j >= len(tokens):
                raise _error(text, "unclosed parenthesis", pos)
            nkind, nlex, npos = tokens[j]
            if nkind == ")":
                if nlex != closer:
                    raise _error(
                        text,
                        f"mismatched delimiter: expected {closer!r}, got {nlex!r}",
                        npos,
                    )
                return items, j + 1
            item, j = _read_datum(text, tokens, j)
            items.append(item)
    if kind == ")":
        raise _error(text, f"unexpected {lexeme!r}", pos)
    # kind == "'"
    datum, j = _read_datum(text, tokens, i + 1)
    return [Symbol("quote"), datum], j


def read(text: str) -> SExp:
    """Read a single S-expression from ``text``.

    Raises :class:`ReaderError` if there is no datum or if there is
    trailing (non-comment) input after the first datum.
    """
    tokens = _tokenize(text)
    datum, i = _read_datum(text, tokens, 0)
    if i < len(tokens):
        raise _error(text, "unexpected trailing input", tokens[i][2])
    return datum


def read_many(text: str) -> Iterator[SExp]:
    """Yield every top-level datum in ``text``."""
    tokens = _tokenize(text)
    i = 0
    while i < len(tokens):
        datum, i = _read_datum(text, tokens, i)
        yield datum


def read_all(text: str) -> List[SExp]:
    """Read every top-level datum in ``text`` into a list."""
    tokens = _tokenize(text)
    out: List[SExp] = []
    i = 0
    while i < len(tokens):
        datum, i = _read_datum(text, tokens, i)
        out.append(datum)
    return out
