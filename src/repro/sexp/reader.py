"""S-expression reader for the RTR surface language.

The reader turns program text into a tree of Python values:

* symbols   -> :class:`Symbol`
* integers  -> :class:`int`
* booleans  -> :class:`bool` (``#t``/``#true``, ``#f``/``#false``)
* hex bytes -> :class:`int` (``#x1b`` style bitvector literals)
* strings   -> :class:`str`
* lists     -> :class:`list` (``(...)`` and ``[...]`` both read as lists,
  matching Racket's convention that brackets are interchangeable)

Every datum carries an optional source location (line, column) used in
error messages; locations are attached via the :class:`Syntax` wrapper
only when requested, so plain reads produce plain Python data that is
easy to pattern-match in the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

__all__ = [
    "Symbol",
    "ReaderError",
    "read",
    "read_all",
    "read_many",
]


class ReaderError(SyntaxError):
    """Raised when the input text is not a well-formed S-expression."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Symbol:
    """An interned-by-value Racket symbol.

    Symbols compare by name so they can be used directly as dictionary
    keys in the parser's dispatch tables.
    """

    name: str

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


SExp = Union[Symbol, int, bool, str, list]

_DELIMS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = {")", "]", "}"}
_WHITESPACE = " \t\n\r\f\v"
# Characters that terminate an atom.
_TERMINATORS = set(_WHITESPACE) | set(_DELIMS) | _CLOSERS | {'"', ";"}


class _Tokenizer:
    """Single-pass tokenizer with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> ReaderError:
        return ReaderError(message, self.line, self.column)

    def peek(self) -> Optional[str]:
        if self.pos >= len(self.text):
            return None
        return self.text[self.pos]

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def skip_atmosphere(self) -> None:
        """Skip whitespace and ``;`` line comments."""
        while True:
            ch = self.peek()
            if ch is None:
                return
            if ch in _WHITESPACE:
                self.advance()
            elif ch == ";":
                while self.peek() not in (None, "\n"):
                    self.advance()
            elif ch == "#" and self.text.startswith("#|", self.pos):
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        depth = 0
        while True:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated block comment", start_line, start_col)
            if self.text.startswith("#|", self.pos):
                depth += 1
                self.advance()
                self.advance()
            elif self.text.startswith("|#", self.pos):
                depth -= 1
                self.advance()
                self.advance()
                if depth == 0:
                    return
            else:
                self.advance()

    def read_string(self) -> str:
        start_line, start_col = self.line, self.column
        self.advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self.peek()
            if ch is None:
                raise ReaderError("unterminated string", start_line, start_col)
            if ch == '"':
                self.advance()
                return "".join(chars)
            if ch == "\\":
                self.advance()
                esc = self.peek()
                if esc is None:
                    raise ReaderError("unterminated escape", self.line, self.column)
                self.advance()
                chars.append({"n": "\n", "t": "\t", "r": "\r"}.get(esc, esc))
            else:
                chars.append(self.advance())

    def read_atom_text(self) -> str:
        chars: List[str] = []
        while True:
            ch = self.peek()
            if ch is None or ch in _TERMINATORS:
                break
            chars.append(self.advance())
        return "".join(chars)


def _parse_atom(text: str, tok: _Tokenizer) -> SExp:
    if text in ("#t", "#true", "#T"):
        return True
    if text in ("#f", "#false", "#F"):
        return False
    if text.startswith("#x") or text.startswith("#X"):
        try:
            return int(text[2:], 16)
        except ValueError:
            raise tok.error(f"bad hex literal {text!r}") from None
    if text.startswith("#b") or text.startswith("#B"):
        try:
            return int(text[2:], 2)
        except ValueError:
            raise tok.error(f"bad binary literal {text!r}") from None
    try:
        return int(text)
    except ValueError:
        pass
    return Symbol(text)


def _read_datum(tok: _Tokenizer) -> SExp:
    tok.skip_atmosphere()
    ch = tok.peek()
    if ch is None:
        raise tok.error("unexpected end of input")
    if ch in _CLOSERS:
        raise tok.error(f"unexpected {ch!r}")
    if ch in _DELIMS:
        closer = _DELIMS[ch]
        open_line, open_col = tok.line, tok.column
        tok.advance()
        items: List[SExp] = []
        while True:
            tok.skip_atmosphere()
            nxt = tok.peek()
            if nxt is None:
                raise ReaderError("unclosed parenthesis", open_line, open_col)
            if nxt in _CLOSERS:
                if nxt != closer:
                    raise tok.error(f"mismatched delimiter: expected {closer!r}, got {nxt!r}")
                tok.advance()
                return items
            items.append(_read_datum(tok))
    if ch == '"':
        return tok.read_string()
    if ch == "'":
        tok.advance()
        return [Symbol("quote"), _read_datum(tok)]
    text = tok.read_atom_text()
    if not text:
        raise tok.error(f"unreadable character {ch!r}")
    return _parse_atom(text, tok)


def read(text: str) -> SExp:
    """Read a single S-expression from ``text``.

    Raises :class:`ReaderError` if there is no datum or if there is
    trailing (non-comment) input after the first datum.
    """
    tok = _Tokenizer(text)
    datum = _read_datum(tok)
    tok.skip_atmosphere()
    if tok.peek() is not None:
        raise tok.error("unexpected trailing input")
    return datum


def read_many(text: str) -> Iterator[SExp]:
    """Yield every top-level datum in ``text``."""
    tok = _Tokenizer(text)
    while True:
        tok.skip_atmosphere()
        if tok.peek() is None:
            return
        yield _read_datum(tok)


def read_all(text: str) -> List[SExp]:
    """Read every top-level datum in ``text`` into a list."""
    return list(read_many(text))
