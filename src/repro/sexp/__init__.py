"""S-expression reader and printer."""

from .printer import pretty_sexp, write_sexp
from .reader import ReaderError, Symbol, read, read_all, read_many

__all__ = [
    "Symbol", "ReaderError", "read", "read_all", "read_many",
    "write_sexp", "pretty_sexp",
]
