"""S-expression printer: the inverse of :mod:`repro.sexp.reader`.

``write_sexp(read(text))`` re-reads to an equal datum for all valid
inputs (a property-based test in ``tests/test_sexp.py`` checks this).
"""

from __future__ import annotations

from typing import List

from .reader import SExp, Symbol

__all__ = ["write_sexp", "pretty_sexp"]

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}


def _write_string(s: str) -> str:
    return '"' + "".join(_ESCAPES.get(ch, ch) for ch in s) + '"'


def write_sexp(datum: SExp) -> str:
    """Render ``datum`` on a single line."""
    if isinstance(datum, bool):
        return "#t" if datum else "#f"
    if isinstance(datum, int):
        return str(datum)
    if isinstance(datum, Symbol):
        return datum.name
    if isinstance(datum, str):
        return _write_string(datum)
    if isinstance(datum, list):
        return "(" + " ".join(write_sexp(item) for item in datum) + ")"
    raise TypeError(f"not an S-expression: {datum!r}")


def pretty_sexp(datum: SExp, width: int = 80, indent: int = 0) -> str:
    """Render ``datum`` with simple line-wrapping for readability.

    Lists that fit within ``width`` columns print on one line; longer
    lists print the head on the first line and each remaining element
    indented beneath it.
    """
    flat = write_sexp(datum)
    if indent + len(flat) <= width or not isinstance(datum, list) or not datum:
        return flat
    pad = " " * (indent + 2)
    head = pretty_sexp(datum[0], width, indent + 1)
    parts: List[str] = ["(" + head]
    for item in datum[1:]:
        parts.append(pad + pretty_sexp(item, width, indent + 2))
    return "\n".join(parts) + ")"
