"""The ``update`` metafunction and friends (Figure 7).

``update⁺`` refines a type with positive information about one of its
fields (an approximate intersection via ``restrict``); ``update⁻``
refines with negative information (an approximate difference via
``remove``).  Both distribute over unions and commute with refinements
exactly as Figure 7 specifies.

``overlap`` is the conservative disjointness test used by ``restrict``
and by the M-TypeNot model rule: it returns ``False`` only when two
types provably share no values.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from ..tr.types import (
    BOT,
    FalseT,
    Fun,
    Int,
    Pair,
    Poly,
    Refine,
    Str,
    Top,
    TrueT,
    TVar,
    Type,
    Union,
    Vec,
    Void,
    make_union,
    union_members,
)
from ..tr.objects import FST, LEN, SND

__all__ = ["overlap", "restrict", "remove", "update"]

# Disjoint base-type "tags": two types with different tags never share
# a value.  Functions/polytypes share a tag (both are procedures).
_BASE_TAGS = {
    Int: "int",
    TrueT: "true",
    FalseT: "false",
    Str: "str",
    Void: "void",
    Pair: "pair",
    Vec: "vec",
    Fun: "proc",
    Poly: "proc",
}

SubtypeFn = Callable[[Type, Type], bool]


def overlap(left: Type, right: Type) -> bool:
    """Could some value inhabit both types?  ``False`` only if provably not."""
    if isinstance(left, (Top, TVar)) or isinstance(right, (Top, TVar)):
        return True
    if isinstance(left, Union):
        return any(overlap(m, right) for m in left.members)
    if isinstance(right, Union):
        return any(overlap(left, m) for m in right.members)
    if isinstance(left, Refine):
        return overlap(left.base, right)
    if isinstance(right, Refine):
        return overlap(left, right.base)
    tag_l = _BASE_TAGS.get(type(left))
    tag_r = _BASE_TAGS.get(type(right))
    if tag_l is None or tag_r is None:
        return True
    if tag_l != tag_r:
        return False
    if isinstance(left, Pair) and isinstance(right, Pair):
        return overlap(left.fst, right.fst) and overlap(left.snd, right.snd)
    # Same-tag vectors/functions conservatively overlap.
    return True


def _is_bot(ty: Type) -> bool:
    return isinstance(ty, Union) and not ty.members


def _pair(fst: Type, snd: Type) -> Type:
    """A pair with an uninhabited component is itself uninhabited."""
    if _is_bot(fst) or _is_bot(snd):
        return BOT
    return Pair(fst, snd)


def restrict(ty: Type, by: Type, subtype: SubtypeFn) -> Type:
    """``restrict(τ, σ)``: a conservative intersection (Figure 7)."""
    if not overlap(ty, by):
        return BOT
    if isinstance(ty, Union):
        return make_union(restrict(m, by, subtype) for m in ty.members)
    if isinstance(ty, Refine):
        return Refine(ty.var, restrict(ty.base, by, subtype), ty.prop)
    if subtype(ty, by):
        return ty
    if isinstance(by, Union):
        # Distributing over the right union is strictly more precise
        # than Figure 7's fallback and remains a sound over-approximation.
        return make_union(restrict(ty, m, subtype) for m in by.members)
    if isinstance(ty, Pair) and isinstance(by, Pair):
        return _pair(
            restrict(ty.fst, by.fst, subtype), restrict(ty.snd, by.snd, subtype)
        )
    return by


def remove(ty: Type, what: Type, subtype: SubtypeFn) -> Type:
    """``remove(τ, σ)``: a conservative difference (Figure 7)."""
    if subtype(ty, what):
        return BOT
    if isinstance(ty, Union):
        return make_union(remove(m, what, subtype) for m in ty.members)
    if isinstance(ty, Refine):
        return Refine(ty.var, remove(ty.base, what, subtype), ty.prop)
    return ty


def update(
    ty: Type, path: Sequence[str], info: Type, positive: bool, subtype: SubtypeFn
) -> Type:
    """``update±(τ, ϕ⃗, σ)``: refine the field of ``τ`` addressed by ``path``.

    ``path`` is ordered root-outward: ``path[0]`` is the field applied
    directly to the root object.  A ``len`` step cannot refine the
    structural type (vector lengths live in the linear theory), so the
    type is returned unchanged — a sound no-op.
    """
    if not path:
        if positive:
            return restrict(ty, info, subtype)
        return remove(ty, info, subtype)
    if isinstance(ty, Union):
        return make_union(update(m, path, info, positive, subtype) for m in ty.members)
    if isinstance(ty, Refine):
        return Refine(ty.var, update(ty.base, path, info, positive, subtype), ty.prop)
    head, rest = path[0], path[1:]
    if head == FST and isinstance(ty, Pair):
        return _pair(update(ty.fst, rest, info, positive, subtype), ty.snd)
    if head == SND and isinstance(ty, Pair):
        return _pair(ty.fst, update(ty.snd, rest, info, positive, subtype))
    if head == LEN:
        return ty
    # Field applied to a type without that field: no structural news.
    return ty
