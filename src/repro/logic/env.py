"""Hybrid type environments (section 4.1).

The model treats Γ as a bag of propositions; "in a real implementation
it is useful to separate the environment into two portions: a
traditional mapping of variables to types along with a set of currently
known propositions".  :class:`Env` is exactly that split:

* ``types``   — positive type information per symbolic object,
  iteratively refined with the ``update`` metafunction;
* ``negs``    — negative type information per object;
* ``theory_facts`` — atomic theory propositions (``[[Γ]]_T``);
* ``compounds``    — disjunctions awaiting case splits;
* ``aliases`` — the object-equivalence classes, collapsed onto
  representative members (section 4.1, "Representative objects").

Environments are persistent: :meth:`snapshot` copies are taken before
extension so branches of a conditional reason independently.
Assimilation of new propositions (the logic of L-Update±, L-RefE,
L-ObjFork, L-TypeFork) lives in :mod:`repro.logic.prove`, which drives
these containers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tr.objects import (
    BVExpr,
    FieldRef,
    LinExpr,
    NULL,
    Obj,
    PairObj,
    Var,
    lin_add,
    lin_scale,
    obj_field,
    obj_int,
)
from ..tr.props import Prop, TheoryProp
from ..tr.types import Type
from .alias import AliasClasses

__all__ = ["Env", "split_path"]


def split_path(obj: Obj) -> Tuple[Obj, Tuple[str, ...]]:
    """Unwind a field-reference chain: ``(fst (snd x))`` ↦ (x, (snd, fst)).

    The returned path is root-outward, matching
    :func:`repro.logic.update.update`.
    """
    path: List[str] = []
    current = obj
    while isinstance(current, FieldRef):
        path.append(current.field)
        current = current.base
    path.reverse()
    return current, tuple(path)


class Env:
    """A hybrid environment; extended via ``Logic.extend`` only."""

    __slots__ = (
        "types",
        "negs",
        "theory_facts",
        "compounds",
        "aliases",
        "inconsistent",
        "_theory_cache",
    )

    def __init__(self) -> None:
        self.types: Dict[Obj, Type] = {}
        self.negs: Dict[Obj, Tuple[Type, ...]] = {}
        self.theory_facts: List[TheoryProp] = []
        self.compounds: List[Prop] = []
        self.aliases = AliasClasses()
        self.inconsistent = False
        self._theory_cache: Optional[List[Prop]] = None

    def snapshot(self) -> "Env":
        dup = Env.__new__(Env)
        dup.types = dict(self.types)
        dup.negs = dict(self.negs)
        dup.theory_facts = list(self.theory_facts)
        dup.compounds = list(self.compounds)
        dup.aliases = self.aliases.copy()
        dup.inconsistent = self.inconsistent
        dup._theory_cache = None
        return dup

    # ------------------------------------------------------------------
    # canonicalisation through alias representatives
    # ------------------------------------------------------------------
    def canon_obj(self, obj: Obj) -> Obj:
        """Rewrite ``obj`` onto alias-class representatives, recursively."""
        if obj.is_null():
            return NULL
        if isinstance(obj, Var):
            return self.aliases.find(obj)
        if isinstance(obj, FieldRef):
            base = self.canon_obj(obj.base)
            return self.aliases.find(obj_field(base=base, field=obj.field))
        if isinstance(obj, PairObj):
            fst = self.canon_obj(obj.fst)
            snd = self.canon_obj(obj.snd)
            return self.aliases.find(PairObj(fst, snd))
        if isinstance(obj, LinExpr):
            acc: Obj = obj_int(obj.const)
            for atom, coeff in obj.terms:
                canon_atom = self.canon_obj(atom)
                if canon_atom.is_null():
                    return NULL
                acc = lin_add(acc, lin_scale(coeff, canon_atom))
            return self.aliases.find(acc)
        if isinstance(obj, BVExpr):
            args = tuple(
                self.canon_obj(a) if isinstance(a, Obj) else a for a in obj.args
            )
            return self.aliases.find(BVExpr(obj.op, args, obj.width))
        return self.aliases.find(obj)

    # ------------------------------------------------------------------
    # raw record-keeping (Logic decides what to record)
    # ------------------------------------------------------------------
    def set_type(self, obj: Obj, ty: Type) -> None:
        self.types[obj] = ty
        self._theory_cache = None

    def add_neg(self, obj: Obj, ty: Type) -> None:
        self.negs[obj] = self.negs.get(obj, ()) + (ty,)

    def add_theory_fact(self, fact: TheoryProp) -> None:
        if fact not in self.theory_facts:
            self.theory_facts.append(fact)
            self._theory_cache = None

    def add_compound(self, prop: Prop) -> None:
        if prop not in self.compounds:
            self.compounds.append(prop)

    def var_type(self, name: str) -> Optional[Type]:
        return self.types.get(Var(name))
