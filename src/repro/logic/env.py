"""Hybrid type environments (section 4.1).

The model treats Γ as a bag of propositions; "in a real implementation
it is useful to separate the environment into two portions: a
traditional mapping of variables to types along with a set of currently
known propositions".  :class:`Env` is exactly that split:

* ``types``   — positive type information per symbolic object,
  iteratively refined with the ``update`` metafunction;
* ``negs``    — negative type information per object;
* ``theory_facts`` — atomic theory propositions (``[[Γ]]_T``);
* ``compounds``    — disjunctions awaiting case splits;
* ``aliases`` — the object-equivalence classes, collapsed onto
  representative members (section 4.1, "Representative objects").

Environments are persistent: :meth:`snapshot` copies are taken before
extension so branches of a conditional reason independently.
Assimilation of new propositions (the logic of L-Update±, L-RefE,
L-ObjFork, L-TypeFork) lives in :mod:`repro.logic.prove`, which drives
these containers.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..tr.intern import node_id
from ..tr.objects import (
    BVExpr,
    FieldRef,
    LinExpr,
    NULL,
    Obj,
    PairObj,
    Var,
    lin_add,
    lin_scale,
    obj_field,
    obj_int,
)
from ..tr.props import Prop, TheoryProp
from ..tr.types import Type
from .alias import AliasClasses

__all__ = ["Env", "EnvKey", "split_path"]


def split_path(obj: Obj) -> Tuple[Obj, Tuple[str, ...]]:
    """Unwind a field-reference chain: ``(fst (snd x))`` ↦ (x, (snd, fst)).

    The returned path is root-outward, matching
    :func:`repro.logic.update.update`.
    """
    path: List[str] = []
    current = obj
    while isinstance(current, FieldRef):
        path.append(current.field)
        current = current.base
    path.reverse()
    return current, tuple(path)


class EnvKey:
    """An environment fingerprint: exact content, O(1) to hash/compare.

    Captures the environment's per-category id sets (frozen from the
    moment of capture by the environment's copy-on-write discipline)
    together with a hash precomputed from incrementally-maintained
    accumulators, so taking and probing a fingerprint is O(1).  The
    sets are compared only on hash collision, which keeps cache answers
    *exact* (structural, never probabilistic).
    """

    __slots__ = (
        "_hash",
        "inconsistent",
        "types",
        "negs",
        "facts",
        "compounds",
        "alias_key",
    )

    def __init__(
        self,
        inconsistent: bool,
        types: set,
        negs: set,
        facts: set,
        compounds: set,
        alias_key,
        hash_value: int,
    ) -> None:
        self.inconsistent = inconsistent
        self.types = types
        self.negs = negs
        self.facts = facts
        self.compounds = compounds
        self.alias_key = alias_key
        self._hash = hash_value

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, EnvKey):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.inconsistent == other.inconsistent
            and self.alias_key == other.alias_key
            and self.types == other.types
            and self.negs == other.negs
            and self.facts == other.facts
            and self.compounds == other.compounds
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnvKey(0x{self._hash & 0xFFFFFFFF:08x})"


def _set_hash(ids) -> int:
    """Order-independent hash of a set of hashables (XOR-fold)."""
    acc = 0
    for element in ids:
        acc ^= hash(element)
    return acc


class Env:
    """A hybrid environment; extended via ``Logic.extend`` only."""

    __slots__ = (
        "types",
        "negs",
        "theory_facts",
        "compounds",
        "aliases",
        "inconsistent",
        "_theory_cache",
        "_fingerprint",
        "_fp_types",
        "_fp_negs",
        "_fp_facts",
        "_fp_compounds",
        "_fph_types",
        "_fph_negs",
        "_fph_facts",
        "_fph_compounds",
        "_fp_owned",
        "_parent",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.types: Dict[Obj, Type] = {}
        self.negs: Dict[Obj, Tuple[Type, ...]] = {}
        self.theory_facts: List[TheoryProp] = []
        self.compounds: List[Prop] = []
        self.aliases = AliasClasses()
        self.inconsistent = False
        self._theory_cache: Optional[List[Prop]] = None
        self._fingerprint: Optional[EnvKey] = None
        # Fingerprint components, maintained *incrementally* by the
        # record-keeping methods below: each is a set of stable intern
        # ids mirroring the corresponding container, paired with an
        # XOR-fold hash accumulator so taking a fingerprint is O(1).
        # The sets are shared copy-on-write by snapshots *and* by
        # issued fingerprints (an EnvKey captures them by reference, so
        # a later mutation must copy first).
        self._fp_types: set = set()
        self._fp_negs: set = set()
        self._fp_facts: set = set()
        self._fp_compounds: set = set()
        self._fph_types = 0
        self._fph_negs = 0
        self._fph_facts = 0
        self._fph_compounds = 0
        self._fp_owned = True
        #: weak reference to the environment this one was extended from,
        #: used to derive incremental theory sessions (never affects
        #: semantics; may be dead or None).
        self._parent: Optional["weakref.ref[Env]"] = None

    def snapshot(self) -> "Env":
        dup = Env.__new__(Env)
        dup.types = dict(self.types)
        dup.negs = dict(self.negs)
        dup.theory_facts = list(self.theory_facts)
        dup.compounds = list(self.compounds)
        dup.aliases = self.aliases.copy()
        dup.inconsistent = self.inconsistent
        dup._theory_cache = None
        # Identical content: the fingerprint and its components carry
        # over; the id sets are shared copy-on-write (neither side may
        # mutate them in place until it owns a private copy).
        dup._fingerprint = self._fingerprint
        dup._fp_types = self._fp_types
        dup._fp_negs = self._fp_negs
        dup._fp_facts = self._fp_facts
        dup._fp_compounds = self._fp_compounds
        dup._fph_types = self._fph_types
        dup._fph_negs = self._fph_negs
        dup._fph_facts = self._fph_facts
        dup._fph_compounds = self._fph_compounds
        self._fp_owned = False
        dup._fp_owned = False
        dup._parent = None
        return dup

    def _own_fp(self) -> None:
        """Take private ownership of the fingerprint id sets (COW)."""
        if not self._fp_owned:
            self._fp_types = set(self._fp_types)
            self._fp_negs = set(self._fp_negs)
            self._fp_facts = set(self._fp_facts)
            self._fp_compounds = set(self._fp_compounds)
            self._fp_owned = True

    def parent(self) -> Optional["Env"]:
        """The environment this one was extended from, if still alive."""
        if self._parent is None:
            return None
        return self._parent()

    # ------------------------------------------------------------------
    # fingerprinting (the incremental engine's cache key)
    # ------------------------------------------------------------------
    def fingerprint(self) -> EnvKey:
        """The exact structural key of this environment's contents.

        Assembled from the incrementally-maintained id sets and their
        XOR-fold hash accumulators, so taking a fingerprint is O(1) —
        no frozenset is built and nothing is re-hashed.  The issued
        :class:`EnvKey` captures the id sets by reference and marks
        them unowned: the next mutation copies them first, so the key
        is immutable from the moment it is handed out.  Equal
        fingerprints guarantee equal contents, so query caches keyed on
        them can never serve a stale answer: learning any new fact
        yields a different key.
        """
        fp = self._fingerprint
        if fp is None:
            alias_key = self.aliases.state_key()
            fp = EnvKey(
                self.inconsistent,
                self._fp_types,
                self._fp_negs,
                self._fp_facts,
                self._fp_compounds,
                alias_key,
                hash(
                    (
                        self.inconsistent,
                        self._fph_types,
                        self._fph_negs,
                        self._fph_facts,
                        self._fph_compounds,
                        alias_key,
                    )
                ),
            )
            self._fingerprint = fp
            self._fp_owned = False  # the key now aliases the id sets
        return fp

    # ------------------------------------------------------------------
    # canonicalisation through alias representatives
    # ------------------------------------------------------------------
    def canon_obj(self, obj: Obj) -> Obj:
        """Rewrite ``obj`` onto alias-class representatives, recursively.

        Memoised against the alias structure (the only state the
        rewrite reads): the memo is shared across snapshots and dropped
        by :class:`AliasClasses` the moment a class merge changes the
        representative map.
        """
        if not self.aliases._parent:
            return obj  # no aliases: every object is its own rep
        cache = self.aliases._canon_cache
        hit = cache.get(obj)
        if hit is None:
            hit = self._canon_obj(obj)
            cache[obj] = hit
        return hit

    def _canon_obj(self, obj: Obj) -> Obj:
        if obj.is_null():
            return NULL
        if isinstance(obj, Var):
            return self.aliases.find(obj)
        if isinstance(obj, FieldRef):
            base = self.canon_obj(obj.base)
            return self.aliases.find(obj_field(base=base, field=obj.field))
        if isinstance(obj, PairObj):
            fst = self.canon_obj(obj.fst)
            snd = self.canon_obj(obj.snd)
            return self.aliases.find(PairObj(fst, snd))
        if isinstance(obj, LinExpr):
            acc: Obj = obj_int(obj.const)
            for atom, coeff in obj.terms:
                canon_atom = self.canon_obj(atom)
                if canon_atom.is_null():
                    return NULL
                acc = lin_add(acc, lin_scale(coeff, canon_atom))
            return self.aliases.find(acc)
        if isinstance(obj, BVExpr):
            args = tuple(
                self.canon_obj(a) if isinstance(a, Obj) else a for a in obj.args
            )
            return self.aliases.find(BVExpr(obj.op, args, obj.width))
        return self.aliases.find(obj)

    # ------------------------------------------------------------------
    # raw record-keeping (Logic decides what to record)
    # ------------------------------------------------------------------
    def set_type(self, obj: Obj, ty: Type) -> None:
        old = self.types.get(obj)
        if old is ty or old == ty:
            self.types[obj] = ty
            return
        self.types[obj] = ty
        self._own_fp()
        fp = self._fp_types
        if old is not None:
            stale = (node_id(obj), node_id(old))
            if stale in fp:
                fp.discard(stale)
                self._fph_types ^= hash(stale)
        pair = (node_id(obj), node_id(ty))
        if pair not in fp:
            fp.add(pair)
            self._fph_types ^= hash(pair)
        self._theory_cache = None
        self._fingerprint = None

    def add_neg(self, obj: Obj, ty: Type) -> None:
        existing = self.negs.get(obj, ())
        if ty in existing:
            return
        self.negs[obj] = existing + (ty,)
        self._own_fp()
        pair = (node_id(obj), node_id(ty))
        if pair not in self._fp_negs:
            self._fp_negs.add(pair)
            self._fph_negs ^= hash(pair)
        self._fingerprint = None

    def add_theory_fact(self, fact: TheoryProp) -> None:
        if fact not in self.theory_facts:
            self.theory_facts.append(fact)
            self._own_fp()
            fact_id = node_id(fact)
            if fact_id not in self._fp_facts:
                self._fp_facts.add(fact_id)
                self._fph_facts ^= hash(fact_id)
            self._theory_cache = None
            self._fingerprint = None

    def add_compound(self, prop: Prop) -> None:
        if prop not in self.compounds:
            self.compounds.append(prop)
            self._own_fp()
            prop_id = node_id(prop)
            if prop_id not in self._fp_compounds:
                self._fp_compounds.add(prop_id)
                self._fph_compounds ^= hash(prop_id)
            self._fingerprint = None

    def drop_compound(self, index: int) -> None:
        """Remove a stored disjunction (used while case-splitting)."""
        prop = self.compounds.pop(index)
        self._own_fp()
        prop_id = node_id(prop)
        if prop_id in self._fp_compounds:
            self._fp_compounds.discard(prop_id)
            self._fph_compounds ^= hash(prop_id)
        self._fingerprint = None

    def mark_inconsistent(self) -> None:
        self.inconsistent = True
        self._fingerprint = None

    def merge_alias(self, left: Obj, right: Obj) -> Obj:
        """Merge two alias classes; returns the representative."""
        rep, _ = self.merge_alias_with_changes(left, right)
        return rep

    def merge_alias_with_changes(self, left: Obj, right: Obj) -> Tuple[Obj, Tuple[Obj, ...]]:
        """Merge two alias classes; also report re-canonicalisation work.

        Returns ``(representative, changed_members)`` where
        ``changed_members`` lists the objects whose representative is
        different after the merge (see
        :meth:`AliasClasses.union_with_changes`).  The theory-projection
        cache is dropped: cached assumptions may mention demoted
        members and would otherwise go stale.
        """
        self._fingerprint = None
        self._theory_cache = None
        return self.aliases.union_with_changes(left, right)

    def reset_records(self) -> None:
        """Drop type/negative/theory records before re-canonicalisation."""
        self.types = {}
        self.negs = {}
        self.theory_facts = []
        self._theory_cache = None
        self._own_fp()
        self._fp_types.clear()
        self._fp_negs.clear()
        self._fp_facts.clear()
        self._fph_types = 0
        self._fph_negs = 0
        self._fph_facts = 0
        self._fingerprint = None

    def var_type(self, name: str) -> Optional[Type]:
        return self.types.get(Var(name))
