"""Hybrid type environments (section 4.1).

The model treats Γ as a bag of propositions; "in a real implementation
it is useful to separate the environment into two portions: a
traditional mapping of variables to types along with a set of currently
known propositions".  :class:`Env` is exactly that split:

* ``types``   — positive type information per symbolic object,
  iteratively refined with the ``update`` metafunction;
* ``negs``    — negative type information per object;
* ``theory_facts`` — atomic theory propositions (``[[Γ]]_T``);
* ``compounds``    — disjunctions awaiting case splits;
* ``aliases`` — the object-equivalence classes, collapsed onto
  representative members (section 4.1, "Representative objects").

Environments are persistent: :meth:`snapshot` copies are taken before
extension so branches of a conditional reason independently.
Assimilation of new propositions (the logic of L-Update±, L-RefE,
L-ObjFork, L-TypeFork) lives in :mod:`repro.logic.prove`, which drives
these containers.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..tr.intern import node_id
from ..tr.objects import (
    BVExpr,
    FieldRef,
    LinExpr,
    NULL,
    Obj,
    PairObj,
    Var,
    lin_add,
    lin_scale,
    obj_field,
    obj_int,
)
from ..tr.props import Prop, TheoryProp
from ..tr.types import Type
from .alias import AliasClasses

__all__ = ["Env", "EnvKey", "split_path"]


def split_path(obj: Obj) -> Tuple[Obj, Tuple[str, ...]]:
    """Unwind a field-reference chain: ``(fst (snd x))`` ↦ (x, (snd, fst)).

    The returned path is root-outward, matching
    :func:`repro.logic.update.update`.
    """
    path: List[str] = []
    current = obj
    while isinstance(current, FieldRef):
        path.append(current.field)
        current = current.base
    path.reverse()
    return current, tuple(path)


class EnvKey:
    """An environment fingerprint: exact content, O(1) to hash/compare.

    Wraps the structural key tuple with a precomputed hash so proof- and
    session-cache probes cost a single integer comparison in the common
    case; the full tuple is compared only on hash collision, which keeps
    cache answers *exact* (structural, never probabilistic).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: Tuple) -> None:
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, EnvKey):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnvKey(0x{self._hash & 0xFFFFFFFF:08x})"


class Env:
    """A hybrid environment; extended via ``Logic.extend`` only."""

    __slots__ = (
        "types",
        "negs",
        "theory_facts",
        "compounds",
        "aliases",
        "inconsistent",
        "_theory_cache",
        "_fingerprint",
        "_fp_types",
        "_fp_negs",
        "_fp_facts",
        "_fp_compounds",
        "_fp_owned",
        "_parent",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.types: Dict[Obj, Type] = {}
        self.negs: Dict[Obj, Tuple[Type, ...]] = {}
        self.theory_facts: List[TheoryProp] = []
        self.compounds: List[Prop] = []
        self.aliases = AliasClasses()
        self.inconsistent = False
        self._theory_cache: Optional[List[Prop]] = None
        self._fingerprint: Optional[EnvKey] = None
        # Fingerprint components, maintained *incrementally* by the
        # record-keeping methods below: each is a set of stable intern
        # ids mirroring the corresponding container, updated with
        # C-speed set operations on mutation and shared copy-on-write
        # by snapshots, so fingerprinting is O(delta), not O(Γ).
        self._fp_types: set = set()
        self._fp_negs: set = set()
        self._fp_facts: set = set()
        self._fp_compounds: set = set()
        self._fp_owned = True
        #: weak reference to the environment this one was extended from,
        #: used to derive incremental theory sessions (never affects
        #: semantics; may be dead or None).
        self._parent: Optional["weakref.ref[Env]"] = None

    def snapshot(self) -> "Env":
        dup = Env.__new__(Env)
        dup.types = dict(self.types)
        dup.negs = dict(self.negs)
        dup.theory_facts = list(self.theory_facts)
        dup.compounds = list(self.compounds)
        dup.aliases = self.aliases.copy()
        dup.inconsistent = self.inconsistent
        dup._theory_cache = None
        # Identical content: the fingerprint and its components carry
        # over; the id sets are shared copy-on-write (neither side may
        # mutate them in place until it owns a private copy).
        dup._fingerprint = self._fingerprint
        dup._fp_types = self._fp_types
        dup._fp_negs = self._fp_negs
        dup._fp_facts = self._fp_facts
        dup._fp_compounds = self._fp_compounds
        self._fp_owned = False
        dup._fp_owned = False
        dup._parent = None
        return dup

    def _own_fp(self) -> None:
        """Take private ownership of the fingerprint id sets (COW)."""
        if not self._fp_owned:
            self._fp_types = set(self._fp_types)
            self._fp_negs = set(self._fp_negs)
            self._fp_facts = set(self._fp_facts)
            self._fp_compounds = set(self._fp_compounds)
            self._fp_owned = True

    def parent(self) -> Optional["Env"]:
        """The environment this one was extended from, if still alive."""
        if self._parent is None:
            return None
        return self._parent()

    # ------------------------------------------------------------------
    # fingerprinting (the incremental engine's cache key)
    # ------------------------------------------------------------------
    def fingerprint(self) -> EnvKey:
        """The exact structural key of this environment's contents.

        Assembled from the incrementally-maintained id sets, so the
        only per-call cost is one tuple hash (cached on the
        :class:`EnvKey`).  Equal fingerprints guarantee equal contents,
        so query caches keyed on them can never serve a stale answer:
        learning any new fact yields a different key.
        """
        fp = self._fingerprint
        if fp is None:
            fp = EnvKey(
                (
                    self.inconsistent,
                    frozenset(self._fp_types),
                    frozenset(self._fp_negs),
                    frozenset(self._fp_facts),
                    frozenset(self._fp_compounds),
                    self.aliases.state_key(),
                )
            )
            self._fingerprint = fp
        return fp

    # ------------------------------------------------------------------
    # canonicalisation through alias representatives
    # ------------------------------------------------------------------
    def canon_obj(self, obj: Obj) -> Obj:
        """Rewrite ``obj`` onto alias-class representatives, recursively.

        Memoised against the alias structure (the only state the
        rewrite reads): the memo is shared across snapshots and dropped
        by :class:`AliasClasses` the moment a class merge changes the
        representative map.
        """
        if not self.aliases._parent:
            return obj  # no aliases: every object is its own rep
        cache = self.aliases._canon_cache
        hit = cache.get(obj)
        if hit is None:
            hit = self._canon_obj(obj)
            cache[obj] = hit
        return hit

    def _canon_obj(self, obj: Obj) -> Obj:
        if obj.is_null():
            return NULL
        if isinstance(obj, Var):
            return self.aliases.find(obj)
        if isinstance(obj, FieldRef):
            base = self.canon_obj(obj.base)
            return self.aliases.find(obj_field(base=base, field=obj.field))
        if isinstance(obj, PairObj):
            fst = self.canon_obj(obj.fst)
            snd = self.canon_obj(obj.snd)
            return self.aliases.find(PairObj(fst, snd))
        if isinstance(obj, LinExpr):
            acc: Obj = obj_int(obj.const)
            for atom, coeff in obj.terms:
                canon_atom = self.canon_obj(atom)
                if canon_atom.is_null():
                    return NULL
                acc = lin_add(acc, lin_scale(coeff, canon_atom))
            return self.aliases.find(acc)
        if isinstance(obj, BVExpr):
            args = tuple(
                self.canon_obj(a) if isinstance(a, Obj) else a for a in obj.args
            )
            return self.aliases.find(BVExpr(obj.op, args, obj.width))
        return self.aliases.find(obj)

    # ------------------------------------------------------------------
    # raw record-keeping (Logic decides what to record)
    # ------------------------------------------------------------------
    def set_type(self, obj: Obj, ty: Type) -> None:
        old = self.types.get(obj)
        if old is ty or old == ty:
            self.types[obj] = ty
            return
        self.types[obj] = ty
        self._own_fp()
        if old is not None:
            self._fp_types.discard((node_id(obj), node_id(old)))
        self._fp_types.add((node_id(obj), node_id(ty)))
        self._theory_cache = None
        self._fingerprint = None

    def add_neg(self, obj: Obj, ty: Type) -> None:
        existing = self.negs.get(obj, ())
        if ty in existing:
            return
        self.negs[obj] = existing + (ty,)
        self._own_fp()
        self._fp_negs.add((node_id(obj), node_id(ty)))
        self._fingerprint = None

    def add_theory_fact(self, fact: TheoryProp) -> None:
        if fact not in self.theory_facts:
            self.theory_facts.append(fact)
            self._own_fp()
            self._fp_facts.add(node_id(fact))
            self._theory_cache = None
            self._fingerprint = None

    def add_compound(self, prop: Prop) -> None:
        if prop not in self.compounds:
            self.compounds.append(prop)
            self._own_fp()
            self._fp_compounds.add(node_id(prop))
            self._fingerprint = None

    def drop_compound(self, index: int) -> None:
        """Remove a stored disjunction (used while case-splitting)."""
        prop = self.compounds.pop(index)
        self._own_fp()
        self._fp_compounds.discard(node_id(prop))
        self._fingerprint = None

    def mark_inconsistent(self) -> None:
        self.inconsistent = True
        self._fingerprint = None

    def merge_alias(self, left: Obj, right: Obj) -> Obj:
        """Merge two alias classes; returns the representative."""
        rep, _ = self.merge_alias_with_changes(left, right)
        return rep

    def merge_alias_with_changes(self, left: Obj, right: Obj) -> Tuple[Obj, Tuple[Obj, ...]]:
        """Merge two alias classes; also report re-canonicalisation work.

        Returns ``(representative, changed_members)`` where
        ``changed_members`` lists the objects whose representative is
        different after the merge (see
        :meth:`AliasClasses.union_with_changes`).  The theory-projection
        cache is dropped: cached assumptions may mention demoted
        members and would otherwise go stale.
        """
        self._fingerprint = None
        self._theory_cache = None
        return self.aliases.union_with_changes(left, right)

    def reset_records(self) -> None:
        """Drop type/negative/theory records before re-canonicalisation."""
        self.types = {}
        self.negs = {}
        self.theory_facts = []
        self._theory_cache = None
        self._own_fp()
        self._fp_types.clear()
        self._fp_negs.clear()
        self._fp_facts.clear()
        self._fingerprint = None

    def var_type(self, name: str) -> Optional[Type]:
        return self.types.get(Var(name))
