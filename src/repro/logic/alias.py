"""Union-find over symbolic objects: the alias classes of L-Refl/L-Sym.

Section 4.1 ("Representative objects") describes eagerly collapsing
alias-equivalence classes onto a single representative member; this
structure implements those classes.  Representatives are chosen to be
the most *informative* member — a theory term or field reference is
preferred over a bare variable, and among equals the object being
aliased *to* wins — so that canonicalising an environment's facts rewrites
short-lived local names (e.g. a let-bound ``end``) into the object the
theories can reason about (e.g. ``(len A)``).

The structure is persistent-by-copy: :meth:`copy` is O(n) over live
entries, which is cheap for checker-sized environments, and no path
compression mutates shared state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..tr.intern import node_id
from ..tr.objects import BVExpr, FieldRef, LinExpr, Obj, PairObj, Var

__all__ = ["AliasClasses"]


def _informativeness(obj: Obj) -> int:
    """Rank objects by how much the theories can do with them."""
    if isinstance(obj, (LinExpr, BVExpr)):
        return 3
    if isinstance(obj, FieldRef):
        return 2
    if isinstance(obj, PairObj):
        return 1
    return 0  # plain variables


class AliasClasses:
    """Equivalence classes of symbolic objects with chosen representatives."""

    def __init__(self) -> None:
        self._parent: Dict[Obj, Obj] = {}
        #: root → every member of its class (including the root); kept
        #: in lock-step with ``_parent`` so a merge can report the
        #: demoted class in O(|class|) instead of scanning every
        #: registered object.
        self._class_members: Dict[Obj, List[Obj]] = {}
        #: memoised object canonicalisations, valid for this exact
        #: member → representative map.  *Shared by reference* across
        #: copies (their map is identical); a merge re-points the
        #: mutating instance at a fresh dict, leaving sharers intact.
        self._canon_cache: Dict[Obj, Obj] = {}
        self._key_cache: Optional[FrozenSet[Tuple[int, int]]] = None

    def copy(self) -> "AliasClasses":
        dup = AliasClasses()
        dup._parent = dict(self._parent)
        dup._class_members = {
            root: list(members) for root, members in self._class_members.items()
        }
        dup._canon_cache = self._canon_cache
        dup._key_cache = self._key_cache
        return dup

    def _register(self, obj: Obj) -> None:
        if obj not in self._parent:
            self._parent[obj] = obj
            self._class_members[obj] = [obj]

    def find(self, obj: Obj) -> Obj:
        """The representative of ``obj``'s class (``obj`` if unaliased)."""
        current = obj
        parent = self._parent
        while parent.get(current, current) != current:
            current = parent[current]
        return current

    def union(self, left: Obj, right: Obj) -> Obj:
        """Merge the classes of ``left`` and ``right``; returns the rep."""
        rep, _ = self.union_with_changes(left, right)
        return rep

    def union_with_changes(self, left: Obj, right: Obj) -> Tuple[Obj, Tuple[Obj, ...]]:
        """Merge two classes; also report whose representative changed.

        The second component lists every member whose ``find`` answer
        is different after the merge — the demoted root's whole class,
        read off the per-class member lists in O(|class|).  Callers use
        it to decide whether any recorded fact can be affected by
        re-canonicalisation (L-Transport); an empty or unmentioned
        change set means re-keying is a no-op.
        """
        self._register(left)
        self._register(right)
        root_l = self.find(left)
        root_r = self.find(right)
        if root_l == root_r:
            return root_l, ()
        rep, other = self._pick(root_l, root_r)
        demoted = self._class_members.pop(other, [other])
        changed = tuple(demoted)
        self._class_members.setdefault(rep, [rep]).extend(demoted)
        self._parent[other] = rep
        self._canon_cache = {}
        self._key_cache = None
        return rep, changed

    def _pick(self, a: Obj, b: Obj) -> Tuple[Obj, Obj]:
        """Prefer the more informative root; on ties prefer ``b``.

        ``union(x, o)`` is called with the newly-bound name on the left
        and the object it aliases on the right (T-Let), so preferring
        the right side keeps facts phrased in terms of the object that
        outlives the binding.
        """
        ra, rb = _informativeness(a), _informativeness(b)
        if ra > rb:
            return a, b
        return b, a

    def same_class(self, left: Obj, right: Obj) -> bool:
        return self.find(left) == self.find(right)

    def classes(self) -> List[List[Obj]]:
        """All non-trivial classes, each listing its members."""
        groups: Dict[Obj, List[Obj]] = {}
        for obj in self._parent:
            groups.setdefault(self.find(obj), []).append(obj)
        return [members for members in groups.values() if len(members) > 1]

    def members(self) -> Iterable[Obj]:
        return self._parent.keys()

    def state_key(self) -> FrozenSet[Tuple[int, int]]:
        """An exact, hashable digest of the member → representative map.

        Two alias structures with equal keys canonicalise every object
        identically (``find`` is fully determined by that map), which is
        what environment fingerprints need.  Singleton classes are
        omitted — an unaliased member behaves as if never registered.
        """
        key = self._key_cache
        if key is None:
            pairs = []
            for obj in self._parent:
                rep = self.find(obj)
                if rep != obj:
                    pairs.append((node_id(obj), node_id(rep)))
            key = frozenset(pairs)
            self._key_cache = key
        return key
