"""The λRTR proof system (Figure 6) and subtyping (Figure 5).

:class:`Logic` is the façade the type checker talks to; since the
kernel refactor it *drives* the layered proof kernel under
:mod:`repro.logic.kernel` rather than implementing the judgments
itself:

* ``extend``  — assimilate a proposition into a hybrid environment via
  the **normalization** and **saturation** stages (worklist-driven;
  L-RefE, L-Update±, L-TypeFork / L-ObjFork, alias maintenance);
* ``proves``  — Γ ⊢ ψ, evaluated by the kernel's iterative and/or
  machine (L-Sub, L-Not, L-Bot, L-Transport) with theory atoms batched
  per session through the **dispatch** stage (L-Theory);
* ``subtype`` / ``result_subtype`` — Figure 5, including S-Refine1/2
  and SR-Exists.

No judgment recurses over proposition structure — deep programs
produce deep propositions, and the kernel walks them with explicit
stacks.  Search effort (case splits, refutations, refinement
subtyping) is still fuel-bounded by ``max_depth``; saturation is
bounded by the ``max_steps`` worklist budget.  Exhausting either
answers "not derivable"/"learn less", which only ever makes the
checker more conservative.

The engine is *incremental* (the scalability discipline of section 4):
one :class:`Logic` instance is threaded through a whole program check,
and it memoises its judgments across queries.

* ``proves`` and ``subtype`` answers are cached keyed by the
  environment's exact structural fingerprint
  (:meth:`repro.logic.env.Env.fingerprint`) and the goal — learning any
  new fact changes the fingerprint, so invalidation is automatic and a
  stale answer can never be served.
* Depth-bounded internal judgments additionally record the fuel they
  were decided with: a negative ("not derivable") answer is only reused
  when at least as much fuel was available, so caching never makes the
  checker *more* conservative than the uncached search.
* L-Theory goes through per-environment
  :class:`~repro.theories.registry.RegistrySession` objects — SMT-style
  push/pop contexts in which Γ's theory projection is translated once
  per environment state (and derived incrementally from the parent
  environment's session where possible) instead of once per goal.
* An optional **persistent proof cache**
  (:class:`repro.batch.cache.ProofCache`) can be attached; top-level
  ``proves`` verdicts are then shared across processes and across
  runs, keyed by content digests of (Γ, ψ).

:class:`EngineStats` counts calls, cache hits and per-theory queries;
it merges across batch workers (:meth:`EngineStats.merge`) and the
CLI's ``--stats`` flag and :mod:`repro.study.report` surface it.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..budget import Budget, activate as activate_budget
from ..theories.registry import RegistrySession, TheoryRegistry, default_registry
from ..tr.objects import FST, LEN, SND, Obj, PairObj, obj_field, obj_int
from ..tr.props import (
    And,
    Prop,
    TheoryProp,
    lin_eq,
    lin_le,
)
from ..tr.results import TypeResult
from ..tr.subst import prop_subst
from ..tr.types import Pair, Refine, Type, Vec
from ..tr.types import Str as StrT
from .env import Env, EnvKey
from .kernel.dispatch import TheoryDispatch
from .kernel.prover import ProofKernel
from .kernel.saturate import Saturator

__all__ = ["EngineStats", "Logic", "SessionLease", "StageTimers"]


class EngineStats:
    """Counters for the incremental engine's hot paths.

    ``theory_queries`` maps theory name → number of solver consultations
    (a session memo hit never reaches a solver, so the counts measure
    real work).  ``solver_counters`` maps solver-core counter name →
    count (``simplex.pivots``, ``cdcl.conflicts``, …), flushed in by the
    solver facades after every core query.  ``rule_hits`` maps kernel
    rule name → times fired (``sat.type+``, ``sat.alias-merge``,
    ``dispatch.batch``, …) — the per-program coverage signal the
    coverage-guided fuzzer schedules on (:mod:`repro.fuzz.coverage`).
    Instances are picklable and mergeable, so batch workers can each
    keep their own counters and the parent process can report exact
    aggregate hit rates (:meth:`merge`).
    """

    __slots__ = (
        "prove_calls",
        "prove_hits",
        "subtype_calls",
        "subtype_hits",
        "lookup_calls",
        "lookup_hits",
        "theory_goals",
        "theory_batches",
        "session_builds",
        "session_derives",
        "session_hits",
        "persist_hits",
        "persist_misses",
        "theory_queries",
        "solver_counters",
        "rule_hits",
        "stage_ns",
    )

    #: dict-valued slots: merged key-wise, not by integer addition
    _DICT_SLOTS = ("theory_queries", "solver_counters", "rule_hits", "stage_ns")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.prove_calls = 0
        self.prove_hits = 0
        self.subtype_calls = 0
        self.subtype_hits = 0
        self.lookup_calls = 0
        self.lookup_hits = 0
        self.theory_goals = 0
        self.theory_batches = 0
        self.session_builds = 0
        self.session_derives = 0
        self.session_hits = 0
        self.persist_hits = 0
        self.persist_misses = 0
        self.theory_queries: Dict[str, int] = {}
        self.solver_counters: Dict[str, int] = {}
        self.rule_hits: Dict[str, int] = {}
        #: kernel stage → wall-clock nanoseconds, filled only while a
        #: :class:`StageTimers` is attached (``repro profile``, ``fuzz
        #: --profile``); empty — and costing nothing — otherwise.
        self.stage_ns: Dict[str, int] = {}

    @staticmethod
    def _rate(hits: int, calls: int) -> float:
        return (100.0 * hits / calls) if calls else 0.0

    @property
    def prove_hit_rate(self) -> float:
        return self._rate(self.prove_hits, self.prove_calls)

    @property
    def subtype_hit_rate(self) -> float:
        return self._rate(self.subtype_hits, self.subtype_calls)

    @property
    def lookup_hit_rate(self) -> float:
        return self._rate(self.lookup_hits, self.lookup_calls)

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold another worker's counters into this one (in place).

        Every counter is additive, so hit *rates* computed after the
        merge are the exact aggregate rates across workers.  Returns
        ``self`` so merges chain.
        """
        for slot in self.__slots__:
            if slot in self._DICT_SLOTS:
                mine = getattr(self, slot)
                for name, count in getattr(other, slot).items():
                    mine[name] = mine.get(name, 0) + count
            else:
                setattr(self, slot, getattr(self, slot) + getattr(other, slot))
        return self

    def copy(self) -> "EngineStats":
        """An independent snapshot of the current counters."""
        return EngineStats().merge(self)

    def delta_from(self, baseline: "EngineStats") -> "EngineStats":
        """Counters accumulated since ``baseline`` (a prior :meth:`copy`).

        A long-lived engine's counters only ever grow; per-request
        reporting (the checking daemon, resident pool workers) snapshots
        before a request and subtracts after, so every response can
        carry exactly the work that request caused.
        """
        delta = EngineStats()
        for slot in self.__slots__:
            if slot in self._DICT_SLOTS:
                mine = getattr(delta, slot)
                base = getattr(baseline, slot)
                for name, count in getattr(self, slot).items():
                    before = base.get(name, 0)
                    if count - before:
                        mine[name] = count - before
            else:
                setattr(delta, slot, getattr(self, slot) - getattr(baseline, slot))
        return delta

    # pickling support: __slots__ classes need explicit state plumbing
    # for protocol-independence (batch workers ship these to the parent)
    def __getstate__(self) -> Dict[str, object]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.reset()
        for slot, value in state.items():
            setattr(self, slot, value)

    def as_dict(self) -> Dict[str, object]:
        return {
            "prove_calls": self.prove_calls,
            "prove_hits": self.prove_hits,
            "subtype_calls": self.subtype_calls,
            "subtype_hits": self.subtype_hits,
            "lookup_calls": self.lookup_calls,
            "lookup_hits": self.lookup_hits,
            "theory_goals": self.theory_goals,
            "theory_batches": self.theory_batches,
            "session_builds": self.session_builds,
            "session_derives": self.session_derives,
            "session_hits": self.session_hits,
            "persist_hits": self.persist_hits,
            "persist_misses": self.persist_misses,
            "theory_queries": dict(self.theory_queries),
            "solver_counters": dict(self.solver_counters),
            "rule_hits": dict(self.rule_hits),
            "stage_ns": dict(self.stage_ns),
        }


class StageTimers:
    """Wall-clock accounting per kernel stage, re-entrancy aware.

    Attached to a :class:`Logic` via :meth:`Logic.enable_stage_timers`;
    the kernel stages bracket their work with :meth:`enter`/:meth:`exit`
    only when an instance is attached, so the default (detached) hot
    path pays a single ``is None`` test.  Stages recurse into each
    other (``prove`` case-splits re-enter ``saturate`` which re-enters
    ``prove``): a per-stage depth counter ensures only the *outermost*
    bracket of each stage accumulates, so ``stage_ns["prove"]`` is the
    total wall-clock spent with the prover on the stack — nested
    re-entries are not double-counted.
    """

    __slots__ = ("stats", "_depths")

    def __init__(self, stats: EngineStats) -> None:
        self.stats = stats
        self._depths: Dict[str, int] = {}

    def enter(self, stage: str) -> int:
        """Open a bracket; returns a start stamp (0 when nested)."""
        depths = self._depths
        depth = depths.get(stage, 0)
        depths[stage] = depth + 1
        return perf_counter_ns() if depth == 0 else 0

    def exit(self, stage: str, started: int) -> None:
        """Close a bracket opened by :meth:`enter`."""
        self._depths[stage] -= 1
        if started:
            stage_ns = self.stats.stage_ns
            stage_ns[stage] = (
                stage_ns.get(stage, 0) + perf_counter_ns() - started
            )


class Logic:
    """The proof, subtyping and environment-extension judgments."""

    def __init__(
        self,
        registry: Optional[TheoryRegistry] = None,
        use_representatives: bool = True,
        max_depth: int = 64,
        max_splits: int = 5,
        cache_limit: int = 1 << 17,
        session_limit: int = 1 << 12,
        max_steps: int = 200_000,
    ):
        self.registry = registry if registry is not None else default_registry()
        #: section 4.1 "Representative objects"; disabled for the ablation study.
        self.use_representatives = use_representatives
        #: fuel for the proof *search* (case splits, refutations); the
        #: structural walk over propositions costs no fuel.
        self.max_depth = max_depth
        self.max_splits = max_splits
        #: worklist budget per environment extension — the saturation
        #: stage's termination backstop (replaces the old recursion depth).
        self.max_steps = max_steps
        self.stats = EngineStats()
        #: bumped by every :meth:`reset_caches`; leases and long-lived
        #: callers compare it to detect that their derived state is stale.
        self.epoch = 0
        #: bound on each memo table; exceeding it clears the table (the
        #: simplest policy that can never serve a stale entry).
        self._cache_limit = cache_limit
        self._session_limit = session_limit
        # The judgment caches are keyed by (environment fingerprint,
        # stable intern id(s) of the goal terms): ids hash and compare
        # at C speed and never outlive the canonical node they denote
        # (ids are drawn from a monotone counter and never reused, so
        # after an intern-table clear an id-keyed entry can only miss,
        # never answer for a different value).
        self._prove_cache: Dict[Tuple[EnvKey, int], bool] = {}
        self._subtype_cache: Dict[Tuple[EnvKey, int, int], Tuple[bool, int]] = {}
        self._lookup_cache: Dict[
            Tuple[EnvKey, int], Tuple[Optional[Type], int]
        ] = {}
        #: ``obj ∈ ty`` (by intern ids) → derived theory atoms;
        #: environment-independent once the object is canonical, so
        #: shared across all queries.
        self._numeric_cache: Dict[Tuple[int, int], Tuple[TheoryProp, ...]] = {}
        self._sessions: Dict[EnvKey, RegistrySession] = {}
        #: optional per-stage wall-clock accounting; ``None`` (the
        #: default) keeps the hot path timer-free.
        self.timers: Optional[StageTimers] = None
        #: optional cross-run verdict store (attached by the batch layer)
        self._persist = None
        #: active request budget (deadline / cancellation token); the
        #: kernel stages read it directly, the solver cores read the
        #: thread-local mirror set by :meth:`budgeted`.
        self.budget: Optional[Budget] = None
        # the layered kernel (normalize → saturate → dispatch → prove)
        self.kernel = ProofKernel(self)
        self.saturator = Saturator(self)
        self.dispatch = TheoryDispatch(self)

    # ------------------------------------------------------------------
    # cache lifecycle
    # ------------------------------------------------------------------
    def reset_caches(self, epoch: Optional[int] = None) -> None:
        """Drop every memoised judgment and invalidate theory sessions.

        Sessions already handed out (``theory_session`` results held by
        callers) are invalidated too: clearing :attr:`_sessions` means
        they will never be served — or derived from — again, and their
        memo tables are cleared so a stale answer cannot leak through a
        retained reference.  An attached persistent cache is flushed
        and its in-memory view dropped, so a reset engine re-reads only
        what is actually on disk.

        ``epoch`` lets a coordinator (the multi-lane daemon) drive a
        *fleet* of engines to one shared epoch: the engine's epoch
        still advances by at least one, but never lands below the
        target, so replicas that missed intermediate resets converge in
        a single call.
        """
        self.epoch += 1
        if epoch is not None and epoch > self.epoch:
            self.epoch = epoch
        self._prove_cache.clear()
        self._subtype_cache.clear()
        self._lookup_cache.clear()
        self._numeric_cache.clear()
        for session in self._sessions.values():
            session.invalidate()  # a retained handle recomputes, never replays
        self._sessions.clear()
        if self._persist is not None:
            self._persist.flush()
            self._persist.drop_memory()

    def replica(self) -> "Logic":
        """A fresh engine with this engine's exact configuration.

        The daemon's extra lanes are built from replicas: each carries
        its own theory registry (solver contexts — incremental
        constraint sets, the shared bit-blaster — are not thread-safe,
        so engines on different threads must never share one), its own
        memo tables and its own :class:`EngineStats`, and starts at the
        parent's epoch.  Verdict equality is by construction: replicas
        agree on :meth:`config_key`, and every cache is content-
        addressed, so a replica can never answer differently from a
        fresh engine — this is pinned by the differential lane-
        equivalence suite (``tests/test_server_lanes.py``).
        """
        clone = type(self)(
            registry=None,  # a private registry: solver state never crosses threads
            use_representatives=self.use_representatives,
            max_depth=self.max_depth,
            max_splits=self.max_splits,
            cache_limit=self._cache_limit,
            session_limit=self._session_limit,
            max_steps=self.max_steps,
        )
        clone.epoch = self.epoch
        if clone.config_key() != self.config_key():
            raise ValueError(
                f"replica configuration diverged: {clone.config_key()!r} "
                f"!= {self.config_key()!r}"
            )
        return clone

    def config_key(self) -> str:
        """The persistent-cache namespace of this engine configuration.

        Covers everything that can influence a verdict: the Logic
        subclass (an injected-bug engine must never poison the sound
        namespace), the search/saturation bounds, representative mode,
        and each registered theory's own parameters
        (:meth:`~repro.theories.base.Theory.config_key`).
        """
        theories = ",".join(theory.config_key() for theory in self.registry.theories)
        return (
            f"{type(self).__module__}.{type(self).__qualname__}"
            f"|reps={int(self.use_representatives)}"
            f"|depth={self.max_depth}|splits={self.max_splits}"
            f"|steps={self.max_steps}|theories={theories}"
        )

    @contextmanager
    def budgeted(self, budget: Optional[Budget]):
        """Run a block under a request budget (deadline / cancellation).

        Installs ``budget`` both on the façade (for the kernel stages)
        and in the thread-local slot the solver cores consult, binds it
        to this engine's ``rule_hits`` so aborts are counted, and
        restores the previous budget on exit.  A :class:`CancelledError`
        raised inside the block unwinds through exception-safe paths
        only (see :mod:`repro.budget`), so the engine stays warm and
        consistent — callers turn the exception into a structured,
        retryable error and keep serving.
        """
        if budget is None:
            yield None
            return
        previous = self.budget
        budget.bind_stats(self.stats.rule_hits)
        self.budget = budget
        try:
            with activate_budget(budget):
                yield budget
        finally:
            self.budget = previous

    def enable_stage_timers(self) -> StageTimers:
        """Attach per-stage wall-clock timers (``EngineStats.stage_ns``).

        Idempotent; returns the attached :class:`StageTimers`.  Only
        profiling entry points (``repro profile``, ``fuzz --profile``)
        call this — a timer-free engine pays one ``is None`` test per
        stage.
        """
        if self.timers is None:
            self.timers = StageTimers(self.stats)
        return self.timers

    def attach_persistent_cache(self, cache) -> None:
        """Attach a cross-run proof cache (see :mod:`repro.batch.cache`).

        Only top-level ``proves`` verdicts go through it; they are
        content-addressed by (Γ digest, goal digest), so a hit returns
        exactly what the search would recompute.
        """
        self._persist = cache
        bind = getattr(cache, "bind_stats", None)
        if bind is not None:
            # corruption-recovery events show up in rule_hits
            # (``cache.shard-skipped``) next to the kernel's counters
            bind(self.stats.rule_hits)

    def detach_persistent_cache(self):
        cache, self._persist = self._persist, None
        return cache

    # ==================================================================
    # environment extension (proposition assimilation)
    # ==================================================================
    def extend(self, env: Env, prop: Prop) -> Env:
        """Return a new environment assuming ``prop`` (Γ, ψ)."""
        return self.saturator.extend(env, prop)

    # ==================================================================
    # the proof judgment Γ ⊢ ψ
    # ==================================================================
    def proves(self, env: Env, goal: Prop) -> bool:
        """Γ ⊢ ψ, memoised.

        Top-level queries always run with full fuel, so the cached
        answer is exactly what the search would recompute; the key pairs
        the environment's structural fingerprint with the goal, which
        makes invalidation automatic — extending Γ yields a different
        fingerprint, never a stale hit.
        """
        self.stats.prove_calls += 1
        key = (env.fingerprint(), goal._iid)
        cached = self._prove_cache.get(key)
        if cached is not None:
            self.stats.prove_hits += 1
            return cached
        timers = self.timers
        if timers is not None:
            started = timers.enter("prove")
            try:
                return self._proves_miss(env, goal, key)
            finally:
                timers.exit("prove", started)
        return self._proves_miss(env, goal, key)

    def _proves_miss(self, env: Env, goal: Prop, key) -> bool:
        persist_key = None
        if self._persist is not None:
            persist_key = self._persist.prove_key(env, goal)
            stored = self._persist.get_prove(persist_key)
            if stored is not None:
                self.stats.persist_hits += 1
                if len(self._prove_cache) >= self._cache_limit:
                    self._prove_cache.clear()
                self._prove_cache[key] = stored
                return stored
            self.stats.persist_misses += 1
        result = self.kernel.prove(env, goal, 0)
        if len(self._prove_cache) >= self._cache_limit:
            self._prove_cache.clear()
        self._prove_cache[key] = result
        if persist_key is not None:
            self._persist.put_prove(persist_key, result)
        return result

    # ==================================================================
    # lookups (used by the checker for variable references)
    # ==================================================================
    def _lookup(self, env: Env, obj: Obj, depth: int) -> Optional[Type]:
        return self.kernel._lookup(env, obj, depth)

    # ==================================================================
    # subtyping (Figure 5) and result subtyping (SR-Result, SR-Exists)
    # ==================================================================
    def subtype(self, env: Env, sub: Type, sup: Type) -> bool:
        return self.kernel._subtype(env, sub, sup, 0)

    def result_subtype(self, env: Env, sub: TypeResult, sup: TypeResult) -> bool:
        return self.kernel._result_subtype(env, sub, sup, 0)

    # ==================================================================
    # theory sessions and the projection [[Γ]]_T
    # ==================================================================
    def theory_session(self, env: Env) -> RegistrySession:
        """The incremental theory session holding ``[[Γ]]_T``.

        One session is kept per environment state.  On a miss the
        session is *derived* from the parent environment's session
        whenever the parent's assumption set is contained in this one —
        the solvers' translated state is cloned and only the delta is
        asserted, mirroring an SMT push — and built from scratch
        otherwise.
        """
        key = env.fingerprint()
        session = self._sessions.get(key)
        if session is not None:
            self.stats.session_hits += 1
            return session
        timers = self.timers
        if timers is None:
            return self._session_miss(env, key)
        started = timers.enter("session")
        try:
            return self._session_miss(env, key)
        finally:
            timers.exit("session", started)

    def _session_miss(self, env: Env, key: EnvKey) -> RegistrySession:
        session = None
        assumptions = self.theory_assumptions(env)
        # Walk the extension lineage for the nearest environment that
        # already owns a session whose assumption set this one extends.
        ancestor = env.parent()
        for _ in range(8):
            if ancestor is None:
                break
            ancestor_session = self._sessions.get(ancestor.fingerprint())
            if ancestor_session is None and ancestor.parent() is not None:
                # Materialise the ancestor's session (recursively
                # deriving it from *its* lineage): siblings extending
                # the same Γ then share the translated prefix instead
                # of each re-asserting the whole projection.
                ancestor_session = self.theory_session(ancestor)
            if ancestor_session is not None:
                ancestor_facts = set(self.theory_assumptions(ancestor))
                delta = [a for a in assumptions if a not in ancestor_facts]
                if len(assumptions) - len(delta) == len(ancestor_facts):
                    # ancestor ⊆ child: reuse the translated prefix.
                    session = ancestor_session.derive(delta)
                    self.stats.session_derives += 1
                break
            ancestor = ancestor.parent()
        if session is None:
            session = self.registry.session(
                self.stats.theory_queries, self.stats.solver_counters
            )
            session.assert_all(assumptions)
            self.stats.session_builds += 1
        if len(self._sessions) >= self._session_limit:
            self._sessions.clear()
        self._sessions[key] = session
        return session

    def lease_session(self, env: Optional[Env] = None) -> "SessionLease":
        """Lease an epoch-guarded, caller-private theory session.

        Long-lived callers (server connections, watch loops) need
        theory state that survives across many queries, can layer
        speculative caller-private assumptions over the shared engine,
        and is never replayed across :meth:`reset_caches`.  The lease's
        session is a *derived clone* of the engine's session for
        ``env`` (default: the empty environment), so nothing asserted
        through the lease ever reaches the engine's shared session map
        — the isolation layer between concurrent clients of one warm
        engine.
        """
        return SessionLease(self, env if env is not None else Env())

    def theory_assumptions(self, env: Env) -> List[Prop]:
        if env._theory_cache is not None:
            return env._theory_cache
        facts: List[Prop] = []
        seen: set = set()
        canon = self.kernel._canon

        def push(prop: Prop) -> None:
            if isinstance(prop, TheoryProp) and prop not in seen:
                seen.add(prop)
                facts.append(prop)

        for fact in env.theory_facts:
            push(self.kernel._canon_theory(env, fact))
        for obj, ty in env.types.items():
            canonical = canon(env, obj)
            key = (canonical._iid, ty._iid)
            derived = self._numeric_cache.get(key)
            if derived is None:
                derived = tuple(self._numeric_facts(canonical, ty, 0))
                if len(self._numeric_cache) >= self._cache_limit:
                    self._numeric_cache.clear()
                self._numeric_cache[key] = derived
            for fact in derived:
                push(fact)
        if not self.use_representatives:
            # Without representative substitution, alias classes are
            # exported to the theories as explicit equations.
            for members in env.aliases.classes():
                rep = env.aliases.find(members[0])
                for member in members:
                    if member == rep:
                        continue
                    if isinstance(member, PairObj) or isinstance(rep, PairObj):
                        continue
                    for atom in _theory_atoms(lin_eq(member, rep)):
                        push(atom)
        env._theory_cache = facts
        return facts

    def _numeric_facts(self, obj: Obj, ty: Type, depth: int) -> Iterator[TheoryProp]:
        """Theory atoms implied by ``obj ∈ ty`` (recursing into structure)."""
        if depth > 12 or obj.is_null():
            return
        if isinstance(ty, Refine):
            yield from _theory_atoms(prop_subst(ty.prop, {ty.var: obj}))
            yield from self._numeric_facts(obj, ty.base, depth + 1)
        elif isinstance(ty, Pair):
            yield from self._numeric_facts(obj_field(FST, obj), ty.fst, depth + 1)
            yield from self._numeric_facts(obj_field(SND, obj), ty.snd, depth + 1)
        elif isinstance(ty, (Vec, StrT)):
            fact = lin_le(obj_int(0), obj_field(LEN, obj))
            if isinstance(fact, TheoryProp):
                yield fact


def _theory_atoms(prop: Prop) -> Iterator[TheoryProp]:
    """The theory atoms in the positive conjunctive fragment of ``prop``."""
    if isinstance(prop, TheoryProp):
        yield prop
    elif isinstance(prop, And):
        for conjunct in prop.conjuncts:
            yield from _theory_atoms(conjunct)


class SessionLease:
    """An epoch-guarded handle on a caller-private theory session.

    The shared engine's session map (:meth:`Logic.theory_session`) is
    content-addressed and therefore safe to share, but it offers no
    place for *caller-scoped* assumptions: anything asserted on a
    shared session would be visible to every other client of the
    engine.  A lease solves both halves of the long-lived-service
    problem:

    * **Isolation** — :meth:`session` is a private
      :meth:`~repro.theories.registry.RegistrySession.derive`\\ d clone;
      :meth:`scoped` brackets caller assumptions between ``push`` and
      ``pop`` on that clone, so per-connection facts never enter shared
      state and never outlive the bracket.
    * **Epoch guard** — the lease records ``Logic.epoch`` when its
      session is built.  Any :meth:`Logic.reset_caches` (which also
      invalidates live sessions) bumps the epoch; the next use of a
      stale lease transparently rebuilds from scratch instead of
      replaying invalidated solver state.
    """

    __slots__ = ("_logic", "_env", "_epoch", "_session")

    def __init__(self, logic: Logic, env: Env) -> None:
        self._logic = logic
        self._env = env
        self._epoch = -1
        self._session: Optional[RegistrySession] = None

    @property
    def valid(self) -> bool:
        """Does the leased session still reflect the engine's state?"""
        return (
            self._session is not None
            and self._epoch == self._logic.epoch
            and not self._session.stale
        )

    def invalidate(self) -> None:
        """Drop the leased session; the next use rebuilds it."""
        self._session = None

    def session(self) -> RegistrySession:
        """The private session, rebuilt if the engine epoch moved."""
        if not self.valid:
            self._epoch = self._logic.epoch
            self._session = self._logic.theory_session(self._env).derive(())
        return self._session

    def entails(self, goal: TheoryProp) -> bool:
        """Decide a goal against the leased session's assumptions."""
        return self.session().entails(goal)

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        return self.session().entails_batch(goals)

    @contextmanager
    def scoped(self, assumptions: Sequence[Prop] = ()):
        """Layer caller-private assumptions for the extent of a block.

        The assumptions are asserted inside a fresh ``push`` frame on
        the leased session and popped on exit — even on an escaping
        error — so a request's speculative facts cannot leak into the
        next request, let alone into another connection's lease.
        """
        session = self.session()
        session.push()
        try:
            session.assert_all(assumptions)
            yield session
        finally:
            # the pop only applies to the session the frame was pushed
            # on; a mid-block reset invalidated that session wholesale.
            if self._session is session:
                session.pop()
