"""The λRTR proof system (Figure 6) and subtyping (Figure 5).

:class:`Logic` packages the judgments the type checker consults:

* ``extend``  — assimilate a proposition into a hybrid environment,
  implementing L-RefE (refinements are unpacked as they are learned),
  L-Update± (field information iteratively refines the standard type
  environment via the Figure 7 metafunction), L-TypeFork / L-ObjFork
  (pair facts decompose pointwise), and alias-class maintenance;
* ``proves``  — Γ ⊢ ψ, combining the natural-deduction core, L-Sub,
  L-Not (refutation), L-Bot (ex falso), L-Transport (via canonical
  representatives) and L-Theory (solver-backed atoms);
* ``subtype`` / ``result_subtype`` — Figure 5, including S-Refine1/2
  (refinement inquiries become logical inquiries) and SR-Exists
  (existential results open their binders into the environment).

All judgments are depth-bounded: on fuel exhaustion they answer "not
derivable", which only ever makes the checker more conservative.

The engine is *incremental* (the scalability discipline of section 4):
one :class:`Logic` instance is threaded through a whole program check,
and it memoises its judgments across queries.

* ``proves`` and ``subtype`` answers are cached keyed by the
  environment's exact structural fingerprint
  (:meth:`repro.logic.env.Env.fingerprint`) and the goal — learning any
  new fact changes the fingerprint, so invalidation is automatic and a
  stale answer can never be served.
* Depth-bounded internal judgments additionally record the fuel they
  were decided with: a negative ("not derivable") answer is only reused
  when at least as much fuel was available, so caching never makes the
  checker *more* conservative than the uncached search.
* L-Theory goes through per-environment
  :class:`~repro.theories.registry.RegistrySession` objects — SMT-style
  push/pop contexts in which Γ's theory projection is translated once
  per environment state (and derived incrementally from the parent
  environment's session where possible) instead of once per goal.

:class:`EngineStats` counts calls, cache hits and per-theory queries;
the CLI's ``--stats`` flag and :mod:`repro.study.report` surface it.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..theories.registry import RegistrySession, TheoryRegistry, default_registry
from ..tr.objects import (
    FST,
    LEN,
    NULL,
    SND,
    BVExpr,
    FieldRef,
    LinExpr,
    Obj,
    PairObj,
    Var,
    obj_field,
    obj_int,
)
from ..tr.props import (
    Alias,
    And,
    BVProp,
    Congruence,
    make_congruence,
    FalseProp,
    IsType,
    LeqZero,
    NotType,
    Or,
    Prop,
    TheoryProp,
    TrueProp,
    lin_eq,
    lin_le,
    make_and,
    make_or,
    negate_prop,
)
from ..tr.results import TypeResult, fresh_name
from ..tr.subst import prop_subst, result_subst, type_subst
from ..tr.types import (
    BOT,
    FALSE,
    INT,
    TOP,
    Fun,
    Pair,
    Poly,
    Refine,
    Top,
    TVar,
    Type,
    Union,
    Vec,
    make_union,
    union_members,
)
from ..tr.types import Str as StrT
from .env import Env, EnvKey, split_path
from .update import overlap, remove, restrict, update

__all__ = ["EngineStats", "Logic"]


class EngineStats:
    """Counters for the incremental engine's hot paths.

    ``theory_queries`` maps theory name → number of solver consultations
    (a session memo hit never reaches a solver, so the counts measure
    real work).
    """

    __slots__ = (
        "prove_calls",
        "prove_hits",
        "subtype_calls",
        "subtype_hits",
        "lookup_calls",
        "lookup_hits",
        "theory_goals",
        "session_builds",
        "session_derives",
        "session_hits",
        "theory_queries",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.prove_calls = 0
        self.prove_hits = 0
        self.subtype_calls = 0
        self.subtype_hits = 0
        self.lookup_calls = 0
        self.lookup_hits = 0
        self.theory_goals = 0
        self.session_builds = 0
        self.session_derives = 0
        self.session_hits = 0
        self.theory_queries: Dict[str, int] = {}

    @staticmethod
    def _rate(hits: int, calls: int) -> float:
        return (100.0 * hits / calls) if calls else 0.0

    @property
    def prove_hit_rate(self) -> float:
        return self._rate(self.prove_hits, self.prove_calls)

    @property
    def subtype_hit_rate(self) -> float:
        return self._rate(self.subtype_hits, self.subtype_calls)

    @property
    def lookup_hit_rate(self) -> float:
        return self._rate(self.lookup_hits, self.lookup_calls)

    def as_dict(self) -> Dict[str, object]:
        return {
            "prove_calls": self.prove_calls,
            "prove_hits": self.prove_hits,
            "subtype_calls": self.subtype_calls,
            "subtype_hits": self.subtype_hits,
            "lookup_calls": self.lookup_calls,
            "lookup_hits": self.lookup_hits,
            "theory_goals": self.theory_goals,
            "session_builds": self.session_builds,
            "session_derives": self.session_derives,
            "session_hits": self.session_hits,
            "theory_queries": dict(self.theory_queries),
        }


class Logic:
    """The proof, subtyping and environment-extension judgments."""

    def __init__(
        self,
        registry: Optional[TheoryRegistry] = None,
        use_representatives: bool = True,
        max_depth: int = 64,
        max_splits: int = 5,
        cache_limit: int = 1 << 17,
        session_limit: int = 1 << 12,
    ):
        self.registry = registry if registry is not None else default_registry()
        #: section 4.1 "Representative objects"; disabled for the ablation study.
        self.use_representatives = use_representatives
        self.max_depth = max_depth
        self.max_splits = max_splits
        self.stats = EngineStats()
        #: bound on each memo table; exceeding it clears the table (the
        #: simplest policy that can never serve a stale entry).
        self._cache_limit = cache_limit
        self._session_limit = session_limit
        self._prove_cache: Dict[Tuple[EnvKey, Prop], bool] = {}
        self._subtype_cache: Dict[Tuple[EnvKey, Type, Type], Tuple[bool, int]] = {}
        self._lookup_cache: Dict[
            Tuple[EnvKey, Obj], Tuple[Optional[Type], int]
        ] = {}
        #: ``obj ∈ ty`` → derived theory atoms; environment-independent
        #: once the object is canonical, so shared across all queries.
        self._numeric_cache: Dict[Tuple[Obj, Type], Tuple[TheoryProp, ...]] = {}
        self._sessions: Dict[EnvKey, RegistrySession] = {}

    def reset_caches(self) -> None:
        """Drop every memoised judgment and theory session."""
        self._prove_cache.clear()
        self._subtype_cache.clear()
        self._lookup_cache.clear()
        self._numeric_cache.clear()
        self._sessions.clear()

    # ==================================================================
    # environment extension (proposition assimilation)
    # ==================================================================
    def extend(self, env: Env, prop: Prop) -> Env:
        """Return a new environment assuming ``prop`` (Γ, ψ)."""
        new_env = env.snapshot()
        self._assimilate(new_env, prop, 0)
        # Remember the lineage (weakly): the child's theory session can
        # then be derived from the parent's instead of built from Γ.
        new_env._parent = weakref.ref(env)
        return new_env

    def _canon(self, env: Env, obj: Obj) -> Obj:
        if self.use_representatives:
            return env.canon_obj(obj)
        return obj

    def _assimilate(self, env: Env, prop: Prop, depth: int) -> None:
        if env.inconsistent or depth > self.max_depth:
            return
        if isinstance(prop, TrueProp):
            return
        if isinstance(prop, FalseProp):
            env.mark_inconsistent()
            return
        if isinstance(prop, And):
            for conjunct in prop.conjuncts:
                self._assimilate(env, conjunct, depth + 1)
            return
        if isinstance(prop, Or):
            live = [d for d in prop.disjuncts if not self._quick_refuted(env, d)]
            if not live:
                env.mark_inconsistent()
            elif len(live) == 1:
                self._assimilate(env, live[0], depth + 1)
            else:
                env.add_compound(make_or(live))
            return
        if isinstance(prop, Alias):
            self._learn_alias(env, prop.left, prop.right, depth)
            return
        if isinstance(prop, IsType):
            self._learn_type(env, prop.obj, prop.type, True, depth)
            return
        if isinstance(prop, NotType):
            self._learn_type(env, prop.obj, prop.type, False, depth)
            return
        if isinstance(prop, TheoryProp):
            canonical = self._canon_theory(env, prop)
            if isinstance(canonical, FalseProp):
                env.mark_inconsistent()
            elif isinstance(canonical, TheoryProp):
                env.add_theory_fact(canonical)
            return
        env.add_compound(prop)  # e.g. _Unrefutable atoms: inert but kept

    def _quick_refuted(self, env: Env, prop: Prop) -> bool:
        """A cheap refutation used to shrink disjunctions on assimilation."""
        if isinstance(prop, FalseProp):
            return True
        if isinstance(prop, IsType):
            obj = self._canon(env, prop.obj)
            known = env.types.get(obj)
            if known is not None and not overlap(known, prop.type):
                return True
        return False

    def _learn_alias(self, env: Env, left: Obj, right: Obj, depth: int) -> None:
        left = self._canon(env, left)
        right = self._canon(env, right)
        if left.is_null() or right.is_null() or left == right:
            return
        if isinstance(left, PairObj) and isinstance(right, PairObj):
            # L-ObjFork
            self._learn_alias(env, left.fst, right.fst, depth + 1)
            self._learn_alias(env, left.snd, right.snd, depth + 1)
            return
        env.merge_alias(left, right)
        if self.use_representatives:
            self._recanon(env, depth)

    def _recanon(self, env: Env, depth: int) -> None:
        """Re-key every record onto current representatives (L-Transport)."""
        old_types = env.types
        old_negs = env.negs
        old_facts = env.theory_facts
        env.reset_records()
        for obj, ty in old_types.items():
            self._learn_type(env, obj, ty, True, depth + 1)
        for obj, tys in old_negs.items():
            for ty in tys:
                self._learn_type(env, obj, ty, False, depth + 1)
        for fact in old_facts:
            canonical = self._canon_theory(env, fact)
            if isinstance(canonical, FalseProp):
                env.mark_inconsistent()
            elif isinstance(canonical, TheoryProp):
                env.add_theory_fact(canonical)

    def _canon_theory(self, env: Env, prop: TheoryProp) -> Prop:
        """Canonicalise a theory atom's objects; may constant-fold."""
        if isinstance(prop, LeqZero):
            expr = self._canon(env, prop.expr)
            if expr.is_null():
                return TrueProp()
            if isinstance(expr, LinExpr) and expr.is_constant():
                return TrueProp() if expr.const <= 0 else FalseProp()
            if not isinstance(expr, LinExpr):
                expr = LinExpr(0, ((expr, 1),))
            return LeqZero(expr)
        if isinstance(prop, BVProp):
            lhs = self._canon(env, prop.lhs)
            rhs = self._canon(env, prop.rhs)
            if lhs.is_null() or rhs.is_null():
                return TrueProp()
            return BVProp(prop.op, lhs, rhs, prop.width)
        if isinstance(prop, Congruence):
            return make_congruence(
                self._canon(env, prop.obj), prop.modulus, prop.residue
            )
        return prop

    def _learn_type(self, env: Env, obj: Obj, ty: Type, positive: bool, depth: int) -> None:
        if env.inconsistent or depth > self.max_depth:
            return
        obj = self._canon(env, obj)
        if obj.is_null():
            return
        sub = self._subtype_closure(env, depth)
        if positive:
            if isinstance(ty, Refine):
                # L-RefE: unpack the refinement as it is learned.
                self._learn_type(env, obj, ty.base, True, depth + 1)
                self._assimilate(env, prop_subst(ty.prop, {ty.var: obj}), depth + 1)
                return
            if isinstance(obj, PairObj) and isinstance(ty, Pair):
                # L-TypeFork
                self._learn_type(env, obj.fst, ty.fst, True, depth + 1)
                self._learn_type(env, obj.snd, ty.snd, True, depth + 1)
                return
            if isinstance(ty, Union) and not ty.members:
                env.mark_inconsistent()  # L-Bot territory
                return
            if isinstance(ty, (Vec, StrT)):
                # Vector and string lengths are natural numbers.
                length_fact = lin_le(obj_int(0), obj_field(LEN, obj))
                if isinstance(length_fact, TheoryProp):
                    env.add_theory_fact(length_fact)
            existing = env.types.get(obj)
            new_ty = ty if existing is None else restrict(existing, ty, sub)
            env.set_type(obj, new_ty)
            if isinstance(new_ty, Union) and not new_ty.members:
                env.mark_inconsistent()
                return
            # L-Update+: push field knowledge into the root's type.
            root, path = split_path(obj)
            if path and root in env.types:
                updated = update(env.types[root], path, ty, True, sub)
                env.set_type(root, updated)
                if isinstance(updated, Union) and not updated.members:
                    env.mark_inconsistent()
        else:
            if isinstance(ty, Refine):
                # o ∉ {x:τ|ψ} ⟺ o ∉ τ ∨ ¬ψ[x↦o]  (M-RefineNot1/2)
                unpacked = make_or(
                    (
                        NotType(obj, ty.base),
                        negate_prop(prop_subst(ty.prop, {ty.var: obj})),
                    )
                )
                self._assimilate(env, unpacked, depth + 1)
                return
            existing = env.types.get(obj)
            if existing is None:
                existing = self._lookup(env, obj, depth + 1)
            if existing is not None:
                new_ty = remove(existing, ty, sub)
                env.set_type(obj, new_ty)
                if isinstance(new_ty, Union) and not new_ty.members:
                    env.mark_inconsistent()
                    return
            env.add_neg(obj, ty)
            # L-Update-
            root, path = split_path(obj)
            if path and root in env.types:
                updated = update(env.types[root], path, ty, False, sub)
                env.set_type(root, updated)
                if isinstance(updated, Union) and not updated.members:
                    env.mark_inconsistent()

    # ==================================================================
    # lookups
    # ==================================================================
    def _lookup(self, env: Env, obj: Obj, depth: int) -> Optional[Type]:
        """The best structural type known for ``obj`` (L-Sub's premise).

        Memoised per (environment fingerprint, object); an entry is
        reused only when it was computed with at least as much fuel, so
        a fuel-starved (less precise) answer never replaces what a
        deeper search would have derived.
        """
        if depth > self.max_depth:
            return None
        self.stats.lookup_calls += 1
        fuel = self.max_depth - depth
        key = (env.fingerprint(), obj)
        hit = self._lookup_cache.get(key)
        if hit is not None and hit[1] >= fuel:
            self.stats.lookup_hits += 1
            return hit[0]
        result = self._lookup_search(env, obj, depth)
        if hit is None or fuel > hit[1]:
            if len(self._lookup_cache) >= self._cache_limit:
                self._lookup_cache.clear()
            self._lookup_cache[key] = (result, fuel)
        return result

    def _lookup_search(self, env: Env, obj: Obj, depth: int) -> Optional[Type]:
        obj = self._canon(env, obj)
        candidates: List[Type] = []
        direct = env.types.get(obj)
        if direct is not None:
            candidates.append(direct)
        if isinstance(obj, (LinExpr, BVExpr)):
            # Linear and bitvector expressions are integer-valued by
            # construction (the checker only builds them from Int terms).
            candidates.append(INT)
        if isinstance(obj, PairObj):
            fst_ty = self._lookup(env, obj.fst, depth + 1)
            snd_ty = self._lookup(env, obj.snd, depth + 1)
            if fst_ty is not None and snd_ty is not None:
                candidates.append(Pair(fst_ty, snd_ty))
        if isinstance(obj, FieldRef):
            base_ty = self._lookup(env, obj.base, depth + 1)
            if base_ty is not None:
                derived = _field_component(base_ty, obj.field)
                if derived is not None:
                    candidates.append(derived)
        if not candidates:
            return None
        sub = self._subtype_closure(env, depth)
        result = candidates[0]
        for extra in candidates[1:]:
            result = restrict(result, extra, sub)
        return result

    # ==================================================================
    # the proof judgment Γ ⊢ ψ
    # ==================================================================
    def proves(self, env: Env, goal: Prop) -> bool:
        """Γ ⊢ ψ, memoised.

        Top-level queries always run with full fuel, so the cached
        answer is exactly what the search would recompute; the key pairs
        the environment's structural fingerprint with the goal, which
        makes invalidation automatic — extending Γ yields a different
        fingerprint, never a stale hit.
        """
        self.stats.prove_calls += 1
        key = (env.fingerprint(), goal)
        cached = self._prove_cache.get(key)
        if cached is not None:
            self.stats.prove_hits += 1
            return cached
        result = self._proves(env, goal, 0)
        if len(self._prove_cache) >= self._cache_limit:
            self._prove_cache.clear()
        self._prove_cache[key] = result
        return result

    def _proves(self, env: Env, goal: Prop, depth: int) -> bool:
        if env.inconsistent:
            return True  # L-Bot
        if depth > self.max_depth:
            return False
        if isinstance(goal, TrueProp):
            return True
        if isinstance(goal, FalseProp):
            return self._inconsistent(env, depth)
        if isinstance(goal, And):
            return all(self._proves(env, c, depth + 1) for c in goal.conjuncts)
        if isinstance(goal, Or):
            if any(self._proves(env, d, depth + 1) for d in goal.disjuncts):
                return True
            return self._split(env, goal, depth)
        if isinstance(goal, IsType):
            if self._prove_is(env, goal.obj, goal.type, depth):
                return True
            return self._split(env, goal, depth)
        if isinstance(goal, NotType):
            if self._prove_not(env, goal.obj, goal.type, depth):
                return True
            return self._split(env, goal, depth)
        if isinstance(goal, Alias):
            left = self._canon(env, goal.left)
            right = self._canon(env, goal.right)
            if left == right or env.aliases.same_class(left, right):
                return True  # L-Refl / L-Sym / L-Transport
            return self._split(env, goal, depth)
        if isinstance(goal, TheoryProp):
            if self._prove_theory(env, goal, depth):
                return True
            return self._split(env, goal, depth)
        return self._split(env, goal, depth)

    def _split(self, env: Env, goal: Prop, depth: int) -> bool:
        """Case-split on a stored disjunction (∨-elimination)."""
        if depth > self.max_depth:
            return False
        for index, compound in enumerate(env.compounds):
            if not isinstance(compound, Or):
                continue
            if len(compound.disjuncts) > self.max_splits:
                continue
            base = env.snapshot()
            base.drop_compound(index)
            if all(
                self._proves(self.extend(base, disjunct), goal, depth + 1)
                for disjunct in compound.disjuncts
            ):
                return True
        return False

    def _prove_is(self, env: Env, obj: Obj, ty: Type, depth: int) -> bool:
        obj = self._canon(env, obj)
        if obj.is_null():
            return True  # the proposition was discarded as tt
        if isinstance(ty, Top):
            return True
        if isinstance(ty, Refine):
            # L-RefI
            return self._prove_is(env, obj, ty.base, depth + 1) and self._proves(
                env, prop_subst(ty.prop, {ty.var: obj}), depth + 1
            )
        known = self._lookup(env, obj, depth + 1)
        if known is not None and self._subtype(env, known, ty, depth + 1):
            return True  # L-Sub
        if isinstance(obj, PairObj) and isinstance(ty, Pair):
            return self._prove_is(env, obj.fst, ty.fst, depth + 1) and self._prove_is(
                env, obj.snd, ty.snd, depth + 1
            )
        if isinstance(ty, Union):
            return any(self._prove_is(env, obj, m, depth + 1) for m in ty.members)
        return False

    def _prove_not(self, env: Env, obj: Obj, ty: Type, depth: int) -> bool:
        obj = self._canon(env, obj)
        if obj.is_null():
            return True
        known = self._lookup(env, obj, depth + 1)
        if known is not None and not overlap(known, ty):
            return True  # M-TypeNot's proof-side analogue
        for negative in env.negs.get(obj, ()):
            if self._subtype(env, ty, negative, depth + 1):
                return True
        if isinstance(ty, Union) and ty.members:
            return all(self._prove_not(env, obj, m, depth + 1) for m in ty.members)
        # L-Not: assume o ∈ τ and look for a contradiction.
        if depth + 1 <= self.max_depth:
            assumed = self.extend(env, IsType(obj, ty))
            if self._inconsistent(assumed, depth + 1):
                return True
        return False

    def _prove_theory(self, env: Env, goal: TheoryProp, depth: int) -> bool:
        canonical = self._canon_theory(env, goal)
        if isinstance(canonical, TrueProp):
            return True
        if isinstance(canonical, FalseProp):
            return self._inconsistent(env, depth)
        self.stats.theory_goals += 1
        return self.theory_session(env).entails(canonical)  # L-Theory

    def theory_session(self, env: Env) -> RegistrySession:
        """The incremental theory session holding ``[[Γ]]_T``.

        One session is kept per environment state.  On a miss the
        session is *derived* from the parent environment's session
        whenever the parent's assumption set is contained in this one —
        the solvers' translated state is cloned and only the delta is
        asserted, mirroring an SMT push — and built from scratch
        otherwise.
        """
        key = env.fingerprint()
        session = self._sessions.get(key)
        if session is not None:
            self.stats.session_hits += 1
            return session
        assumptions = self.theory_assumptions(env)
        # Walk the extension lineage for the nearest environment that
        # already owns a session whose assumption set this one extends.
        ancestor = env.parent()
        for _ in range(8):
            if ancestor is None:
                break
            ancestor_session = self._sessions.get(ancestor.fingerprint())
            if ancestor_session is not None:
                ancestor_facts = set(self.theory_assumptions(ancestor))
                delta = [a for a in assumptions if a not in ancestor_facts]
                if len(assumptions) - len(delta) == len(ancestor_facts):
                    # ancestor ⊆ child: reuse the translated prefix.
                    session = ancestor_session.derive(delta)
                    self.stats.session_derives += 1
                break
            ancestor = ancestor.parent()
        if session is None:
            session = self.registry.session(self.stats.theory_queries)
            session.assert_all(assumptions)
            self.stats.session_builds += 1
        if len(self._sessions) >= self._session_limit:
            self._sessions.clear()
        self._sessions[key] = session
        return session

    def _inconsistent(self, env: Env, depth: int) -> bool:
        """Is the environment absurd (Γ ⊢ ff)?"""
        if env.inconsistent:
            return True
        if depth > self.max_depth:
            return False
        for ty in env.types.values():
            if isinstance(ty, Union) and not ty.members:
                return True
        if self.theory_session(env).linear_unsat():
            return True
        for index, compound in enumerate(env.compounds):
            if not isinstance(compound, Or):
                continue
            if len(compound.disjuncts) > self.max_splits:
                continue
            base = env.snapshot()
            base.drop_compound(index)
            if all(
                self._inconsistent(self.extend(base, d), depth + 1)
                for d in compound.disjuncts
            ):
                return True
        return False

    # ==================================================================
    # theory projection [[Γ]]_T
    # ==================================================================
    def theory_assumptions(self, env: Env) -> List[Prop]:
        if env._theory_cache is not None:
            return env._theory_cache
        facts: List[Prop] = []

        def push(prop: Prop) -> None:
            if isinstance(prop, TheoryProp) and prop not in facts:
                facts.append(prop)

        for fact in env.theory_facts:
            canonical = self._canon_theory(env, fact)
            push(canonical)
        for obj, ty in env.types.items():
            canon = self._canon(env, obj)
            key = (canon, ty)
            derived = self._numeric_cache.get(key)
            if derived is None:
                derived = tuple(self._numeric_facts(canon, ty, 0))
                if len(self._numeric_cache) >= self._cache_limit:
                    self._numeric_cache.clear()
                self._numeric_cache[key] = derived
            for fact in derived:
                push(fact)
        if not self.use_representatives:
            # Without representative substitution, alias classes are
            # exported to the theories as explicit equations.
            for members in env.aliases.classes():
                rep = env.aliases.find(members[0])
                for member in members:
                    if member == rep:
                        continue
                    if isinstance(member, PairObj) or isinstance(rep, PairObj):
                        continue
                    for atom in _theory_atoms(lin_eq(member, rep)):
                        push(atom)
        env._theory_cache = facts
        return facts

    def _numeric_facts(self, obj: Obj, ty: Type, depth: int) -> Iterator[TheoryProp]:
        """Theory atoms implied by ``obj ∈ ty`` (recursing into structure)."""
        if depth > 12 or obj.is_null():
            return
        if isinstance(ty, Refine):
            yield from _theory_atoms(prop_subst(ty.prop, {ty.var: obj}))
            yield from self._numeric_facts(obj, ty.base, depth + 1)
        elif isinstance(ty, Pair):
            yield from self._numeric_facts(obj_field(FST, obj), ty.fst, depth + 1)
            yield from self._numeric_facts(obj_field(SND, obj), ty.snd, depth + 1)
        elif isinstance(ty, (Vec, StrT)):
            fact = lin_le(obj_int(0), obj_field(LEN, obj))
            if isinstance(fact, TheoryProp):
                yield fact

    # ==================================================================
    # subtyping (Figure 5)
    # ==================================================================
    def subtype(self, env: Env, sub: Type, sup: Type) -> bool:
        return self._subtype(env, sub, sup, 0)

    def _subtype_closure(self, env: Env, depth: int):
        return lambda a, b: self._subtype(env, a, b, depth + 1)

    def _subtype(self, env: Env, sub: Type, sup: Type, depth: int) -> bool:
        """Figure 5, memoised.

        Positive answers are sound at any depth (fuel only bounds the
        search, never the judgment), so they are reused freely; negative
        answers are reused only when computed with at least as much fuel
        as the caller has, which keeps memoisation from ever being more
        conservative than the plain search.
        """
        if sub == sup:
            return True  # S-Refl
        if depth > self.max_depth:
            return False
        self.stats.subtype_calls += 1
        fuel = self.max_depth - depth
        key = (env.fingerprint(), sub, sup)
        hit = self._subtype_cache.get(key)
        if hit is not None and (hit[0] or hit[1] >= fuel):
            self.stats.subtype_hits += 1
            return hit[0]
        result = self._subtype_search(env, sub, sup, depth)
        if hit is None or result or fuel > hit[1]:
            if len(self._subtype_cache) >= self._cache_limit:
                self._subtype_cache.clear()
            self._subtype_cache[key] = (result, fuel)
        return result

    def _subtype_search(self, env: Env, sub: Type, sup: Type, depth: int) -> bool:
        if isinstance(sup, Top):
            return True  # S-Top
        if isinstance(sub, Union):
            return all(self._subtype(env, m, sup, depth + 1) for m in sub.members)
        if isinstance(sub, Refine):
            # S-Refine1 (which subsumes S-Weaken): Γ, x∈τ, ψ ⊢ x ∈ σ
            name = fresh_name(sub.var)
            var = Var(name)
            extended = self.extend(env, IsType(var, Refine(sub.var, sub.base, sub.prop)))
            return self._prove_is(extended, var, sup, depth + 1)
        if isinstance(sup, Union):
            return any(self._subtype(env, sub, m, depth + 1) for m in sup.members)
        if isinstance(sup, Refine):
            # S-Refine2
            if not self._subtype(env, sub, sup.base, depth + 1):
                return False
            name = fresh_name(sup.var)
            var = Var(name)
            extended = self.extend(env, IsType(var, sub))
            return self._proves(
                extended, prop_subst(sup.prop, {sup.var: var}), depth + 1
            )
        if isinstance(sub, Pair) and isinstance(sup, Pair):
            return self._subtype(env, sub.fst, sup.fst, depth + 1) and self._subtype(
                env, sub.snd, sup.snd, depth + 1
            )
        if isinstance(sub, Vec) and isinstance(sup, Vec):
            # Mutable vectors are invariant.
            return self._subtype(env, sub.elem, sup.elem, depth + 1) and self._subtype(
                env, sup.elem, sub.elem, depth + 1
            )
        if isinstance(sub, Fun) and isinstance(sup, Fun):
            return self._subtype_fun(env, sub, sup, depth)
        if isinstance(sub, Poly) and isinstance(sup, Poly):
            if len(sub.tvars) != len(sup.tvars):
                return False
            from ..tr.subst import type_subst_tvars

            renaming = {
                old: TVar(new) for old, new in zip(sup.tvars, sub.tvars)
            }
            return self._subtype(
                env, sub.body, type_subst_tvars(sup.body, renaming), depth + 1
            )
        return False

    def _subtype_fun(self, env: Env, sub: Fun, sup: Fun, depth: int) -> bool:
        """S-Fun, n-ary: contravariant domains, covariant dependent range."""
        if sub.arity != sup.arity:
            return False
        fresh = [Var(fresh_name(name)) for name, _ in sup.args]
        sub_map = {name: var for (name, _), var in zip(sub.args, fresh)}
        sup_map = {name: var for (name, _), var in zip(sup.args, fresh)}
        extended = env
        for i in range(sub.arity):
            sub_dom = type_subst(sub.args[i][1], sub_map)
            sup_dom = type_subst(sup.args[i][1], sup_map)
            if not self._subtype(extended, sup_dom, sub_dom, depth + 1):
                return False
            # The environment assigns the more specific (super) domain.
            extended = self.extend(extended, IsType(fresh[i], sup_dom))
        sub_result = result_subst(sub.result, sub_map)
        sup_result = result_subst(sup.result, sup_map)
        return self._result_subtype(extended, sub_result, sup_result, depth + 1)

    # ==================================================================
    # type-result subtyping (SR-Result, SR-Exists)
    # ==================================================================
    def result_subtype(self, env: Env, sub: TypeResult, sup: TypeResult) -> bool:
        return self._result_subtype(env, sub, sup, 0)

    def _result_subtype(
        self, env: Env, sub: TypeResult, sup: TypeResult, depth: int
    ) -> bool:
        if depth > self.max_depth:
            return False
        # SR-Exists: open the left result's existential binders.
        extended = env
        for name, ty in sub.binders:
            extended = self.extend(extended, IsType(Var(name), ty))
        if sup.binders:
            return False  # annotations never carry existentials
        # With a non-null object the type obligation strengthens to
        # Γ ⊢ o ∈ τ₂ (L-Sub through the object), which lets environment
        # facts about o — e.g. a conditional's guard — discharge
        # refinements the bare type cannot.
        type_ok = False
        if not sub.obj.is_null():
            extended_with = self.extend(extended, IsType(sub.obj, sub.type))
            type_ok = self._proves(
                extended_with, IsType(sub.obj, sup.type), depth + 1
            )
        if not type_ok and not self._subtype(extended, sub.type, sup.type, depth + 1):
            return False
        sup_obj = self._canon(extended, sup.obj)
        if not sup_obj.is_null():
            sub_obj = self._canon(extended, sub.obj)
            if sub_obj != sup_obj and not extended.aliases.same_class(sub_obj, sup_obj):
                return False
        then_env = self.extend(extended, sub.then_prop)
        if not self._proves(then_env, sup.then_prop, depth + 1):
            return False
        else_env = self.extend(extended, sub.else_prop)
        return self._proves(else_env, sup.else_prop, depth + 1)


def _field_component(ty: Type, field: str) -> Optional[Type]:
    """The type of ``(field o)`` given ``o``'s type, if determined."""
    if isinstance(ty, Refine):
        return _field_component(ty.base, field)
    if isinstance(ty, Union):
        parts = [_field_component(m, field) for m in ty.members]
        if all(p is not None for p in parts) and parts:
            return make_union(parts)  # type: ignore[arg-type]
        return None
    if isinstance(ty, Pair):
        if field == FST:
            return ty.fst
        if field == SND:
            return ty.snd
    if isinstance(ty, (Vec, StrT)) and field == LEN:
        return INT
    return None


def _theory_atoms(prop: Prop) -> Iterator[TheoryProp]:
    """The theory atoms in the positive conjunctive fragment of ``prop``."""
    if isinstance(prop, TheoryProp):
        yield prop
    elif isinstance(prop, And):
        for conjunct in prop.conjuncts:
            yield from _theory_atoms(conjunct)
