"""Stage 2 — saturation: worklist-driven environment extension.

``Γ, ψ`` used to be computed by a deeply recursive
``_assimilate``/``_learn_type``/``_learn_alias``/``_recanon`` tangle
threading a ``depth`` parameter through every call; on deep programs
(hundreds of nested ``let``/``if`` levels) that recursion tracked the
*program's* shape and could exhaust the Python stack, and its fuel
cutoffs silently dropped facts on merely-deep inputs.

:class:`Saturator` replaces the recursion with an explicit LIFO
worklist: items are popped, sent through the normalization rules of
:mod:`~repro.logic.kernel.normalize`, and their atomic residue is
recorded through a :class:`~repro.logic.kernel.facts.FactStore`.
Children are pushed in reverse, so processing order is exactly the
depth-first order of the old recursion — same facts, same
disjunction-shrinking decisions — but stack consumption is O(1) in
program depth.  A step *budget* (``Logic.max_steps``) replaces the
depth fuel as the termination backstop; exhausting it drops the
remaining queue, which only ever makes the checker more conservative.

Alias merges re-key existing records onto new representatives
(L-Transport).  The old engine re-learned **every** record on **every**
merge; here the merge reports which objects' representatives actually
changed, and re-canonicalisation is skipped when no record mentions
any of them — the dominant case (a ``let`` aliasing a fresh variable),
which turns per-binding O(Γ) work into O(1).
"""

from __future__ import annotations

from typing import List

from ...tr.intern import prime_hashes
from ...tr.props import (
    FalseProp,
    Or,
    Prop,
    TheoryProp,
    TrueProp,
    make_or,
)
from ..env import Env
from .facts import FactStore
from .normalize import (
    ALIAS,
    PROP,
    TYPE,
    alias_forks,
    canon_theory,
    clausify_step,
    decompose_type,
)

__all__ = ["Saturator"]


def _identity(obj):
    return obj


class Saturator:
    """Drives normalization outputs into a fact store until fixpoint."""

    __slots__ = ("logic",)

    def __init__(self, logic) -> None:
        self.logic = logic

    # ------------------------------------------------------------------
    def extend(self, env: Env, prop: Prop) -> Env:
        """Return a new environment assuming ``prop`` (Γ, ψ)."""
        import weakref

        new_env = env.snapshot()
        self.assimilate(new_env, prop)
        # Remember the lineage (weakly): the child's theory session can
        # then be derived from the parent's instead of built from Γ.
        new_env._parent = weakref.ref(env)
        return new_env

    def assimilate(self, env: Env, prop: Prop) -> None:
        """Saturate ``env`` with ``prop`` and everything it implies."""
        prime_hashes(prop)  # deep props: warm hashes without deep recursion
        logic = self.logic
        kernel = logic.kernel
        work: List = [(PROP, prop)]
        canon = env.canon_obj if logic.use_representatives else _identity
        store = FactStore(
            env,
            canon,
            kernel.subtype_closure(env),
            kernel.lookup_for_store,
            work,
        )
        budget = logic.max_steps
        hits = logic.stats.rule_hits
        pop = work.pop
        while work:
            if env.inconsistent:
                break
            budget -= 1
            if budget < 0:
                # drop the rest: Γ merely learns less (sound)
                hits["sat.budget-exhausted"] = hits.get("sat.budget-exhausted", 0) + 1
                break
            item = pop()
            tag = item[0]
            if tag == PROP:
                self._step_prop(store, item[1], hits)
            elif tag == TYPE:
                self._step_type(store, item[1], item[2], item[3], hits)
            else:
                self._step_alias(store, item[1], item[2], hits)

    # ------------------------------------------------------------------
    # one worklist step per item kind
    # ------------------------------------------------------------------
    def _step_prop(self, store: FactStore, prop: Prop, hits) -> None:
        if isinstance(prop, TrueProp):
            return
        if isinstance(prop, FalseProp):
            hits["sat.false"] = hits.get("sat.false", 0) + 1
            store.env.mark_inconsistent()
            return
        children = clausify_step(prop)
        if children is not None:
            hits["sat.clausify"] = hits.get("sat.clausify", 0) + 1
            store.out.extend(reversed(children))
            return
        if isinstance(prop, Or):
            live = [d for d in prop.disjuncts if not store.quick_refuted(d)]
            if not live:
                hits["sat.or-refuted"] = hits.get("sat.or-refuted", 0) + 1
                store.env.mark_inconsistent()
            elif len(live) == 1:
                hits["sat.or-unit"] = hits.get("sat.or-unit", 0) + 1
                store.out.append((PROP, live[0]))
            else:
                hits["sat.or-store"] = hits.get("sat.or-store", 0) + 1
                store.record_compound(make_or(live))
            return
        if isinstance(prop, TheoryProp):
            hits["sat.theory"] = hits.get("sat.theory", 0) + 1
            store.record_theory(canon_theory(store.canon, prop))
            return
        # e.g. _Unrefutable atoms: inert but kept
        hits["sat.compound"] = hits.get("sat.compound", 0) + 1
        store.record_compound(prop)

    def _step_type(self, store: FactStore, obj, ty, positive: bool, hits) -> None:
        obj = store.canon(obj)
        if obj.is_null():
            return
        children = decompose_type(obj, ty, positive)
        if children is not None:
            # L-RefE / M-RefineNot / L-TypeFork, one step at a time
            hits["sat.type-decompose"] = hits.get("sat.type-decompose", 0) + 1
            store.out.extend(reversed(children))
            return
        name = "sat.type+" if positive else "sat.type-"
        hits[name] = hits.get(name, 0) + 1
        store.record_type(obj, ty, positive)

    def _step_alias(self, store: FactStore, left, right, hits) -> None:
        left = store.canon(left)
        right = store.canon(right)
        if left.is_null() or right.is_null() or left == right:
            return
        children = alias_forks(left, right)  # L-ObjFork
        if children is not None:
            hits["sat.alias-fork"] = hits.get("sat.alias-fork", 0) + 1
            store.out.extend(reversed(children))
            return
        hits["sat.alias-merge"] = hits.get("sat.alias-merge", 0) + 1
        _rep, changed = store.env.merge_alias_with_changes(left, right)
        if self.logic.use_representatives:
            self._recanon_delta(store, changed, hits)

    # ------------------------------------------------------------------
    # L-Transport: re-key records onto current representatives
    # ------------------------------------------------------------------
    def _recanon_delta(self, store: FactStore, changed, hits) -> None:
        """Queue a full re-canonicalisation iff the merge can matter."""
        if not changed or not store.any_record_mentions(frozenset(changed)):
            return
        hits["sat.transport"] = hits.get("sat.transport", 0) + 1  # L-Transport
        env = store.env
        old_types = env.types
        old_negs = env.negs
        old_facts = env.theory_facts
        env.reset_records()
        items: List = []
        for obj, ty in old_types.items():
            items.append((TYPE, obj, ty, True))
        for obj, tys in old_negs.items():
            for ty in tys:
                items.append((TYPE, obj, ty, False))
        store.out.extend(reversed(items))
        for fact in old_facts:
            store.record_theory(canon_theory(store.canon, fact))
