"""Stage 2 — saturation: worklist-driven environment extension.

``Γ, ψ`` used to be computed by a deeply recursive
``_assimilate``/``_learn_type``/``_learn_alias``/``_recanon`` tangle
threading a ``depth`` parameter through every call; on deep programs
(hundreds of nested ``let``/``if`` levels) that recursion tracked the
*program's* shape and could exhaust the Python stack, and its fuel
cutoffs silently dropped facts on merely-deep inputs.

:class:`Saturator` replaces the recursion with an explicit LIFO
worklist: items are popped, sent through the normalization rules of
:mod:`~repro.logic.kernel.normalize`, and their atomic residue is
recorded through a :class:`~repro.logic.kernel.facts.FactStore`.
Children are pushed in reverse, so processing order is exactly the
depth-first order of the old recursion — same facts, same
disjunction-shrinking decisions — but stack consumption is O(1) in
program depth.  A step *budget* (``Logic.max_steps``) replaces the
depth fuel as the termination backstop; exhausting it drops the
remaining queue, which only ever makes the checker more conservative.

The worklist loop is the single hottest loop in the checker (profiling
puts ``assimilate`` near the top of every corpus run), so the per-item
dispatch is inlined here rather than split across one method call and
two dict operations per item: clausification of the four
statically-decomposable forms (∧ / ≡ / ∈ / ∉) pushes work items
directly, and the ``rule_hits`` coverage counters — the signal the
coverage-guided fuzzer schedules on — are accumulated in local
integers and flushed into the stats dict once per assimilation, with
identical totals.

Alias merges re-key existing records onto new representatives
(L-Transport).  The old engine re-learned **every** record on **every**
merge; here the merge reports which objects' representatives actually
changed, and re-canonicalisation is skipped when no record mentions
any of them — the dominant case (a ``let`` aliasing a fresh variable),
which turns per-binding O(Γ) work into O(1).
"""

from __future__ import annotations

import weakref

from typing import List

from ...tr.objects import PairObj
from ...tr.props import (
    Alias,
    And,
    FalseProp,
    IsType,
    NotType,
    Or,
    Prop,
    TheoryProp,
    TrueProp,
    make_or,
)
from ..env import Env
from .facts import FactStore
from .normalize import (
    ALIAS,
    PROP,
    TYPE,
    canon_theory,
    decompose_type,
)

__all__ = ["Saturator"]


def _identity(obj):
    return obj


class Saturator:
    """Drives normalization outputs into a fact store until fixpoint."""

    __slots__ = ("logic",)

    def __init__(self, logic) -> None:
        self.logic = logic

    # ------------------------------------------------------------------
    def extend(self, env: Env, prop: Prop) -> Env:
        """Return a new environment assuming ``prop`` (Γ, ψ)."""
        if isinstance(prop, TrueProp):
            # Γ, tt = Γ: nothing to assimilate, no snapshot needed.
            return env
        new_env = env.snapshot()
        self.assimilate(new_env, prop)
        # Remember the lineage (weakly): the child's theory session can
        # then be derived from the parent's instead of built from Γ.
        new_env._parent = weakref.ref(env)
        return new_env

    def assimilate(self, env: Env, prop: Prop) -> None:
        """Saturate ``env`` with ``prop`` and everything it implies."""
        timers = self.logic.timers
        if timers is None:
            self._assimilate(env, prop)
            return
        started = timers.enter("saturate")
        try:
            self._assimilate(env, prop)
        finally:
            timers.exit("saturate", started)

    def _assimilate(self, env: Env, prop: Prop) -> None:
        logic = self.logic
        kernel = logic.kernel
        work: List = [(PROP, prop)]
        canon = env.canon_obj if logic.use_representatives else _identity
        store = FactStore(
            env,
            canon,
            kernel.subtype_closure(env),
            kernel.lookup_for_store,
            work,
        )
        budget = logic.max_steps
        request_budget = logic.budget  # deadline/cancel token, or None
        request_tick = None if request_budget is None else request_budget.tick
        hits = logic.stats.rule_hits
        use_reps = logic.use_representatives
        # hoisted bound methods and local rule-hit accumulators: the
        # loop body runs once per fact learned, program-wide
        pop = work.pop
        push = work.append
        record_theory = store.record_theory
        record_compound = store.record_compound
        record_type = store.record_type
        quick_refuted = store.quick_refuted
        mark_inconsistent = env.mark_inconsistent
        n_false = n_clausify = 0
        n_or_refuted = n_or_unit = n_or_store = 0
        n_theory = n_compound = 0
        n_decompose = n_type_pos = n_type_neg = 0
        n_alias_fork = n_alias_merge = 0
        while work:
            if env.inconsistent:
                break
            budget -= 1
            if budget < 0:
                # drop the rest: Γ merely learns less (sound)
                hits["sat.budget-exhausted"] = hits.get("sat.budget-exhausted", 0) + 1
                break
            if request_tick is not None:
                # cooperative cancellation: this is the hottest loop in
                # the checker, so an expired deadline is noticed here
                # first; the raise drops a request-scoped env snapshot.
                request_tick()
            item = pop()
            tag = item[0]
            if tag == PROP:
                current = item[1]
                if isinstance(current, TrueProp):
                    continue
                if isinstance(current, FalseProp):
                    n_false += 1
                    mark_inconsistent()
                    continue
                # clausification of statically-decomposable forms,
                # pushed in reverse so pop order matches the old
                # depth-first recursion exactly
                if isinstance(current, And):
                    n_clausify += 1
                    conjuncts = current.conjuncts
                    for index in range(len(conjuncts) - 1, -1, -1):
                        push((PROP, conjuncts[index]))
                    continue
                if isinstance(current, Alias):
                    n_clausify += 1
                    push((ALIAS, current.left, current.right))
                    continue
                if isinstance(current, IsType):
                    n_clausify += 1
                    push((TYPE, current.obj, current.type, True))
                    continue
                if isinstance(current, NotType):
                    n_clausify += 1
                    push((TYPE, current.obj, current.type, False))
                    continue
                if isinstance(current, Or):
                    live = [
                        d for d in current.disjuncts if not quick_refuted(d)
                    ]
                    if not live:
                        n_or_refuted += 1
                        mark_inconsistent()
                    elif len(live) == 1:
                        n_or_unit += 1
                        push((PROP, live[0]))
                    else:
                        n_or_store += 1
                        record_compound(make_or(live))
                    continue
                if isinstance(current, TheoryProp):
                    n_theory += 1
                    record_theory(canon_theory(canon, current))
                    continue
                # e.g. _Unrefutable atoms: inert but kept
                n_compound += 1
                record_compound(current)
            elif tag == TYPE:
                obj = canon(item[1])
                if obj.is_null():
                    continue
                ty = item[2]
                positive = item[3]
                children = decompose_type(obj, ty, positive)
                if children is not None:
                    # L-RefE / M-RefineNot / L-TypeFork, one step at a time
                    n_decompose += 1
                    for index in range(len(children) - 1, -1, -1):
                        push(children[index])
                    continue
                if positive:
                    n_type_pos += 1
                else:
                    n_type_neg += 1
                record_type(obj, ty, positive)
            else:  # ALIAS
                left = canon(item[1])
                right = canon(item[2])
                if left.is_null() or right.is_null() or left == right:
                    continue
                if isinstance(left, PairObj) and isinstance(right, PairObj):
                    # L-ObjFork: pair aliases decompose pointwise
                    n_alias_fork += 1
                    push((ALIAS, left.snd, right.snd))
                    push((ALIAS, left.fst, right.fst))
                    continue
                n_alias_merge += 1
                _rep, changed = env.merge_alias_with_changes(left, right)
                if use_reps:
                    self._recanon_delta(store, changed, hits)
        # flush the batched coverage counters (identical totals to the
        # old per-step dict updates)
        get = hits.get
        if n_false:
            hits["sat.false"] = get("sat.false", 0) + n_false
        if n_clausify:
            hits["sat.clausify"] = get("sat.clausify", 0) + n_clausify
        if n_or_refuted:
            hits["sat.or-refuted"] = get("sat.or-refuted", 0) + n_or_refuted
        if n_or_unit:
            hits["sat.or-unit"] = get("sat.or-unit", 0) + n_or_unit
        if n_or_store:
            hits["sat.or-store"] = get("sat.or-store", 0) + n_or_store
        if n_theory:
            hits["sat.theory"] = get("sat.theory", 0) + n_theory
        if n_compound:
            hits["sat.compound"] = get("sat.compound", 0) + n_compound
        if n_decompose:
            hits["sat.type-decompose"] = get("sat.type-decompose", 0) + n_decompose
        if n_type_pos:
            hits["sat.type+"] = get("sat.type+", 0) + n_type_pos
        if n_type_neg:
            hits["sat.type-"] = get("sat.type-", 0) + n_type_neg
        if n_alias_fork:
            hits["sat.alias-fork"] = get("sat.alias-fork", 0) + n_alias_fork
        if n_alias_merge:
            hits["sat.alias-merge"] = get("sat.alias-merge", 0) + n_alias_merge

    # ------------------------------------------------------------------
    # L-Transport: re-key records onto current representatives
    # ------------------------------------------------------------------
    def _recanon_delta(self, store: FactStore, changed, hits) -> None:
        """Queue a full re-canonicalisation iff the merge can matter."""
        if not changed or not store.any_record_mentions(frozenset(changed)):
            return
        hits["sat.transport"] = hits.get("sat.transport", 0) + 1  # L-Transport
        env = store.env
        old_types = env.types
        old_negs = env.negs
        old_facts = env.theory_facts
        env.reset_records()
        items: List = []
        for obj, ty in old_types.items():
            items.append((TYPE, obj, ty, True))
        for obj, tys in old_negs.items():
            for ty in tys:
                items.append((TYPE, obj, ty, False))
        store.out.extend(reversed(items))
        for fact in old_facts:
            store.record_theory(canon_theory(store.canon, fact))
