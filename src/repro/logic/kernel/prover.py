"""Stages 3–4 — the iterative proof judgment and the subtyping search.

:class:`ProofKernel` evaluates Γ ⊢ ψ (Figure 6) without recursing over
the proposition: conjunctions and disjunctions are walked by an
explicit frame stack (:meth:`prove`), so goals whose and/or structure
mirrors program depth — exactly what T-If/T-Let joins produce on deep
programs — cost stack space O(1).  The only remaining recursion is the
*search*: case splits over stored disjunctions, refutation attempts
and subtyping through refinements, all of which are fuel-bounded by
``max_depth`` (a bound on proof search effort, independent of program
size).

Theory goals go through the dispatch stage: when a frame holds two or
more theory atoms they are canonicalised and answered by **one**
``entails_batch`` call on the environment's theory session
(:class:`~repro.logic.kernel.dispatch.TheoryDispatch`), instead of one
session round-trip per atom.

The memo tables (proof, subtype, lookup) and statistics live on the
owning :class:`~repro.logic.prove.Logic`; the kernel reads and writes
them so cached behaviour — including the fuel-aware negative-answer
reuse — is unchanged from the monolithic engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...tr.objects import FST, LEN, SND, BVExpr, FieldRef, LinExpr, Obj, PairObj, Var
from ...tr.props import (
    Alias,
    And,
    FalseProp,
    IsType,
    NotType,
    Or,
    Prop,
    TheoryProp,
    TrueProp,
)
from ...tr.results import TypeResult, fresh_name
from ...tr.subst import prop_subst, result_subst, type_subst
from ...tr.types import INT, Fun, Pair, Poly, Refine, Top, TVar, Type, Union, Vec
from ...tr.types import Str as StrT
from ...tr.types import make_union
from ..env import Env
from ..update import overlap, restrict
from .normalize import canon_theory

__all__ = ["ProofKernel"]

#: sentinel: a frame was pushed; the machine must evaluate its children
_DESCEND = object()


class _Frame:
    """One and/or node of the goal being evaluated."""

    __slots__ = ("conj", "env", "items", "index", "goal", "depth", "batch")

    def __init__(self, conj, env, items, goal, depth):
        self.conj = conj
        self.env = env
        self.items = items
        self.index = 0
        self.goal = goal
        self.depth = depth
        #: conjunction frames only: canonical theory atom → session
        #: answer, filled lazily when the first theory atom is reached
        #: (an earlier failing conjunct must cost no solver work)
        self.batch: Optional[Dict[TheoryProp, bool]] = None


class ProofKernel:
    """The judgment engine behind :class:`repro.logic.prove.Logic`."""

    __slots__ = ("logic",)

    def __init__(self, logic) -> None:
        self.logic = logic

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _canon(self, env: Env, obj: Obj) -> Obj:
        if self.logic.use_representatives:
            return env.canon_obj(obj)
        return obj

    def _canon_theory(self, env: Env, prop: TheoryProp) -> Prop:
        if self.logic.use_representatives:
            return canon_theory(env.canon_obj, prop)
        return canon_theory(lambda obj: obj, prop)

    def subtype_closure(self, env: Env, depth: int = 0):
        return lambda a, b: self._subtype(env, a, b, depth + 1)

    def lookup_for_store(self, env: Env, obj: Obj) -> Optional[Type]:
        """The lookup hook handed to the saturation stage."""
        return self._lookup(env, obj, 1)

    # ==================================================================
    # the proof judgment Γ ⊢ ψ  (iterative over the prop structure)
    # ==================================================================
    def prove(self, env: Env, goal: Prop, depth: int = 0) -> bool:
        """Γ ⊢ ψ via an explicit and/or frame stack.

        And-frames need every child true; or-frames need any child true
        and fall back to a case split (∨-elimination over stored
        disjunctions) when all children fail — exactly the recursive
        engine's semantics, minus the per-proposition Python frames.
        Structural descent costs no fuel: a conjunction a thousand
        props wide is walked, not given up on.
        """
        stack: List[_Frame] = []
        request_budget = self.logic.budget
        request_tick = None if request_budget is None else request_budget.tick
        verdict = self._leaf(env, goal, depth, stack, None)
        while stack:
            if request_tick is not None:
                # cooperative cancellation; the raise unwinds before any
                # memo write, so no partial verdict is ever cached.
                request_tick()
            if verdict is _DESCEND:
                frame = stack[-1]
                verdict = self._leaf(
                    frame.env,
                    frame.items[frame.index],
                    frame.depth,
                    stack,
                    frame,
                )
                continue
            frame = stack[-1]
            if frame.conj:
                if not verdict:
                    stack.pop()  # one conjunct failed: the And fails
                else:
                    frame.index += 1
                    if frame.index == len(frame.items):
                        stack.pop()
                        verdict = True
                    else:
                        verdict = _DESCEND
            else:
                if verdict:
                    stack.pop()  # one disjunct proved: the Or holds
                else:
                    frame.index += 1
                    if frame.index == len(frame.items):
                        stack.pop()
                        verdict = self._split(frame.env, frame.goal, frame.depth)
                    else:
                        verdict = _DESCEND
        return bool(verdict)

    def _leaf(
        self,
        env: Env,
        goal: Prop,
        depth: int,
        stack: List[_Frame],
        frame: Optional[_Frame],
    ) -> object:
        """Evaluate one goal node: a bool, or ``_DESCEND`` after a push."""
        if env.inconsistent:
            return True  # L-Bot
        if depth > self.logic.max_depth:
            return False
        if isinstance(goal, TrueProp):
            return True
        if isinstance(goal, FalseProp):
            return self._inconsistent(env, depth)
        if isinstance(goal, And):
            if not goal.conjuncts:
                return True  # vacuous conjunction
            stack.append(_Frame(True, env, goal.conjuncts, goal, depth))
            return _DESCEND
        if isinstance(goal, Or):
            if not goal.disjuncts:
                return self._split(env, goal, depth)
            stack.append(_Frame(False, env, goal.disjuncts, goal, depth))
            return _DESCEND
        if isinstance(goal, IsType):
            if self._prove_is(env, goal.obj, goal.type, depth):
                return True
            return self._split(env, goal, depth)
        if isinstance(goal, NotType):
            if self._prove_not(env, goal.obj, goal.type, depth):
                return True
            return self._split(env, goal, depth)
        if isinstance(goal, Alias):
            left = self._canon(env, goal.left)
            right = self._canon(env, goal.right)
            if left == right or env.aliases.same_class(left, right):
                return True  # L-Refl / L-Sym / L-Transport
            return self._split(env, goal, depth)
        if isinstance(goal, TheoryProp):
            batch: Optional[Dict[TheoryProp, bool]] = None
            if frame is not None and frame.conj:
                # Batch the conjunction's atoms now that one is
                # actually being consulted (a conjunction failing on an
                # earlier structural conjunct never reaches this).
                if frame.batch is None:
                    frame.batch = (
                        self._batch_theory(frame.env, frame.items) or {}
                    )
                batch = frame.batch
            if self._prove_theory(env, goal, depth, batch):
                return True
            return self._split(env, goal, depth)
        return self._split(env, goal, depth)

    # ------------------------------------------------------------------
    # theory goals (stage 3: batched dispatch)
    # ------------------------------------------------------------------
    def _batch_theory(
        self, env: Env, items: Tuple[Prop, ...]
    ) -> Optional[Dict[TheoryProp, bool]]:
        """Decide a conjunction's theory atoms with one session call.

        Only And frames batch — every conjunct must hold, so once one
        theory atom is consulted the others (almost) all will be, and
        one dispatch beats N.  Disjunction atoms go through the lazy
        single-goal path: any(…) stops at the first provable disjunct,
        and eagerly solving the other alternatives would pay solver
        calls short-circuit evaluation never makes.
        """
        atoms: List[TheoryProp] = []
        for item in items:
            if isinstance(item, TheoryProp):
                canonical = self._canon_theory(env, item)
                if isinstance(canonical, TheoryProp) and canonical not in atoms:
                    atoms.append(canonical)
        if len(atoms) < 2:
            return None  # nothing to batch; singles go through decide_one
        return self.logic.dispatch.decide(env, atoms)

    def _prove_theory(
        self,
        env: Env,
        goal: TheoryProp,
        depth: int,
        batch: Optional[Dict[TheoryProp, bool]],
    ) -> bool:
        canonical = self._canon_theory(env, goal)
        if isinstance(canonical, TrueProp):
            return True
        if isinstance(canonical, FalseProp):
            return self._inconsistent(env, depth)
        if batch is not None:
            answer = batch.get(canonical)
            if answer is not None:
                return answer
        return self.logic.dispatch.decide_one(env, canonical)  # L-Theory

    # ------------------------------------------------------------------
    # case splits (∨-elimination over stored disjunctions)
    # ------------------------------------------------------------------
    def _split(self, env: Env, goal: Prop, depth: int) -> bool:
        if depth > self.logic.max_depth:
            return False
        extend = self.logic.extend
        for index, compound in enumerate(env.compounds):
            if not isinstance(compound, Or):
                continue
            if len(compound.disjuncts) > self.logic.max_splits:
                continue
            base = env.snapshot()
            base.drop_compound(index)
            if all(
                self.prove(extend(base, disjunct), goal, depth + 1)
                for disjunct in compound.disjuncts
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # type-membership goals
    # ------------------------------------------------------------------
    def _prove_is(self, env: Env, obj: Obj, ty: Type, depth: int) -> bool:
        obj = self._canon(env, obj)
        if obj.is_null():
            return True  # the proposition was discarded as tt
        if isinstance(ty, Top):
            return True
        if isinstance(ty, Refine):
            # L-RefI
            return self._prove_is(env, obj, ty.base, depth + 1) and self.prove(
                env, prop_subst(ty.prop, {ty.var: obj}), depth + 1
            )
        known = self._lookup(env, obj, depth + 1)
        if known is not None and self._subtype(env, known, ty, depth + 1):
            return True  # L-Sub
        if isinstance(obj, PairObj) and isinstance(ty, Pair):
            return self._prove_is(env, obj.fst, ty.fst, depth + 1) and self._prove_is(
                env, obj.snd, ty.snd, depth + 1
            )
        if isinstance(ty, Union):
            return any(self._prove_is(env, obj, m, depth + 1) for m in ty.members)
        return False

    def _prove_not(self, env: Env, obj: Obj, ty: Type, depth: int) -> bool:
        obj = self._canon(env, obj)
        if obj.is_null():
            return True
        known = self._lookup(env, obj, depth + 1)
        if known is not None and not overlap(known, ty):
            return True  # M-TypeNot's proof-side analogue
        for negative in env.negs.get(obj, ()):
            if self._subtype(env, ty, negative, depth + 1):
                return True
        if isinstance(ty, Union) and ty.members:
            return all(self._prove_not(env, obj, m, depth + 1) for m in ty.members)
        # L-Not: assume o ∈ τ and look for a contradiction.
        if depth + 1 <= self.logic.max_depth:
            assumed = self.logic.extend(env, IsType(obj, ty))
            if self._inconsistent(assumed, depth + 1):
                return True
        return False

    def _inconsistent(self, env: Env, depth: int) -> bool:
        """Is the environment absurd (Γ ⊢ ff)?"""
        if env.inconsistent:
            return True
        if depth > self.logic.max_depth:
            return False
        for ty in env.types.values():
            if isinstance(ty, Union) and not ty.members:
                return True
        if self.logic.theory_session(env).linear_unsat():
            return True
        extend = self.logic.extend
        for index, compound in enumerate(env.compounds):
            if not isinstance(compound, Or):
                continue
            if len(compound.disjuncts) > self.logic.max_splits:
                continue
            base = env.snapshot()
            base.drop_compound(index)
            if all(
                self._inconsistent(extend(base, d), depth + 1)
                for d in compound.disjuncts
            ):
                return True
        return False

    # ==================================================================
    # lookups
    # ==================================================================
    def _lookup(self, env: Env, obj: Obj, depth: int) -> Optional[Type]:
        """The best structural type known for ``obj`` (L-Sub's premise).

        Memoised per (environment fingerprint, object); an entry is
        reused only when it was computed with at least as much fuel, so
        a fuel-starved (less precise) answer never replaces what a
        deeper search would have derived.
        """
        logic = self.logic
        if depth > logic.max_depth:
            return None
        logic.stats.lookup_calls += 1
        fuel = logic.max_depth - depth
        key = (env.fingerprint(), obj._iid)
        hit = logic._lookup_cache.get(key)
        if hit is not None and hit[1] >= fuel:
            logic.stats.lookup_hits += 1
            return hit[0]
        result = self._lookup_search(env, obj, depth)
        if hit is None or fuel > hit[1]:
            if len(logic._lookup_cache) >= logic._cache_limit:
                logic._lookup_cache.clear()
            logic._lookup_cache[key] = (result, fuel)
        return result

    def _lookup_search(self, env: Env, obj: Obj, depth: int) -> Optional[Type]:
        obj = self._canon(env, obj)
        candidates: List[Type] = []
        direct = env.types.get(obj)
        if direct is not None:
            candidates.append(direct)
        if isinstance(obj, (LinExpr, BVExpr)):
            # Linear and bitvector expressions are integer-valued by
            # construction (the checker only builds them from Int terms).
            candidates.append(INT)
        if isinstance(obj, PairObj):
            fst_ty = self._lookup(env, obj.fst, depth + 1)
            snd_ty = self._lookup(env, obj.snd, depth + 1)
            if fst_ty is not None and snd_ty is not None:
                candidates.append(Pair(fst_ty, snd_ty))
        if isinstance(obj, FieldRef):
            base_ty = self._lookup(env, obj.base, depth + 1)
            if base_ty is not None:
                derived = _field_component(base_ty, obj.field)
                if derived is not None:
                    candidates.append(derived)
        if not candidates:
            return None
        sub = self.subtype_closure(env, depth)
        result = candidates[0]
        for extra in candidates[1:]:
            result = restrict(result, extra, sub)
        return result

    # ==================================================================
    # subtyping (Figure 5)
    # ==================================================================
    def _subtype(self, env: Env, sub: Type, sup: Type, depth: int) -> bool:
        """Figure 5, memoised.

        Positive answers are sound at any depth (fuel only bounds the
        search, never the judgment), so they are reused freely; negative
        answers are reused only when computed with at least as much fuel
        as the caller has, which keeps memoisation from ever being more
        conservative than the plain search.
        """
        if sub == sup:
            return True  # S-Refl
        logic = self.logic
        if depth > logic.max_depth:
            return False
        logic.stats.subtype_calls += 1
        fuel = logic.max_depth - depth
        key = (env.fingerprint(), sub._iid, sup._iid)
        hit = logic._subtype_cache.get(key)
        if hit is not None and (hit[0] or hit[1] >= fuel):
            logic.stats.subtype_hits += 1
            return hit[0]
        result = self._subtype_search(env, sub, sup, depth)
        if hit is None or result or fuel > hit[1]:
            if len(logic._subtype_cache) >= logic._cache_limit:
                logic._subtype_cache.clear()
            logic._subtype_cache[key] = (result, fuel)
        return result

    def _subtype_search(self, env: Env, sub: Type, sup: Type, depth: int) -> bool:
        if isinstance(sup, Top):
            return True  # S-Top
        if isinstance(sub, Union):
            return all(self._subtype(env, m, sup, depth + 1) for m in sub.members)
        if isinstance(sub, Refine):
            # S-Refine1 (which subsumes S-Weaken): Γ, x∈τ, ψ ⊢ x ∈ σ
            name = fresh_name(sub.var)
            var = Var(name)
            extended = self.logic.extend(
                env, IsType(var, Refine(sub.var, sub.base, sub.prop))
            )
            return self._prove_is(extended, var, sup, depth + 1)
        if isinstance(sup, Union):
            return any(self._subtype(env, sub, m, depth + 1) for m in sup.members)
        if isinstance(sup, Refine):
            # S-Refine2
            if not self._subtype(env, sub, sup.base, depth + 1):
                return False
            name = fresh_name(sup.var)
            var = Var(name)
            extended = self.logic.extend(env, IsType(var, sub))
            return self.prove(
                extended, prop_subst(sup.prop, {sup.var: var}), depth + 1
            )
        if isinstance(sub, Pair) and isinstance(sup, Pair):
            return self._subtype(env, sub.fst, sup.fst, depth + 1) and self._subtype(
                env, sub.snd, sup.snd, depth + 1
            )
        if isinstance(sub, Vec) and isinstance(sup, Vec):
            # Mutable vectors are invariant.
            return self._subtype(env, sub.elem, sup.elem, depth + 1) and self._subtype(
                env, sup.elem, sub.elem, depth + 1
            )
        if isinstance(sub, Fun) and isinstance(sup, Fun):
            return self._subtype_fun(env, sub, sup, depth)
        if isinstance(sub, Poly) and isinstance(sup, Poly):
            if len(sub.tvars) != len(sup.tvars):
                return False
            from ...tr.subst import type_subst_tvars

            renaming = {
                old: TVar(new) for old, new in zip(sup.tvars, sub.tvars)
            }
            return self._subtype(
                env, sub.body, type_subst_tvars(sup.body, renaming), depth + 1
            )
        return False

    def _subtype_fun(self, env: Env, sub: Fun, sup: Fun, depth: int) -> bool:
        """S-Fun, n-ary: contravariant domains, covariant dependent range."""
        if sub.arity != sup.arity:
            return False
        fresh = [Var(fresh_name(name)) for name, _ in sup.args]
        sub_map = {name: var for (name, _), var in zip(sub.args, fresh)}
        sup_map = {name: var for (name, _), var in zip(sup.args, fresh)}
        extended = env
        for i in range(sub.arity):
            sub_dom = type_subst(sub.args[i][1], sub_map)
            sup_dom = type_subst(sup.args[i][1], sup_map)
            if not self._subtype(extended, sup_dom, sub_dom, depth + 1):
                return False
            # The environment assigns the more specific (super) domain.
            extended = self.logic.extend(extended, IsType(fresh[i], sup_dom))
        sub_result = result_subst(sub.result, sub_map)
        sup_result = result_subst(sup.result, sup_map)
        return self._result_subtype(extended, sub_result, sup_result, depth + 1)

    # ==================================================================
    # type-result subtyping (SR-Result, SR-Exists)
    # ==================================================================
    def _result_subtype(
        self, env: Env, sub: TypeResult, sup: TypeResult, depth: int
    ) -> bool:
        if depth > self.logic.max_depth:
            return False
        # SR-Exists: open the left result's existential binders.
        extended = env
        for name, ty in sub.binders:
            extended = self.logic.extend(extended, IsType(Var(name), ty))
        if sup.binders:
            return False  # annotations never carry existentials
        # With a non-null object the type obligation strengthens to
        # Γ ⊢ o ∈ τ₂ (L-Sub through the object), which lets environment
        # facts about o — e.g. a conditional's guard — discharge
        # refinements the bare type cannot.
        type_ok = False
        if not sub.obj.is_null():
            extended_with = self.logic.extend(extended, IsType(sub.obj, sub.type))
            type_ok = self.prove(
                extended_with, IsType(sub.obj, sup.type), depth + 1
            )
        if not type_ok and not self._subtype(extended, sub.type, sup.type, depth + 1):
            return False
        sup_obj = self._canon(extended, sup.obj)
        if not sup_obj.is_null():
            sub_obj = self._canon(extended, sub.obj)
            if sub_obj != sup_obj and not extended.aliases.same_class(sub_obj, sup_obj):
                return False
        then_env = self.logic.extend(extended, sub.then_prop)
        if not self.prove(then_env, sup.then_prop, depth + 1):
            return False
        else_env = self.logic.extend(extended, sub.else_prop)
        return self.prove(else_env, sup.else_prop, depth + 1)


def _field_component(ty: Type, field: str) -> Optional[Type]:
    """The type of ``(field o)`` given ``o``'s type, if determined."""
    if isinstance(ty, Refine):
        return _field_component(ty.base, field)
    if isinstance(ty, Union):
        parts = [_field_component(m, field) for m in ty.members]
        if all(p is not None for p in parts) and parts:
            return make_union(parts)  # type: ignore[arg-type]
        return None
    if isinstance(ty, Pair):
        if field == FST:
            return ty.fst
        if field == SND:
            return ty.snd
    if isinstance(ty, (Vec, StrT)) and field == LEN:
        return INT
    return None
