"""Stage 1 — normalization: clausify, canonicalize, decompose.

Pure single-step rewrite rules over propositions and type facts.  Each
function inspects exactly one node and either classifies it as atomic
or returns the sub-facts it decomposes into; the
:class:`~repro.logic.kernel.saturate.Saturator` drives them from an
explicit worklist, so no rule ever recurses.

The rules implemented here are the proposition-shaped halves of the
Figure 6 environment rules:

* clausification — ``tt``/``ff`` elimination, conjunction splitting,
  disjunction shrinking against cheap refutations (the pre-filter that
  keeps case splits small);
* alias canonicalization — L-ObjFork (pair aliases decompose
  pointwise) and theory-atom rewriting onto representative objects
  (L-Transport's bookkeeping half);
* type-fact decomposition — L-RefE (refinements unpack as they are
  learned), M-RefineNot1/2 (negative refinements become disjunctions)
  and L-TypeFork (pair facts decompose pointwise).

Work items are plain tuples tagged with the small ints below — the
saturator allocates one list cell per fact, nothing more.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...tr.objects import LinExpr, Obj, PairObj
from ...tr.props import (
    Alias,
    And,
    BVProp,
    Congruence,
    FF,
    IsType,
    LeqZero,
    NotType,
    Or,
    Prop,
    TheoryProp,
    TT,
    make_congruence,
    make_or,
    negate_prop,
)
from ...tr.subst import prop_subst
from ...tr.types import Pair, Refine, Type, Union

__all__ = [
    "PROP",
    "TYPE",
    "ALIAS",
    "canon_theory",
    "clausify_step",
    "decompose_type",
]

#: worklist item tags: ``(PROP, prop)``, ``(TYPE, obj, ty, positive)``,
#: ``(ALIAS, left, right)``
PROP, TYPE, ALIAS = 0, 1, 2

Canon = Callable[[Obj], Obj]
WorkItem = Tuple


def canon_theory(canon: Canon, prop: TheoryProp) -> Prop:
    """Canonicalise a theory atom's objects; may constant-fold.

    Rewriting onto alias-class representatives is what lets one
    translated assumption serve every spelling of the same fact
    (section 4.1, "Representative objects").
    """
    if isinstance(prop, LeqZero):
        expr = canon(prop.expr)
        if expr.is_null():
            return TT
        if isinstance(expr, LinExpr):
            if expr.is_constant():
                return TT if expr.const <= 0 else FF
            # canon over interned nodes returns the identical instance
            # when nothing changed — skip rebuilding the atom
            if expr is prop.expr:
                return prop
        else:
            expr = LinExpr(0, ((expr, 1),))
        return LeqZero(expr)
    if isinstance(prop, BVProp):
        lhs = canon(prop.lhs)
        rhs = canon(prop.rhs)
        if lhs.is_null() or rhs.is_null():
            return TT
        if lhs is prop.lhs and rhs is prop.rhs:
            return prop
        return BVProp(prop.op, lhs, rhs, prop.width)
    if isinstance(prop, Congruence):
        return make_congruence(canon(prop.obj), prop.modulus, prop.residue)
    return prop


def clausify_step(prop: Prop) -> Optional[List[WorkItem]]:
    """One clausification step, or ``None`` when ``prop`` is atomic.

    Conjunctions split; alias and type atoms become their typed work
    items.  Disjunctions, theory atoms and everything else need the
    store's state (refutation shrinking, canonicalization) and are
    handled by the saturator directly.
    """
    if isinstance(prop, And):
        return [(PROP, conjunct) for conjunct in prop.conjuncts]
    if isinstance(prop, Alias):
        return [(ALIAS, prop.left, prop.right)]
    if isinstance(prop, IsType):
        return [(TYPE, prop.obj, prop.type, True)]
    if isinstance(prop, NotType):
        return [(TYPE, prop.obj, prop.type, False)]
    return None


def decompose_type(
    obj: Obj, ty: Type, positive: bool
) -> Optional[List[WorkItem]]:
    """Type-fact decomposition: one step, or ``None`` when recordable.

    ``obj`` is already canonical.  Positive refinements unpack (L-RefE);
    negative refinements become the disjunction of M-RefineNot1/2;
    pair objects against pair types fork pointwise (L-TypeFork).  A
    fact that survives undecomposed is recorded by the
    :class:`~repro.logic.kernel.facts.FactStore`.
    """
    if isinstance(ty, Refine):
        if positive:
            return [
                (TYPE, obj, ty.base, True),
                (PROP, prop_subst(ty.prop, {ty.var: obj})),
            ]
        unpacked = make_or(
            (
                NotType(obj, ty.base),
                negate_prop(prop_subst(ty.prop, {ty.var: obj})),
            )
        )
        return [(PROP, unpacked)]
    if positive and isinstance(obj, PairObj) and isinstance(ty, Pair):
        return [
            (TYPE, obj.fst, ty.fst, True),
            (TYPE, obj.snd, ty.snd, True),
        ]
    return None


def alias_forks(left: Obj, right: Obj) -> Optional[List[WorkItem]]:
    """L-ObjFork: a pair alias decomposes into component aliases."""
    if isinstance(left, PairObj) and isinstance(right, PairObj):
        return [
            (ALIAS, left.fst, right.fst),
            (ALIAS, left.snd, right.snd),
        ]
    return None
