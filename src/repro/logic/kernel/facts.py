"""The explicit fact store produced by normalization + saturation.

A :class:`FactStore` is the typed write interface over one
:class:`~repro.logic.env.Env`: the saturation stage funnels every
normalized atomic fact through it, and it implements the *record*
halves of the Figure 6 environment rules — the parts that consult
existing knowledge rather than decompose new facts:

* positive type facts are intersected with what is already known
  (``restrict``) and pushed into root objects along field paths
  (L-Update+);
* negative type facts carve members out of the known type (``remove``,
  L-Update-) and are remembered for M-TypeNot-style refutations;
* theory atoms and residual disjunctions land in the environment's
  ``theory_facts`` / ``compounds`` containers;
* an empty union anywhere marks the environment inconsistent (L-Bot).

The store never recurses and never walks a proposition — decomposition
already happened in :mod:`~repro.logic.kernel.normalize`; derived
facts (e.g. a vector's length atom) are appended to the saturator's
worklist through :attr:`out`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from ...tr.objects import (
    BVExpr,
    FieldRef,
    LEN,
    LinExpr,
    Obj,
    PairObj,
    obj_field,
    obj_int,
)
from ...tr.props import (
    BVProp,
    Congruence,
    FalseProp,
    IsType,
    LeqZero,
    Prop,
    TheoryProp,
    lin_le,
)
from ...tr.types import Str as StrT
from ...tr.types import Type, Union, Vec
from ..env import Env, split_path
from ..update import overlap, remove, restrict, update

__all__ = ["FactStore"]

Subtype = Callable[[Type, Type], bool]
Lookup = Callable[[Env, Obj], Optional[Type]]


def _obj_mentions(obj: Obj, targets: FrozenSet[Obj], memo: Dict[Obj, bool]) -> bool:
    """Does ``obj`` structurally contain any member of ``targets``?

    Iterative (explicit stack): objects can mirror program nesting
    depth, and this runs inside the saturation loop.
    """
    hit = memo.get(obj)
    if hit is not None:
        return hit
    stack: List[Obj] = [obj]
    seen: List[Obj] = []
    found = False
    while stack:
        current = stack.pop()
        if current in targets:
            found = True
            break
        cached = memo.get(current)
        if cached is not None:
            if cached:
                found = True
                break
            continue
        seen.append(current)
        if isinstance(current, FieldRef):
            stack.append(current.base)
        elif isinstance(current, PairObj):
            stack.append(current.fst)
            stack.append(current.snd)
        elif isinstance(current, LinExpr):
            stack.extend(atom for atom, _ in current.terms)
        elif isinstance(current, BVExpr):
            stack.extend(arg for arg in current.args if isinstance(arg, Obj))
    for visited in seen:
        # Only negative answers are safely memoisable for the whole
        # subtree set; a positive hit aborts mid-walk.
        if not found:
            memo[visited] = False
    memo[obj] = found
    return found


def _fact_objects(fact: TheoryProp) -> List[Obj]:
    if isinstance(fact, LeqZero):
        return [fact.expr]
    if isinstance(fact, BVProp):
        return [fact.lhs, fact.rhs]
    if isinstance(fact, Congruence):
        return [fact.obj]
    return []


class FactStore:
    """Typed record operations over one environment being extended."""

    __slots__ = ("env", "canon", "subtype", "lookup", "out")

    def __init__(
        self,
        env: Env,
        canon: Callable[[Obj], Obj],
        subtype: Subtype,
        lookup: Lookup,
        out: List,
    ) -> None:
        self.env = env
        self.canon = canon
        self.subtype = subtype
        self.lookup = lookup
        #: the saturator's worklist; derived facts are appended here
        self.out = out

    # ------------------------------------------------------------------
    # record operations (the non-decomposing halves of Figure 6)
    # ------------------------------------------------------------------
    def record_type(self, obj: Obj, ty: Type, positive: bool) -> None:
        """Record an undecomposable type fact (``obj`` already canonical)."""
        env = self.env
        if positive:
            if isinstance(ty, Union) and not ty.members:
                env.mark_inconsistent()  # L-Bot territory
                return
            if isinstance(ty, (Vec, StrT)):
                # Vector and string lengths are natural numbers.
                length_fact = lin_le(obj_int(0), obj_field(LEN, obj))
                if isinstance(length_fact, TheoryProp):
                    env.add_theory_fact(length_fact)
            existing = env.types.get(obj)
            new_ty = ty if existing is None else restrict(existing, ty, self.subtype)
            env.set_type(obj, new_ty)
            if isinstance(new_ty, Union) and not new_ty.members:
                env.mark_inconsistent()
                return
            # L-Update+: push field knowledge into the root's type.
            root, path = split_path(obj)
            if path and root in env.types:
                updated = update(env.types[root], path, ty, True, self.subtype)
                env.set_type(root, updated)
                if isinstance(updated, Union) and not updated.members:
                    env.mark_inconsistent()
        else:
            existing = env.types.get(obj)
            if existing is None:
                existing = self.lookup(env, obj)
            if existing is not None:
                new_ty = remove(existing, ty, self.subtype)
                env.set_type(obj, new_ty)
                if isinstance(new_ty, Union) and not new_ty.members:
                    env.mark_inconsistent()
                    return
            env.add_neg(obj, ty)
            # L-Update-
            root, path = split_path(obj)
            if path and root in env.types:
                updated = update(env.types[root], path, ty, False, self.subtype)
                env.set_type(root, updated)
                if isinstance(updated, Union) and not updated.members:
                    env.mark_inconsistent()

    def record_theory(self, canonical: Prop) -> None:
        """Record a canonicalised theory atom (or its constant folding)."""
        if isinstance(canonical, FalseProp):
            self.env.mark_inconsistent()
        elif isinstance(canonical, TheoryProp):
            self.env.add_theory_fact(canonical)

    def record_compound(self, prop: Prop) -> None:
        self.env.add_compound(prop)

    # ------------------------------------------------------------------
    # cheap refutation (disjunction shrinking during clausification)
    # ------------------------------------------------------------------
    def quick_refuted(self, prop: Prop) -> bool:
        """A cheap refutation used to shrink disjunctions on assimilation."""
        if isinstance(prop, FalseProp):
            return True
        if isinstance(prop, IsType):
            obj = self.canon(prop.obj)
            known = self.env.types.get(obj)
            if known is not None and not overlap(known, prop.type):
                return True
        return False

    # ------------------------------------------------------------------
    # delta re-canonicalisation support
    # ------------------------------------------------------------------
    def any_record_mentions(self, targets: FrozenSet[Obj]) -> bool:
        """Does any record's object involve one of ``targets``?

        Used after an alias merge to decide whether re-keying records
        onto new representatives (L-Transport) can change anything at
        all — the common T-Let merge aliases a *fresh* variable, whose
        class no existing record mentions, making re-canonicalisation
        a no-op the old recursive engine still paid O(Γ) for.
        """
        if not targets:
            return False
        env = self.env
        memo: Dict[Obj, bool] = {}
        for obj in env.types:
            if _obj_mentions(obj, targets, memo):
                return True
        for obj in env.negs:
            if _obj_mentions(obj, targets, memo):
                return True
        for fact in env.theory_facts:
            for obj in _fact_objects(fact):
                if _obj_mentions(obj, targets, memo):
                    return True
        return False
