"""The layered proof kernel.

The monolithic recursive prover of :mod:`repro.logic.prove` is
decomposed into three explicit stages, each its own module:

1. :mod:`~repro.logic.kernel.normalize` — **normalization**: prop
   clausification, alias canonicalization and type-fact decomposition.
   Pure single-step rewrite rules (no recursion, no environment
   mutation) that turn an assumed proposition into atomic facts.
2. :mod:`~repro.logic.kernel.saturate` — **saturation**: an iterative
   worklist driver that feeds normalization outputs into a
   :class:`~repro.logic.kernel.facts.FactStore` until a fixed point.
   Replaces the unbounded ``_assimilate``/``_learn_*`` recursion (and
   its threaded ``depth`` parameter) with an explicit queue plus a step
   budget, so arbitrarily deep programs cannot blow the Python stack.
3. :mod:`~repro.logic.kernel.dispatch` — **theory dispatch**: goal
   atoms are batched per theory session and answered with one
   ``entails_batch`` call instead of N single-goal round-trips.

:mod:`~repro.logic.kernel.prover` evaluates the proof judgment Γ ⊢ ψ
itself iteratively (an explicit and/or frame stack over the goal's
propositional structure), so no ``proves``/``subtype`` call path
recurses per proposition; the remaining recursion is bounded by the
search fuel (``max_depth``), never by program size.

:class:`repro.logic.prove.Logic` remains the façade the checker talks
to — it owns the memo tables, statistics and theory sessions, and
drives these stages.
"""

from .dispatch import TheoryDispatch
from .facts import FactStore
from .prover import ProofKernel
from .saturate import Saturator

__all__ = ["FactStore", "ProofKernel", "Saturator", "TheoryDispatch"]
