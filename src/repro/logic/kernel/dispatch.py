"""Stage 3 — theory dispatch: batched L-Theory consultations.

The recursive engine asked the environment's theory session one goal
at a time; every atom paid a full session round-trip (memo probe, per-
theory ``accepts`` filtering, context dispatch).  The kernel instead
gathers the theory atoms of each *conjunction* frame — where every
atom must hold, so all will be consulted anyway — and answers them
with **one** :meth:`RegistrySession.entails_batch` call: the
assumption translation (already incremental per session) is shared,
and per-goal overhead collapses into a single dispatch per theory.
Disjunction frames stay lazy, preserving short-circuit evaluation.

Correctness: ``entails_batch`` is answer-equivalent to per-goal
``entails`` (both share the session memo), so batching can never
change a verdict — it only changes how many times the session is
crossed.  :class:`~repro.logic.prove.EngineStats` gains a
``theory_batches`` counter so the --stats table shows how many
round-trips the batching saved.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...tr.props import TheoryProp
from ..env import Env

__all__ = ["TheoryDispatch"]


class TheoryDispatch:
    """Batches goal atoms per environment session."""

    __slots__ = ("logic",)

    def __init__(self, logic) -> None:
        self.logic = logic

    def decide(
        self, env: Env, goals: Sequence[TheoryProp]
    ) -> Dict[TheoryProp, bool]:
        """Answer every goal with one session batch call."""
        logic = self.logic
        budget = logic.budget
        if budget is not None:
            # full check before crossing into the session: building a
            # session from scratch (assumption translation, solver
            # asserts) can dwarf a single goal's cost.
            budget.check()
        stats = logic.stats
        stats.theory_goals += len(goals)
        stats.theory_batches += 1
        hits = stats.rule_hits
        hits["dispatch.batch"] = hits.get("dispatch.batch", 0) + 1
        timers = logic.timers
        if timers is None:
            session = logic.theory_session(env)
            return dict(zip(goals, session.entails_batch(goals)))
        started = timers.enter("dispatch")
        try:
            session = logic.theory_session(env)
            return dict(zip(goals, session.entails_batch(goals)))
        finally:
            timers.exit("dispatch", started)

    def decide_one(self, env: Env, goal: TheoryProp) -> bool:
        """The single-goal path (atoms outside any and/or frame)."""
        logic = self.logic
        budget = logic.budget
        if budget is not None:
            budget.check()
        stats = logic.stats
        stats.theory_goals += 1
        hits = stats.rule_hits
        hits["dispatch.single"] = hits.get("dispatch.single", 0) + 1
        timers = logic.timers
        if timers is None:
            return logic.theory_session(env).entails(goal)
        started = timers.enter("dispatch")
        try:
            return logic.theory_session(env).entails(goal)
        finally:
            timers.exit("dispatch", started)
