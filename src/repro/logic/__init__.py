"""The proof system (Fig. 6), subtyping (Fig. 5) and environments (§4.1)."""

from .env import Env
from .prove import Logic

__all__ = ["Env", "Logic"]
