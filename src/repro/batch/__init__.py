"""Parallel batch checking with a persistent proof cache.

The scaling tier above the incremental engine: where PR 1 made one
process check one program fast and PR 2 generated corpora worth
checking, this package checks whole corpora — forked workers, one
long-lived engine per worker, merged statistics, and a
content-addressed verdict store that survives runs (so repeated
campaigns, watch modes and fuzz shards stop re-proving identical
queries).

Entry points: :func:`~repro.batch.pipeline.check_many` (the ``check
--jobs/--cache-dir`` CLI path) and
:class:`~repro.batch.cache.ProofCache` (attachable to any
:class:`~repro.logic.prove.Logic`).
"""

from .cache import ProofCache, env_digest
from .pipeline import (
    BatchReport,
    FileVerdict,
    WorkerPool,
    check_many,
    check_one,
    logic_config_key,
)

__all__ = [
    "BatchReport",
    "FileVerdict",
    "ProofCache",
    "WorkerPool",
    "check_many",
    "check_one",
    "env_digest",
    "logic_config_key",
]
