"""The multi-process batch-checking pipeline.

``check_many`` turns "check these N modules" into a first-class
workload: files are dealt round-robin to ``jobs`` forked workers, each
worker threads **one** :class:`~repro.logic.prove.Logic` through its
whole chunk (the long-lived-service shape the incremental engine is
built for), and the parent merges per-worker
:class:`~repro.logic.prove.EngineStats` (exact aggregate hit rates)
and persistent-cache deltas.  Verdicts come back in input order and
are bit-identical to sequential checking — worker engines share
nothing, and the cache-transparency property tests pin that a shared
engine cannot change any verdict.

With ``jobs=1`` the same code path runs in-process (no fork, no
pickling), so the CLI's single-process behaviour — including the
process-wide shared engine and its ``--stats`` counters — is
unchanged.

Fork is the only start method used: workers inherit the parsed module
cache and warm intern tables for free.  Platforms without fork fall
back to in-process execution with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..checker.check import Checker
from ..checker.errors import CheckError
from ..logic.prove import EngineStats, Logic
from ..syntax.parser import ParseError, parse_program
from ..tr.pretty import pretty_type
from .cache import ProofCache

__all__ = [
    "FileVerdict",
    "BatchReport",
    "WorkerPool",
    "check_many",
    "check_one",
    "effective_jobs",
    "logic_config_key",
]


def logic_config_key(logic: Logic) -> str:
    """The cache namespace of an engine configuration.

    Delegates to :meth:`Logic.config_key`: two engines share persistent
    entries only when nothing that can influence a verdict differs.
    """
    return logic.config_key()


@dataclass(frozen=True)
class FileVerdict:
    """One module's outcome, independent of which worker produced it."""

    path: str
    ok: bool
    error: str = ""
    #: definition name → pretty-printed type (for ``--verbose``)
    types: Dict[str, str] = field(default_factory=dict)
    from_cache: bool = False


def effective_jobs(jobs: int) -> int:
    """Clamp an over-subscribed ``--jobs`` to the machine's core count.

    Forking more workers than cores only adds scheduler churn and
    memory; single-core boxes silently ran 4-way "parallel" batches
    slower than sequential ones.  The degradation is recorded on the
    report (``jobs_requested`` vs ``jobs``) so callers can surface it.
    """
    return max(1, min(jobs, os.cpu_count() or 1))


@dataclass
class BatchReport:
    """What ``check_many`` measured."""

    verdicts: List[FileVerdict]
    stats: EngineStats
    jobs: int
    cache_entries_written: int = 0
    #: what the caller asked for before the core-count clamp
    jobs_requested: int = 0

    def __post_init__(self) -> None:
        if not self.jobs_requested:
            self.jobs_requested = self.jobs

    @property
    def jobs_degraded(self) -> bool:
        return self.jobs_requested > self.jobs

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def failures(self) -> List[FileVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]


# ----------------------------------------------------------------------
# one module
# ----------------------------------------------------------------------
def check_one(
    checker: Checker, path: str, cache: Optional[ProofCache] = None
) -> FileVerdict:
    """Check one module with the given (chunk-shared) checker."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        return FileVerdict(path, False, f"cannot read: {exc}")
    program_key = None
    if cache is not None:
        program_key = cache.program_key(source)
        stored = cache.get_program(program_key)
        if stored is not None:
            ok, error, types = stored
            return FileVerdict(path, ok, error, types, from_cache=True)
    try:
        program = parse_program(source)
        types = checker.check_program(program)
    except (ParseError, CheckError) as exc:
        verdict = FileVerdict(path, False, str(exc))
    else:
        verdict = FileVerdict(
            path, True, "", {name: pretty_type(ty) for name, ty in types.items()}
        )
    if cache is not None and program_key is not None:
        cache.put_program(program_key, verdict.ok, verdict.error, verdict.types)
    return verdict


# ----------------------------------------------------------------------
# chunk execution (one worker)
# ----------------------------------------------------------------------
def _run_chunk(
    args: Tuple[Sequence[Tuple[int, str]], Optional[str]],
) -> Tuple[List[Tuple[int, FileVerdict]], EngineStats, Dict[str, object]]:
    chunk, cache_dir = args
    logic = Logic()
    cache: Optional[ProofCache] = None
    if cache_dir is not None:
        cache = ProofCache(cache_dir, logic_config_key(logic))
        logic.attach_persistent_cache(cache)
    checker = Checker(logic=logic)
    results = [(index, check_one(checker, path, cache)) for index, path in chunk]
    delta = cache.delta() if cache is not None else {}
    return results, logic.stats, delta


def _run_chunk_warm(
    args: Tuple[Sequence[Tuple[int, str]], Optional[str]],
) -> Tuple[List[Tuple[int, FileVerdict]], EngineStats, Dict[str, object]]:
    """Chunk runner for resident pool workers.

    Unlike :func:`_run_chunk` (fresh engine per call), a resident
    worker threads the process-wide shared engine — inherited warm from
    the parent at fork time and warming further across calls — through
    every chunk it is ever handed.  Caches are content-addressed, so
    the sharing cannot change a verdict (the fuzz cache-transparency
    property); stats are reported as a per-call delta so the parent's
    merged totals cover exactly this batch.
    """
    chunk, cache_dir = args
    logic = Checker().logic
    baseline = logic.stats.copy()
    cache: Optional[ProofCache] = None
    if cache_dir is not None:
        cache = ProofCache(cache_dir, logic_config_key(logic))
        logic.attach_persistent_cache(cache)
    try:
        checker = Checker(logic=logic)
        results = [(index, check_one(checker, path, cache)) for index, path in chunk]
    finally:
        if cache is not None:
            logic.detach_persistent_cache()
    delta = cache.delta() if cache is not None else {}
    return results, logic.stats.delta_from(baseline), delta


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def _deal_chunks(
    indexed: Sequence[Tuple[int, str]], jobs: int
) -> List[List[Tuple[int, str]]]:
    chunks: List[List[Tuple[int, str]]] = [[] for _ in range(jobs)]
    for position, item in enumerate(indexed):
        chunks[position % jobs].append(item)
    return [chunk for chunk in chunks if chunk]


def _merge_outcomes(
    indexed: Sequence[Tuple[int, str]],
    outcomes,
    cache_dir: Optional[str],
    jobs: int,
) -> BatchReport:
    ordered: List[Optional[FileVerdict]] = [None] * len(indexed)
    stats = EngineStats()
    written = 0
    parent_cache: Optional[ProofCache] = None
    if cache_dir is not None:
        # Worker deltas carry fully-namespaced keys, so the parent's
        # own config namespace is irrelevant for absorb + flush.
        parent_cache = ProofCache(cache_dir)
    for results, worker_stats, delta in outcomes:
        for index, verdict in results:
            ordered[index] = verdict
        stats.merge(worker_stats)
        if parent_cache is not None:
            parent_cache.absorb(delta)
    if parent_cache is not None:
        written = parent_cache.flush()
    verdicts = [verdict for verdict in ordered if verdict is not None]
    return BatchReport(verdicts, stats, jobs=jobs, cache_entries_written=written)


class WorkerPool:
    """A resident fork pool for repeated batch checks.

    ``check --jobs`` forks a fresh pool per invocation; a long-running
    service would pay that fork (and engine cold-start) on every
    request.  A ``WorkerPool`` instead keeps the forked workers alive
    across any number of :meth:`check_many` calls.  Creation is lazy:
    the pool forks on first use, so workers inherit whatever the parent
    engine has already learned, and each worker's shared engine keeps
    warming across requests (sound: the engine caches are
    content-addressed, so reuse can never change a verdict).

    On platforms without ``fork`` — or with ``jobs=1`` — every call
    transparently degrades to the in-process path with identical
    results.
    """

    def __init__(self, jobs: int, cache_dir: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        # Not clamped to the core count: a resident pool's workers
        # overlap request handling and reset isolation is pinned
        # behaviour, so the caller's count is honoured as-is (the
        # one-shot ``check_many`` path is where oversubscription
        # degrades).
        self.jobs_requested = jobs
        self.jobs = jobs
        self.cache_dir = cache_dir
        self._pool = None
        self.batches = 0

    @property
    def alive(self) -> bool:
        return self._pool is not None

    def _ensure(self):
        if self._pool is None and self.jobs > 1 and _fork_available():
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def check_many(self, paths: Sequence[str]) -> BatchReport:
        """Check every module on the resident workers, in input order."""
        indexed = list(enumerate(paths))
        pool = self._ensure() if len(indexed) > 1 else None
        self.batches += 1
        if pool is None:
            return check_many(
                paths, jobs=1, cache_dir=self.cache_dir, logic=Checker().logic
            )
        chunks = _deal_chunks(indexed, self.jobs)
        outcomes = self._map_resilient(
            [(chunk, self.cache_dir) for chunk in chunks]
        )
        if outcomes is None:
            # A worker died mid-batch.  multiprocessing.Pool.map would
            # block forever here (the dead worker's chunk is never
            # resubmitted), which under the daemon wedges the single
            # engine lane for good.  The pool has already been torn
            # down; re-run the whole batch in-process — slow but
            # sound, since chunk runners are idempotent and nothing
            # from the broken pool was merged.
            return check_many(
                paths, jobs=1, cache_dir=self.cache_dir, logic=Checker().logic
            )
        return _merge_outcomes(indexed, outcomes, self.cache_dir, jobs=self.jobs)

    def _map_resilient(self, tasks):
        """``pool.map`` with a liveness watchdog; None if the pool broke.

        ``map_async`` + polling: between polls the worker processes are
        checked for liveness *and* identity — Pool's supervisor thread
        quietly replaces a dead worker (so "all alive" can hold again
        moments later), but the replacement never inherits the lost
        chunk, so a changed PID set means the in-flight map can no
        longer complete.  Detection tears the pool down (fresh workers
        next batch) and signals the caller to fall back.
        """
        pool = self._pool
        result = pool.map_async(_run_chunk_warm, tasks)
        baseline = {worker.pid for worker in pool._pool}
        while not result.ready():
            result.wait(0.05)
            workers = list(pool._pool)
            alive = {w.pid for w in workers if w.is_alive()}
            if alive != baseline:
                self.close()
                return None
        # ready: every chunk landed (or raised) — the pool is healthy
        # and a task exception propagates exactly as pool.map's would
        return result.get()

    def close(self) -> None:
        """Tear the workers down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def check_many(
    paths: Sequence[str],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    logic: Optional[Logic] = None,
    parallel: Optional[bool] = None,
) -> BatchReport:
    """Check every module; returns verdicts in input order.

    ``jobs=1`` checks in-process through ``logic`` (default: the
    process-wide shared engine), matching the plain CLI loop exactly.
    ``jobs>1`` deals files round-robin to forked workers, each with its
    own engine and a view of the persistent cache; the parent merges
    stats and flushes the combined cache delta once.  A caller-supplied
    ``logic`` cannot cross the fork boundary (workers need independent
    engines), so supplying one forces the in-process path — a custom
    engine is never silently swapped for the default.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    requested = jobs
    jobs = effective_jobs(jobs)
    indexed = list(enumerate(paths))
    use_processes = (
        jobs > 1 and logic is None and len(indexed) > 1 and _fork_available()
    )
    if parallel is not None:
        use_processes = use_processes and parallel

    if not use_processes:
        if logic is not None:
            engine = logic
        elif requested > 1:
            # A degraded parallel request emulates the fork path it
            # replaces: fresh per-worker engines, batch-scoped stats —
            # not the process-wide engine's lifetime counters.
            engine = Logic()
        else:
            engine = Checker().logic
        cache: Optional[ProofCache] = None
        if cache_dir is not None:
            cache = ProofCache(cache_dir, logic_config_key(engine))
            engine.attach_persistent_cache(cache)
        try:
            checker = Checker(logic=engine)
            verdicts = [check_one(checker, path, cache) for _, path in indexed]
            written = cache.flush() if cache is not None else 0
        finally:
            # the engine may be the process-wide shared one: never leave
            # the cache attached past this call, even on an escaping error
            if cache is not None:
                engine.detach_persistent_cache()
        stats = EngineStats().merge(engine.stats)
        if requested > jobs:
            hits = stats.rule_hits
            hits["batch.jobs-degraded"] = hits.get("batch.jobs-degraded", 0) + 1
        return BatchReport(
            verdicts, stats, jobs=1,
            cache_entries_written=written, jobs_requested=requested,
        )

    chunks = _deal_chunks(indexed, jobs)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=len(chunks)) as pool:
        outcomes = pool.map(_run_chunk, [(chunk, cache_dir) for chunk in chunks])
    report = _merge_outcomes(indexed, outcomes, cache_dir, jobs=jobs)
    report.jobs_requested = requested
    if requested > jobs:
        hits = report.stats.rule_hits
        hits["batch.jobs-degraded"] = hits.get("batch.jobs-degraded", 0) + 1
    return report
