"""The multi-process batch-checking pipeline.

``check_many`` turns "check these N modules" into a first-class
workload: files are dealt round-robin to ``jobs`` forked workers, each
worker threads **one** :class:`~repro.logic.prove.Logic` through its
whole chunk (the long-lived-service shape the incremental engine is
built for), and the parent merges per-worker
:class:`~repro.logic.prove.EngineStats` (exact aggregate hit rates)
and persistent-cache deltas.  Verdicts come back in input order and
are bit-identical to sequential checking — worker engines share
nothing, and the cache-transparency property tests pin that a shared
engine cannot change any verdict.

With ``jobs=1`` the same code path runs in-process (no fork, no
pickling), so the CLI's single-process behaviour — including the
process-wide shared engine and its ``--stats`` counters — is
unchanged.

Fork is the only start method used: workers inherit the parsed module
cache and warm intern tables for free.  Platforms without fork fall
back to in-process execution with identical results.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..checker.check import Checker
from ..checker.errors import CheckError
from ..logic.prove import EngineStats, Logic
from ..syntax.parser import ParseError, parse_program
from ..tr.pretty import pretty_type
from .cache import ProofCache

__all__ = ["FileVerdict", "BatchReport", "check_many", "check_one", "logic_config_key"]


def logic_config_key(logic: Logic) -> str:
    """The cache namespace of an engine configuration.

    Delegates to :meth:`Logic.config_key`: two engines share persistent
    entries only when nothing that can influence a verdict differs.
    """
    return logic.config_key()


@dataclass(frozen=True)
class FileVerdict:
    """One module's outcome, independent of which worker produced it."""

    path: str
    ok: bool
    error: str = ""
    #: definition name → pretty-printed type (for ``--verbose``)
    types: Dict[str, str] = field(default_factory=dict)
    from_cache: bool = False


@dataclass
class BatchReport:
    """What ``check_many`` measured."""

    verdicts: List[FileVerdict]
    stats: EngineStats
    jobs: int
    cache_entries_written: int = 0

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def failures(self) -> List[FileVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]


# ----------------------------------------------------------------------
# one module
# ----------------------------------------------------------------------
def check_one(
    checker: Checker, path: str, cache: Optional[ProofCache] = None
) -> FileVerdict:
    """Check one module with the given (chunk-shared) checker."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        return FileVerdict(path, False, f"cannot read: {exc}")
    program_key = None
    if cache is not None:
        program_key = cache.program_key(source)
        stored = cache.get_program(program_key)
        if stored is not None:
            ok, error, types = stored
            return FileVerdict(path, ok, error, types, from_cache=True)
    try:
        program = parse_program(source)
        types = checker.check_program(program)
    except (ParseError, CheckError) as exc:
        verdict = FileVerdict(path, False, str(exc))
    else:
        verdict = FileVerdict(
            path, True, "", {name: pretty_type(ty) for name, ty in types.items()}
        )
    if cache is not None and program_key is not None:
        cache.put_program(program_key, verdict.ok, verdict.error, verdict.types)
    return verdict


# ----------------------------------------------------------------------
# chunk execution (one worker)
# ----------------------------------------------------------------------
def _run_chunk(
    args: Tuple[Sequence[Tuple[int, str]], Optional[str]],
) -> Tuple[List[Tuple[int, FileVerdict]], EngineStats, Dict[str, object]]:
    chunk, cache_dir = args
    logic = Logic()
    cache: Optional[ProofCache] = None
    if cache_dir is not None:
        cache = ProofCache(cache_dir, logic_config_key(logic))
        logic.attach_persistent_cache(cache)
    checker = Checker(logic=logic)
    results = [(index, check_one(checker, path, cache)) for index, path in chunk]
    delta = cache.delta() if cache is not None else {}
    return results, logic.stats, delta


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def check_many(
    paths: Sequence[str],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    logic: Optional[Logic] = None,
    parallel: Optional[bool] = None,
) -> BatchReport:
    """Check every module; returns verdicts in input order.

    ``jobs=1`` checks in-process through ``logic`` (default: the
    process-wide shared engine), matching the plain CLI loop exactly.
    ``jobs>1`` deals files round-robin to forked workers, each with its
    own engine and a view of the persistent cache; the parent merges
    stats and flushes the combined cache delta once.  A caller-supplied
    ``logic`` cannot cross the fork boundary (workers need independent
    engines), so supplying one forces the in-process path — a custom
    engine is never silently swapped for the default.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    indexed = list(enumerate(paths))
    use_processes = (
        jobs > 1 and logic is None and len(indexed) > 1 and _fork_available()
    )
    if parallel is not None:
        use_processes = use_processes and parallel

    if not use_processes:
        engine = logic if logic is not None else Checker().logic
        cache: Optional[ProofCache] = None
        if cache_dir is not None:
            cache = ProofCache(cache_dir, logic_config_key(engine))
            engine.attach_persistent_cache(cache)
        try:
            checker = Checker(logic=engine)
            verdicts = [check_one(checker, path, cache) for _, path in indexed]
            written = cache.flush() if cache is not None else 0
        finally:
            # the engine may be the process-wide shared one: never leave
            # the cache attached past this call, even on an escaping error
            if cache is not None:
                engine.detach_persistent_cache()
        stats = EngineStats().merge(engine.stats)
        return BatchReport(verdicts, stats, jobs=1, cache_entries_written=written)

    chunks: List[List[Tuple[int, str]]] = [[] for _ in range(jobs)]
    for position, item in enumerate(indexed):
        chunks[position % jobs].append(item)
    chunks = [chunk for chunk in chunks if chunk]
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=len(chunks)) as pool:
        outcomes = pool.map(_run_chunk, [(chunk, cache_dir) for chunk in chunks])

    ordered: List[Optional[FileVerdict]] = [None] * len(indexed)
    stats = EngineStats()
    written = 0
    parent_cache: Optional[ProofCache] = None
    if cache_dir is not None:
        # Worker deltas carry fully-namespaced keys, so the parent's
        # own config namespace is irrelevant for absorb + flush.
        parent_cache = ProofCache(cache_dir)
    for results, worker_stats, delta in outcomes:
        for index, verdict in results:
            ordered[index] = verdict
        stats.merge(worker_stats)
        if parent_cache is not None:
            parent_cache.absorb(delta)
    if parent_cache is not None:
        written = parent_cache.flush()
    verdicts = [verdict for verdict in ordered if verdict is not None]
    return BatchReport(verdicts, stats, jobs=jobs, cache_entries_written=written)
