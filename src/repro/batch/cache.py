"""The persistent, content-addressed proof cache.

Batch checking and fuzz campaigns re-prove the same queries endlessly:
workers share no memory, and successive runs start cold.  This module
gives :class:`~repro.logic.prove.Logic` a cross-process, cross-run
verdict store:

* **Keys are content digests.**  A ``proves`` entry is addressed by
  SHA-256 digests of the environment's full contents and of the goal
  (:func:`repro.tr.intern.node_digest` — stable structure digests,
  unlike the process-local intern ids they complement), plus the
  engine configuration; a program entry by the digest of its source
  text.  Equal keys mean equal queries, so a hit returns exactly what
  the search would recompute.
* **Sharded JSON on disk.**  Entries live in ``shards/<00..ff>.json``
  under the cache directory, keyed by the first byte of the digest —
  loads stay small and a shard rewrite touches 1/256th of the store.
  ``meta.json`` records the format version and engine configuration;
  a mismatch quarantines nothing and simply starts empty.
* **Single-writer discipline.**  Workers never write the store:
  each accumulates its new entries as a *delta* (:meth:`delta`),
  ships it to the parent with its results, and the parent
  :meth:`absorb`\\ s and :meth:`flush`\\ es once.  Concurrent
  campaigns against one directory at worst redo work.

Environment digests are cached per :class:`~repro.logic.env.Env`
instance (computing one is O(Γ)), and are only computed at all when a
persistent cache is attached.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Optional, Tuple

from ..logic.env import Env
from ..tr.intern import node_digest
from ..tr.props import Prop

__all__ = ["ProofCache", "env_digest"]

#: bump when the on-disk layout or key derivation changes
CACHE_FORMAT = 2

#: per-Env memo of content digests, keyed by the env's exact fingerprint
_env_digests: Dict[object, str] = {}
_ENV_DIGEST_LIMIT = 1 << 16


def env_digest(env: Env) -> str:
    """A stable digest of everything a judgment can read from Γ.

    Covers the typed records, negative records, theory atoms, stored
    compounds, alias classes and the inconsistency flag — the exact
    inputs of ``proves`` — assembled order-independently (records are
    digest-sorted) so structurally equal environments built in any
    order agree.
    """
    key = env.fingerprint()
    cached = _env_digests.get(key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(b"types")
    for entry in sorted(
        node_digest(obj) + node_digest(ty) for obj, ty in env.types.items()
    ):
        hasher.update(entry.encode())
    hasher.update(b"negs")
    for entry in sorted(
        node_digest(obj) + node_digest(ty)
        for obj, tys in env.negs.items()
        for ty in tys
    ):
        hasher.update(entry.encode())
    hasher.update(b"facts")
    for entry in sorted(node_digest(fact) for fact in env.theory_facts):
        hasher.update(entry.encode())
    hasher.update(b"compounds")
    for entry in sorted(node_digest(prop) for prop in env.compounds):
        hasher.update(entry.encode())
    hasher.update(b"aliases")
    alias_pairs = []
    for member in env.aliases.members():
        representative = env.aliases.find(member)
        if representative != member:
            alias_pairs.append(node_digest(member) + node_digest(representative))
    for entry in sorted(alias_pairs):
        hasher.update(entry.encode())
    if env.inconsistent:
        hasher.update(b"absurd")
    digest = hasher.hexdigest()
    if len(_env_digests) >= _ENV_DIGEST_LIMIT:
        _env_digests.clear()
    _env_digests[key] = digest
    return digest


class ProofCache:
    """A sharded on-disk verdict store (proof queries + whole programs)."""

    #: torn ``.tmp`` files older than this are swept at open (seconds);
    #: young ones may belong to a live concurrent flush and are left alone
    STALE_TMP_SECONDS = 60.0

    def __init__(self, directory: str, config_key: str = "") -> None:
        self.directory = directory
        self.config_key = config_key
        #: digest-keyed in-memory view, loaded shard by shard on demand
        self._shards: Dict[str, Dict[str, object]] = {}
        #: entries added this run and not yet flushed
        self._dirty: Dict[str, object] = {}
        #: corrupt/unreadable shard reads survived (each one served as
        #: empty — checks recompute and the next flush rewrites the shard)
        self.shards_skipped = 0
        #: optional EngineStats.rule_hits-style dict for the counter
        self._stats: Optional[Dict[str, int]] = None
        #: highest reset epoch ever recorded against this directory
        #: (``meta.json``); the daemon resumes from it at startup so
        #: epochs stay monotone across restarts over one cache dir.
        #: Entries themselves are content-addressed and survive resets
        #: — the epoch coordinates *engines*, not cache validity.
        self.epoch = 0
        self._ensure_layout()

    def bind_stats(self, rule_hits: Optional[Dict[str, int]]) -> None:
        """Mirror corruption-recovery events into an ``EngineStats``
        ``rule_hits`` dict (key ``cache.shard-skipped``)."""
        self._stats = rule_hits

    def _skip_shard(self) -> None:
        self.shards_skipped += 1
        stats = self._stats
        if stats is not None:
            stats["cache.shard-skipped"] = stats.get("cache.shard-skipped", 0) + 1

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def _shard_dir(self) -> str:
        return os.path.join(self.directory, "shards")

    def _meta_path(self) -> str:
        return os.path.join(self.directory, "meta.json")

    def _sweep_stale_tmp(self) -> None:
        """Remove torn temp files a crashed flush left behind.

        A flush writes ``<prefix>.<random>.tmp`` then ``os.replace``\\ s
        it over the shard; a process killed in between strands the tmp
        file.  Only files older than :data:`STALE_TMP_SECONDS` are
        removed — a young one may be a concurrent flush mid-write.
        """
        now = time.time()
        for directory in (self.directory, self._shard_dir()):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                try:
                    if now - os.path.getmtime(path) > self.STALE_TMP_SECONDS:
                        os.unlink(path)
                except OSError:
                    pass  # lost a race with another sweeper: fine

    def _ensure_layout(self) -> None:
        os.makedirs(self._shard_dir(), exist_ok=True)
        self._sweep_stale_tmp()
        path = self._meta_path()
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                existing = None
                self._skip_shard()  # truncated/corrupt meta: recovered below
            if isinstance(existing, dict) and existing.get("format") == CACHE_FORMAT:
                recorded = existing.get("epoch", 0)
                if isinstance(recorded, int) and recorded > 0:
                    self.epoch = recorded
                return
            # Unreadable or older on-disk format: start over.  A mere
            # configuration difference does NOT wipe anything — every
            # key already embeds the config namespace, so engines with
            # different configurations share a directory safely.
            # Concurrent openers (forked workers) may race this wipe;
            # losing an unlink race is fine.
            for name in os.listdir(self._shard_dir()):
                try:
                    os.unlink(os.path.join(self._shard_dir(), name))
                except FileNotFoundError:
                    pass
        meta = {"format": CACHE_FORMAT, "epoch": self.epoch}
        # Atomic write: a process killed mid-write must not leave a
        # corrupt meta.json that arms the wipe path for the next opener.
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".meta.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(meta, handle)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _shard_of(self, key: str) -> Dict[str, object]:
        prefix = key[:2]
        shard = self._shards.get(prefix)
        if shard is None:
            path = os.path.join(self._shard_dir(), prefix + ".json")
            try:
                with open(path) as handle:
                    shard = json.load(handle)
            except FileNotFoundError:
                shard = {}  # simply never written: not corruption
            except (OSError, ValueError):
                # garbage/truncated shard: serve it as empty — callers
                # recompute, and the next flush rewrites it whole.
                shard = {}
                self._skip_shard()
            if not isinstance(shard, dict):
                shard = {}  # valid JSON, wrong shape (e.g. a bare list)
                self._skip_shard()
            self._shards[prefix] = shard
        return shard

    # ------------------------------------------------------------------
    # epoch coordination (multi-lane daemon, daemon restarts)
    # ------------------------------------------------------------------
    def read_disk_epoch(self) -> int:
        """The epoch currently recorded in ``meta.json`` (0 if none).

        Re-read from disk every call: another process (or another lane's
        handle) may have bumped it since this handle was opened.
        Corrupt or missing meta reads as 0 — epoch coordination is an
        optimisation for convergence, never a soundness dependency.
        """
        try:
            with open(self._meta_path()) as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return 0
        recorded = meta.get("epoch", 0) if isinstance(meta, dict) else 0
        return recorded if isinstance(recorded, int) and recorded > 0 else 0

    def bump_epoch(self, epoch: int) -> int:
        """Record ``epoch`` in ``meta.json`` if it advances the stored one.

        Written atomically (tmp + replace) like every other file in the
        store; concurrent bumpers race benignly — the max of the epochs
        involved survives because each writer re-reads before writing.
        Returns the epoch now on disk.
        """
        current = max(self.read_disk_epoch(), self.epoch)
        if epoch <= current:
            self.epoch = current
            return current
        self.epoch = epoch
        meta = {"format": CACHE_FORMAT, "epoch": epoch}
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".meta.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(meta, handle)
            os.replace(tmp_path, self._meta_path())
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return epoch

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def prove_key(self, env: Env, goal: Prop) -> str:
        """The content address of one top-level ``proves`` query."""
        body = "p:" + self.config_key + ":" + env_digest(env) + ":" + node_digest(goal)
        return hashlib.sha256(body.encode()).hexdigest()

    def program_key(self, source: str) -> str:
        """The content address of a whole-module check."""
        body = "m:" + self.config_key + ":" + source
        return hashlib.sha256(body.encode()).hexdigest()

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def get_prove(self, key: str) -> Optional[bool]:
        value = self._dirty.get(key)
        if value is None:
            value = self._shard_of(key).get(key)
        return value if isinstance(value, bool) else None

    def put_prove(self, key: str, verdict: bool) -> None:
        if self._shard_of(key).get(key) != verdict:
            self._dirty[key] = verdict

    def get_program(self, key: str) -> Optional[Tuple[bool, str, Dict[str, str]]]:
        """A stored module verdict: (ok, error-or-empty, pretty types)."""
        value = self._dirty.get(key)
        if value is None:
            value = self._shard_of(key).get(key)
        if isinstance(value, list) and len(value) == 3:
            return bool(value[0]), str(value[1]), dict(value[2])
        return None

    def put_program(
        self, key: str, ok: bool, error: str, types: Dict[str, str]
    ) -> None:
        self._dirty[key] = [ok, error, types]

    # ------------------------------------------------------------------
    # worker → parent delta protocol
    # ------------------------------------------------------------------
    def delta(self) -> Dict[str, object]:
        """The entries added since open/flush (picklable, parent-bound)."""
        return dict(self._dirty)

    def absorb(self, delta: Dict[str, object]) -> None:
        """Fold a worker's delta into this (parent) cache."""
        self._dirty.update(delta)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write dirty entries to their shards (atomic per shard).

        Returns the number of entries written.  Shards are re-read
        before writing so concurrent flushes lose nothing but the race.
        """
        if not self._dirty:
            return 0
        by_prefix: Dict[str, Dict[str, object]] = {}
        for key, value in self._dirty.items():
            by_prefix.setdefault(key[:2], {})[key] = value
        written = len(self._dirty)
        for prefix, entries in by_prefix.items():
            path = os.path.join(self._shard_dir(), prefix + ".json")
            try:
                with open(path) as handle:
                    current = json.load(handle)
            except (OSError, ValueError):
                current = {}
            current.update(entries)
            fd, tmp_path = tempfile.mkstemp(
                dir=self._shard_dir(), prefix=prefix + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(current, handle)
                os.replace(tmp_path, path)
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self._shards[prefix] = current
        self._dirty = {}
        return written

    def drop_memory(self) -> None:
        """Forget the loaded shards (not the dirty entries)."""
        self._shards = {}

    def __len__(self) -> int:
        total = len(self._dirty)
        for name in os.listdir(self._shard_dir()):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._shard_dir(), name)
            try:
                with open(path) as handle:
                    total += len(json.load(handle))
            except (OSError, ValueError):
                pass
        return total
