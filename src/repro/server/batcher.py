"""Micro-batching of theory goals across in-flight requests.

The kernel already batches the theory atoms of one conjunction frame
into a single :meth:`RegistrySession.entails_batch` call
(:mod:`repro.logic.kernel.dispatch`).  The daemon adds the layer above
it: when several request threads are in flight at once, goal
submissions that target the *same* session (same environment
fingerprint — e.g. the shared base environment every check starts
from) are coalesced by a leader/follower :class:`GoalBatcher` into one
``entails_batch`` crossing, and — just as importantly — each session
is only ever crossed by **one** thread at a time, because the
underlying solver contexts (incremental constraint sets, the shared
bit-blaster) are not thread-safe.

Soundness is inherited: ``entails_batch`` is answer-equivalent to
per-goal ``entails`` (they share the session memo), so merging can
change how many times a session is crossed, never what it answers.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

from ..logic.kernel.dispatch import TheoryDispatch
from ..tr.props import TheoryProp

__all__ = ["GoalBatcher", "BatchingTheoryDispatch"]


class _Batch:
    """One open merge window for one session."""

    __slots__ = ("session", "goals", "submissions", "answers", "error", "done")

    def __init__(self, session) -> None:
        self.session = session
        self.goals: List[TheoryProp] = []
        self.submissions = 0
        self.answers: List[bool] = []
        self.error: BaseException | None = None
        self.done = threading.Event()


class GoalBatcher:
    """Coalesces concurrent goal submissions per theory session.

    The first thread to submit goals for a session becomes the batch
    *leader*: it holds the window open for ``window`` seconds, merges
    every submission that joined, makes the single ``entails_batch``
    call, and hands each submitter its slice of the answers.  The
    window only opens once a *second* submitter thread has ever been
    seen — a lone submitter (the daemon's serialized engine lane, a
    forked pool worker) has no peers to wait for, so it always flushes
    immediately.  Dispatch per session is additionally serialized
    through striped locks, so two back-to-back leaders can never cross
    one session concurrently.
    """

    _STRIPES = 16

    def __init__(self, window: float = 0.0) -> None:
        self.window = window
        self._lock = threading.Lock()
        self._pending: Dict[object, _Batch] = {}
        self._dispatch_locks = [threading.Lock() for _ in range(self._STRIPES)]
        #: thread idents ever seen submitting; a single-submitter
        #: batcher (the daemon's serialized engine lane, a forked pool
        #: worker) can have no peers to wait for, so the merge window
        #: only opens once a second submitter has appeared.
        self._submitter_idents: set = set()
        #: observability: submissions vs actual session crossings.
        self.submissions = 0
        self.dispatches = 0
        self.merged = 0

    def submit(self, key, session, goals: Sequence[TheoryProp]) -> List[bool]:
        """Decide ``goals`` against ``session``, merging with peers.

        ``key`` identifies the session (the environment fingerprint);
        all concurrent submissions under one key must carry the same
        session object.
        """
        goals = list(goals)
        with self._lock:
            self.submissions += 1
            if len(self._submitter_idents) < 64:
                self._submitter_idents.add(threading.get_ident())
            concurrent = len(self._submitter_idents) > 1
            batch = self._pending.get(key)
            leader = batch is None
            if leader:
                batch = _Batch(session)
                self._pending[key] = batch
            start = len(batch.goals)
            batch.goals.extend(goals)
            batch.submissions += 1
        if not leader:
            batch.done.wait()
            if batch.error is not None:
                raise RuntimeError("theory dispatch failed for merged batch") from batch.error
            return batch.answers[start : start + len(goals)]
        if self.window > 0.0 and concurrent:
            time.sleep(self.window)  # let in-flight peers join the batch
        with self._lock:
            del self._pending[key]  # late submitters start a new batch
            merged = list(batch.goals)
            self.dispatches += 1
            self.merged += batch.submissions - 1
        stripe = self._dispatch_locks[hash(key) % self._STRIPES]
        try:
            with stripe:  # one thread per session, ever
                batch.answers = session.entails_batch(merged)
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            batch.done.set()  # followers must wake even on an error
        return batch.answers[start : start + len(goals)]


class BatchingTheoryDispatch(TheoryDispatch):
    """A drop-in :class:`TheoryDispatch` that routes via the batcher.

    The daemon installs one on its warm engine (``logic.dispatch = …``);
    every theory consultation the kernel makes then flows through
    :meth:`GoalBatcher.submit`, which both coalesces concurrent
    traffic and guarantees single-threaded session crossings.
    """

    __slots__ = ("batcher",)

    def __init__(self, logic, batcher: GoalBatcher) -> None:
        super().__init__(logic)
        self.batcher = batcher

    def decide(self, env, goals):
        stats = self.logic.stats
        stats.theory_goals += len(goals)
        stats.theory_batches += 1
        hits = stats.rule_hits
        hits["dispatch.batch"] = hits.get("dispatch.batch", 0) + 1
        goals = list(goals)
        session = self.logic.theory_session(env)
        answers = self.batcher.submit(env.fingerprint(), session, goals)
        return dict(zip(goals, answers))

    def decide_one(self, env, goal):
        stats = self.logic.stats
        stats.theory_goals += 1
        hits = stats.rule_hits
        hits["dispatch.single"] = hits.get("dispatch.single", 0) + 1
        session = self.logic.theory_session(env)
        return self.batcher.submit(env.fingerprint(), session, [goal])[0]
