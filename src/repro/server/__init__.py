"""The persistent checking service.

Every other entry point in this repository is a one-shot process: it
pays interpreter start-up, prim-environment construction and engine
cold-start per invocation, then throws the warm engine away.  This
package is the long-lived alternative — the shape the incremental
engine (PR 1), ``entails_batch`` dispatch and the persistent proof
cache (PR 3) were built for:

* :class:`~repro.server.daemon.CheckingServer` — a daemon (CLI:
  ``repro serve``) that keeps **one** warm process-shared
  :class:`~repro.logic.prove.Logic` resident across requests, gives
  each connection an isolated session (module store + REPL scope +
  epoch-guarded :class:`~repro.logic.prove.SessionLease`), coalesces
  in-flight work through a :class:`~repro.server.batcher.GoalBatcher`,
  and fans heavy multi-file checks out to a resident
  :class:`~repro.batch.pipeline.WorkerPool`.
* :class:`~repro.server.client.Client` — a small blocking client
  (CLI: ``repro client``) speaking the newline-delimited JSON protocol
  of :mod:`repro.server.protocol` (see ``docs/SERVER.md`` for the wire
  spec).

Verdicts are identical to one-shot ``repro check`` by construction:
the daemon runs the same checker on the same engine, and the engine's
caches are content-addressed — ``tests/test_server.py`` pins verdict
equality over a generated corpus slice and session isolation between
concurrent connections.
"""

from .client import Client, ServerError
from .daemon import CheckingServer, ServerConfig
from .protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "CheckingServer",
    "Client",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerConfig",
    "ServerError",
]
