"""The checking daemon: one warm engine serving many connections.

Threading model — chosen for the engine we actually have, not the one
we wish we had:

* **Connection threads** do I/O only: they frame requests off the
  socket, validate them, enqueue :class:`_Job`\\ s and write responses
  back.  They never touch the engine.
* **One engine lane** owns the warm :class:`~repro.logic.prove.Logic`.
  The engine's solver contexts and fresh-name stream are not
  thread-safe, so engine work is serialized — which costs nothing on
  CPython (checking is pure-Python CPU work under the GIL) and buys a
  strong property: per-request ``EngineStats`` deltas are exact.
* **Group draining.**  The engine lane drains every queued job before
  working (up to ``group_max``), so in-flight requests are visible as
  a *batch*: identical ``check_text`` sources are checked once per
  group, and the ``check`` jobs of a group are merged into a single
  :class:`~repro.batch.pipeline.WorkerPool` dispatch — one resident
  fork-pool crossing instead of one per request.
* **Theory-goal coalescing.**  The engine's dispatch stage is replaced
  by a :class:`~repro.server.batcher.BatchingTheoryDispatch`, so every
  theory consultation flows through the
  :class:`~repro.server.batcher.GoalBatcher` — which serializes each
  session crossing and merges concurrent same-session submissions into
  one ``entails_batch`` call (load-bearing the moment anything beyond
  the single engine lane — e.g. a caller embedding the server
  in-process — drives the shared dispatch concurrently).

Isolation and resets are session concerns — see
:mod:`repro.server.session`; the wire protocol is
:mod:`repro.server.protocol`; the spec with examples is
``docs/SERVER.md``.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..batch.cache import ProofCache
from ..batch.pipeline import WorkerPool, check_many, logic_config_key
from ..checker.check import Checker
from ..logic.prove import Logic
from .batcher import BatchingTheoryDispatch, GoalBatcher
from .protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    error_response,
    validate_request,
)
from .session import ServerSession

__all__ = ["ServerConfig", "CheckingServer"]


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can configure."""

    #: unix-domain socket path; mutually exclusive with host/port
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral); ignored when ``socket_path`` is set
    port: int = 0
    #: worker processes for fanned-out multi-file ``check`` requests;
    #: 1 keeps everything on the engine lane
    jobs: int = 1
    #: persistent proof-cache directory (see :mod:`repro.batch.cache`)
    cache_dir: Optional[str] = None
    #: max in-flight jobs drained into one engine group
    group_max: int = 16
    #: GoalBatcher merge window in seconds (0 = flush immediately)
    batch_window: float = 0.0


class _Job:
    """One validated request waiting for the engine lane."""

    __slots__ = ("request", "session", "response", "done")

    def __init__(self, request: Dict[str, Any], session: ServerSession) -> None:
        self.request = request
        self.session = session
        self.response: Dict[str, Any] = {}
        self.done = threading.Event()


class CheckingServer:
    """A long-running checking service over one warm engine.

    Lifecycle: :meth:`start` binds the socket and spins up the engine
    and accept threads (returns the bound address);
    :meth:`serve_forever` additionally blocks until a ``shutdown``
    request or :meth:`stop`.  Safe to run in-process for tests — every
    thread is a daemon thread and :meth:`stop` is idempotent.
    """

    def __init__(self, config: ServerConfig, logic: Optional[Logic] = None) -> None:
        self.config = config
        #: the warm engine; default is the process-wide shared one so
        #: pool workers fork with every cache the daemon has built up.
        self.logic = logic if logic is not None else Checker().logic
        self.batcher = GoalBatcher(window=config.batch_window)
        #: restored by stop() — the engine may outlive the server
        #: (it is the process-wide shared one by default).
        self._original_dispatch = self.logic.dispatch
        self.logic.dispatch = BatchingTheoryDispatch(self.logic, self.batcher)
        self.pool: Optional[WorkerPool] = (
            WorkerPool(config.jobs, config.cache_dir) if config.jobs > 1 else None
        )
        self._persist: Optional[ProofCache] = None
        if config.cache_dir is not None:
            self._persist = ProofCache(config.cache_dir, logic_config_key(self.logic))
            self.logic.attach_persistent_cache(self._persist)
        self._queue: "queue.Queue[_Job]" = queue.Queue()
        self._sessions: Dict[str, ServerSession] = {}
        self._sessions_lock = threading.Lock()
        self._conn_threads: set = set()
        self._streams: List[MessageStream] = []
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._shutdown_requested = threading.Event()
        self._started = False
        self._session_counter = 0
        self._started_at = 0.0
        self.requests_total = 0
        self.groups_total = 0
        self.address: Optional[Tuple[str, Any]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind, start the engine/accept threads; returns the address.

        The address is ``("unix", path)`` or ``("tcp", (host, port))``
        with the actually-bound port (useful with ``port=0``).
        """
        if self._started:
            return self.address
        self._started = True
        self._started_at = time.monotonic()
        if self.config.socket_path is not None:
            path = self.config.socket_path
            if os.path.exists(path):
                os.unlink(path)  # a stale socket from a dead daemon
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.address = ("unix", path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.address = ("tcp", listener.getsockname())
        listener.listen(64)
        listener.settimeout(0.2)  # so the accept loop can observe stop
        self._listener = listener
        for target, name in (
            (self._engine_loop, "repro-server-engine"),
            (self._accept_loop, "repro-server-accept"),
            (self._shutdown_watcher, "repro-server-shutdown"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def serve_forever(self) -> None:
        self.start()
        self._stop.wait()

    def stop(self) -> None:
        """Shut everything down (idempotent)."""
        if self._stop.is_set():
            return
        self._stop.set()
        # wake the shutdown watcher (it blocks on this event forever);
        # with _stop already set it exits instead of re-entering stop().
        # Without the wake, every stop() paid the full join timeout
        # below waiting on a thread that could never observe it.
        self._shutdown_requested.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for stream in list(self._streams):
            stream.close()
        self._fail_queued_jobs("server is stopping")
        current = threading.current_thread()
        for thread in list(self._threads) + list(self._conn_threads):
            if thread is not current:
                thread.join(timeout=5.0)
        if self.pool is not None:
            self.pool.close()
        self.logic.dispatch = self._original_dispatch
        if self._persist is not None:
            self.logic.detach_persistent_cache()
            self._persist.flush()
            self._persist = None
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def _shutdown_watcher(self) -> None:
        self._shutdown_requested.wait()
        if not self._stop.is_set():
            time.sleep(0.05)  # let the shutdown response reach its client
            self.stop()

    # ------------------------------------------------------------------
    # connection side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            self._conn_threads.add(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        stream = MessageStream(conn)
        self._streams.append(stream)
        with self._sessions_lock:
            self._session_counter += 1
            session = ServerSession(f"s{self._session_counter}", self.logic)
            self._sessions[session.id] = session
        try:
            while not self._stop.is_set():
                try:
                    message = stream.receive()
                except ProtocolError as exc:
                    # framing is broken; report and drop the connection
                    try:
                        stream.send(error_response(None, "protocol-error", str(exc)))
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                try:
                    request = validate_request(message)
                except ProtocolError as exc:
                    stream.send(error_response(message, "bad-request", str(exc)))
                    continue
                job = _Job(request, session)
                self._queue.put(job)
                while not job.done.wait(timeout=0.5):
                    if self._stop.is_set():
                        # the engine lane is gone; don't wait forever
                        job.response = error_response(
                            request, "internal-error", "server is stopping"
                        )
                        break
                stream.send(job.response)
                if request["op"] == "shutdown":
                    return
        except OSError:
            return  # peer vanished mid-conversation
        finally:
            stream.close()
            if stream in self._streams:
                self._streams.remove(stream)
            with self._sessions_lock:
                self._sessions.pop(session.id, None)
            self._conn_threads.discard(threading.current_thread())

    # ------------------------------------------------------------------
    # engine lane
    # ------------------------------------------------------------------
    def _fail_queued_jobs(self, reason: str) -> None:
        """Answer every still-queued job so no connection waits forever."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            job.response = error_response(job.request, "internal-error", reason)
            job.done.set()

    def _engine_loop(self) -> None:
        try:
            self._engine_loop_inner()
        finally:
            # jobs enqueued around the moment of shutdown still get a
            # response (stop() sweeps once more for the enqueue race)
            self._fail_queued_jobs("server is stopping")

    def _engine_loop_inner(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            group = [job]
            while len(group) < self.config.group_max:
                try:
                    group.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self.groups_total += 1
            self.requests_total += len(group)
            try:
                self._run_group(group)
            finally:
                for pending in group:
                    if not pending.done.is_set():
                        pending.response = error_response(
                            pending.request, "internal-error", "job was not run"
                        )
                        pending.done.set()

    def _run_group(self, group: List[_Job]) -> None:
        # Merge the group's multi-file check workload into one resident
        # pool dispatch; everything else runs on the warm engine lane.
        pooled: List[_Job] = []
        if self.pool is not None:
            pooled = [
                j for j in group if j.request["op"] == "check"
            ]
            if sum(len(j.request["paths"]) for j in pooled) < 2:
                pooled = []
        if pooled:
            self._run_pooled_checks(pooled)
        #: group-level memo — identical in-flight sources check once
        text_memo: Dict[str, Tuple[bool, str, Dict[str, str]]] = {}
        for job in group:
            if job in pooled:
                continue
            try:
                self._execute(job, text_memo)
            except Exception as exc:  # the lane must survive anything
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
            job.done.set()

    def _run_pooled_checks(self, jobs: List[_Job]) -> None:
        merged: List[str] = []
        slices: List[Tuple[_Job, int, int]] = []
        for job in jobs:
            paths = job.request["paths"]
            slices.append((job, len(merged), len(merged) + len(paths)))
            merged.extend(paths)
        try:
            report = self.pool.check_many(merged)
        except Exception as exc:
            for job, _, _ in slices:
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
                job.done.set()
            return
        stats = report.stats.as_dict()
        for job, start, end in slices:
            verdicts = report.verdicts[start:end]
            job.response = self._respond(
                job.request,
                ok=all(v.ok for v in verdicts),
                verdicts=[
                    {
                        "path": v.path,
                        "ok": v.ok,
                        "error": v.error,
                        "types": v.types,
                        "from_cache": v.from_cache,
                    }
                    for v in verdicts
                ],
                stats=stats,
                batched_requests=len(jobs),
                pooled=True,
            )
            job.done.set()

    def _execute(self, job: _Job, text_memo) -> None:
        request = job.request
        op = request["op"]
        session = job.session
        baseline = self.logic.stats.copy()
        if op == "check":
            result = self._check_paths(request["paths"])
        elif op == "check_text":
            memo_key = request["text"]
            precomputed = text_memo.get(memo_key)
            result = session.check_text(
                request["name"], request["text"], precomputed
            )
            if precomputed is not None:
                result["deduplicated"] = True
            elif not result["cached"]:
                state = session._modules[request["name"]]
                text_memo[memo_key] = (state.ok, state.error, state.types)
        elif op == "eval":
            result = session.eval(request["expr"])
        elif op == "stats":
            result = self._stats(session)
        elif op == "reset":
            self.logic.reset_caches()
            with self._sessions_lock:
                live_sessions = list(self._sessions.values())
            for live in live_sessions:  # engine lane: safe to touch sessions
                live.guard_epoch()
            if self.pool is not None:
                # resident workers hold pre-reset engine caches; tear
                # them down so the next pooled check re-forks cold
                # from the freshly-reset parent.
                self.pool.close()
            result = {"ok": True, "epoch": self.logic.epoch}
        elif op == "shutdown":
            self._shutdown_requested.set()
            result = {"ok": True, "stopping": True}
        else:  # unreachable: validate_request gates ops
            result = error_response(request, "bad-request", f"unknown op {op!r}")
        if op in ("check", "check_text", "eval"):
            result["stats"] = self.logic.stats.delta_from(baseline).as_dict()
        job.response = self._respond(request, **result)

    def _check_paths(self, paths: List[str]) -> Dict[str, Any]:
        report = check_many(paths, jobs=1, logic=self.logic)
        return {
            "ok": report.ok,
            "verdicts": [
                {
                    "path": v.path,
                    "ok": v.ok,
                    "error": v.error,
                    "types": v.types,
                    "from_cache": v.from_cache,
                }
                for v in report.verdicts
            ],
            "pooled": False,
        }

    def _stats(self, session: ServerSession) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = len(self._sessions)
        pool_info: Dict[str, Any] = {"jobs": self.config.jobs, "resident": False}
        if self.pool is not None:
            pool_info = {
                "jobs": self.pool.jobs,
                "resident": self.pool.alive,
                "batches": self.pool.batches,
            }
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "epoch": self.logic.epoch,
            "engine": self.logic.stats.as_dict(),
            "server": {
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "requests_total": self.requests_total,
                "groups_total": self.groups_total,
                "sessions": sessions,
                "pool": pool_info,
                "goal_batcher": {
                    "submissions": self.batcher.submissions,
                    "dispatches": self.batcher.dispatches,
                    "merged": self.batcher.merged,
                },
            },
            "session": session.describe(),
        }

    @staticmethod
    def _respond(request: Dict[str, Any], **fields) -> Dict[str, Any]:
        response: Dict[str, Any] = {"op": request["op"]}
        if "id" in request:
            response["id"] = request["id"]
        response.update(fields)
        response.setdefault("ok", True)
        return response
