"""The checking daemon: one warm engine serving many connections.

Threading model — chosen for the engine we actually have, not the one
we wish we had:

* **Connection threads** do I/O only: they frame requests off the
  socket, validate them, enqueue :class:`_Job`\\ s and write responses
  back.  They never touch the engine.  ``ping`` is answered here
  directly — a health probe must work even when the engine lane is
  wedged.
* **One engine lane** owns the warm :class:`~repro.logic.prove.Logic`.
  The engine's solver contexts and fresh-name stream are not
  thread-safe, so engine work is serialized — which costs nothing on
  CPython (checking is pure-Python CPU work under the GIL) and buys a
  strong property: per-request ``EngineStats`` deltas are exact.
* **Group draining.**  The engine lane drains every queued job before
  working (up to ``group_max``), so in-flight requests are visible as
  a *batch*: identical ``check_text`` sources are checked once per
  group, and the ``check`` jobs of a group are merged into a single
  :class:`~repro.batch.pipeline.WorkerPool` dispatch — one resident
  fork-pool crossing instead of one per request.
* **Theory-goal coalescing.**  The engine's dispatch stage is replaced
  by a :class:`~repro.server.batcher.BatchingTheoryDispatch`, so every
  theory consultation flows through the
  :class:`~repro.server.batcher.GoalBatcher` — which serializes each
  session crossing and merges concurrent same-session submissions into
  one ``entails_batch`` call.

Robustness layer (deadlines, backpressure, supervision):

* Every engine-lane request carries a :class:`~repro.budget.Budget`
  (deadline from the request's ``deadline_ms`` or the configured
  default; no deadline means cancel-only).  The budget is activated
  around the engine call and ticked inside the kernel and solver hot
  loops, so an expired request aborts mid-proof with a structured,
  retryable ``deadline_exceeded`` error while the lane stays warm —
  the abort unwinds through push/pop brackets and never poisons a
  memo.  Budgets do not cross the fork boundary: pooled multi-file
  ``check`` dispatches honour the deadline only *before* dispatch
  (expired jobs are answered without work) and rely on the pool's own
  PID watchdog while running.
* The job queue is **bounded** (``max_queue_depth``); a full queue
  rejects immediately with retryable ``overloaded`` instead of letting
  latency grow without bound.
* A **watchdog** thread cancels any job running past ``hang_seconds``
  via its budget, and — should the engine thread ever die — fails the
  in-flight job, rebuilds the dispatch plumbing and respawns the lane
  over the still-warm engine, so one impossible request cannot take
  the daemon down.
* ``stop()`` wakes every blocked connection wait immediately: queued
  jobs are failed, in-flight jobs are failed, and connection threads
  block on a plain ``Event.wait()`` with no polling timeout.

Isolation and resets are session concerns — see
:mod:`repro.server.session`; the wire protocol is
:mod:`repro.server.protocol`; the spec with examples is
``docs/SERVER.md``.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..batch.cache import ProofCache
from ..batch.pipeline import WorkerPool, check_many, logic_config_key
from ..budget import Budget, CancelledError
from ..checker.check import Checker
from ..logic.prove import Logic
from .batcher import BatchingTheoryDispatch, GoalBatcher
from .protocol import (
    DEADLINE_OPS,
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    error_response,
    validate_request,
)
from .session import ServerSession

__all__ = ["ServerConfig", "CheckingServer"]


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can configure."""

    #: unix-domain socket path; mutually exclusive with host/port
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral); ignored when ``socket_path`` is set
    port: int = 0
    #: worker processes for fanned-out multi-file ``check`` requests;
    #: 1 keeps everything on the engine lane
    jobs: int = 1
    #: persistent proof-cache directory (see :mod:`repro.batch.cache`)
    cache_dir: Optional[str] = None
    #: max in-flight jobs drained into one engine group
    group_max: int = 16
    #: GoalBatcher merge window in seconds (0 = flush immediately)
    batch_window: float = 0.0
    #: bounded job queue; a full queue sheds load with a retryable
    #: ``overloaded`` error instead of queueing unboundedly (0 = unbounded)
    max_queue_depth: int = 64
    #: deadline applied to engine requests that carry none (ms; None =
    #: no default — such requests run until the watchdog objects)
    default_deadline_ms: Optional[float] = None
    #: watchdog: cancel any job running longer than this (seconds;
    #: 0 disables hang detection)
    hang_seconds: float = 30.0
    #: watchdog poll interval (seconds)
    watchdog_interval: float = 0.05


class _Job:
    """One validated request waiting for the engine lane."""

    __slots__ = ("request", "session", "response", "done", "budget", "started_at")

    def __init__(
        self,
        request: Dict[str, Any],
        session: ServerSession,
        budget: Optional[Budget] = None,
    ) -> None:
        self.request = request
        self.session = session
        self.response: Dict[str, Any] = {}
        self.done = threading.Event()
        #: deadline / cancellation token (None for stats/shutdown)
        self.budget = budget
        #: monotonic time the engine lane picked the job up (0 = queued)
        self.started_at = 0.0


class CheckingServer:
    """A long-running checking service over one warm engine.

    Lifecycle: :meth:`start` binds the socket and spins up the engine
    and accept threads (returns the bound address);
    :meth:`serve_forever` additionally blocks until a ``shutdown``
    request or :meth:`stop`.  Safe to run in-process for tests — every
    thread is a daemon thread and :meth:`stop` is idempotent.
    """

    def __init__(self, config: ServerConfig, logic: Optional[Logic] = None) -> None:
        self.config = config
        #: the warm engine; default is the process-wide shared one so
        #: pool workers fork with every cache the daemon has built up.
        self.logic = logic if logic is not None else Checker().logic
        self.batcher = GoalBatcher(window=config.batch_window)
        #: restored by stop() — the engine may outlive the server
        #: (it is the process-wide shared one by default).
        self._original_dispatch = self.logic.dispatch
        self.logic.dispatch = BatchingTheoryDispatch(self.logic, self.batcher)
        self.pool: Optional[WorkerPool] = (
            WorkerPool(config.jobs, config.cache_dir) if config.jobs > 1 else None
        )
        self._persist: Optional[ProofCache] = None
        if config.cache_dir is not None:
            self._persist = ProofCache(config.cache_dir, logic_config_key(self.logic))
            self.logic.attach_persistent_cache(self._persist)
        depth = max(0, config.max_queue_depth)
        self._queue: "queue.Queue[_Job]" = queue.Queue(maxsize=depth)
        self._sessions: Dict[str, ServerSession] = {}
        self._sessions_lock = threading.Lock()
        self._conn_threads: set = set()
        self._streams: List[MessageStream] = []
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._engine_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._shutdown_requested = threading.Event()
        self._started = False
        self._session_counter = 0
        self._started_at = 0.0
        self.requests_total = 0
        self.groups_total = 0
        #: robustness counters, surfaced by the ``stats`` op
        self.robustness: Dict[str, int] = {
            "deadline_exceeded": 0,
            "cancelled": 0,
            "shed_overloaded": 0,
            "watchdog_cancels": 0,
            "lane_restarts": 0,
            "pings": 0,
        }
        self._robust_lock = threading.Lock()
        #: jobs whose connection thread is blocked on ``done`` — stop()
        #: fails and wakes every one of them so no wait outlives the server
        self._inflight: Set[_Job] = set()
        self._inflight_lock = threading.Lock()
        #: the job the engine lane is currently running (watchdog input)
        self._current_job: Optional[_Job] = None
        self._lane_failure: Optional[str] = None
        self.address: Optional[Tuple[str, Any]] = None

    def _count(self, key: str, amount: int = 1) -> None:
        with self._robust_lock:
            self.robustness[key] = self.robustness.get(key, 0) + amount

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind, start the engine/accept threads; returns the address.

        The address is ``("unix", path)`` or ``("tcp", (host, port))``
        with the actually-bound port (useful with ``port=0``).
        """
        if self._started:
            return self.address
        self._started = True
        self._started_at = time.monotonic()
        if self.config.socket_path is not None:
            path = self.config.socket_path
            if os.path.exists(path):
                os.unlink(path)  # a stale socket from a dead daemon
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.address = ("unix", path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.address = ("tcp", listener.getsockname())
        listener.listen(64)
        listener.settimeout(0.2)  # so the accept loop can observe stop
        self._listener = listener
        self._spawn_engine_thread()
        for target, name in (
            (self._accept_loop, "repro-server-accept"),
            (self._shutdown_watcher, "repro-server-shutdown"),
            (self._watchdog_loop, "repro-server-watchdog"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def _spawn_engine_thread(self) -> None:
        thread = threading.Thread(
            target=self._engine_loop, name="repro-server-engine", daemon=True
        )
        self._engine_thread = thread
        self._threads.append(thread)
        thread.start()

    def serve_forever(self) -> None:
        self.start()
        self._stop.wait()

    def stop(self) -> None:
        """Shut everything down (idempotent)."""
        if self._stop.is_set():
            return
        self._stop.set()
        # wake the shutdown watcher (it blocks on this event forever);
        # with _stop already set it exits instead of re-entering stop().
        # Without the wake, every stop() paid the full join timeout
        # below waiting on a thread that could never observe it.
        self._shutdown_requested.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for stream in list(self._streams):
            stream.close()
        self._fail_queued_jobs("server is stopping")
        # wake every blocked connection wait *now*: connection threads
        # block on a plain Event.wait(), so without this they would
        # only notice the shutdown when their job completed.
        with self._inflight_lock:
            inflight = list(self._inflight)
        for job in inflight:
            if not job.done.is_set():
                if job.budget is not None:
                    job.budget.cancel("server is stopping")
                job.response = error_response(
                    job.request, "internal-error", "server is stopping"
                )
                job.done.set()
        current = threading.current_thread()
        for thread in list(self._threads) + list(self._conn_threads):
            if thread is not current:
                thread.join(timeout=5.0)
        if self.pool is not None:
            self.pool.close()
        self.logic.dispatch = self._original_dispatch
        if self._persist is not None:
            self.logic.detach_persistent_cache()
            self._persist.flush()
            self._persist = None
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def _shutdown_watcher(self) -> None:
        self._shutdown_requested.wait()
        if not self._stop.is_set():
            time.sleep(0.05)  # let the shutdown response reach its client
            self.stop()

    # ------------------------------------------------------------------
    # watchdog: hung-job cancellation + lane supervision
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        interval = max(0.01, self.config.watchdog_interval)
        hang = self.config.hang_seconds
        while not self._stop.wait(interval):
            job = self._current_job
            if job is not None and hang > 0:
                started = job.started_at
                budget = job.budget
                if (
                    started
                    and budget is not None
                    and not budget.cancelled
                    and time.monotonic() - started > hang
                ):
                    # cooperative abort: the lane notices at its next
                    # budget tick and answers with a retryable error.
                    budget.cancel(
                        "watchdog: job exceeded hang threshold "
                        f"({hang:g}s); aborted to keep the lane live"
                    )
                    self._count("watchdog_cancels")
            engine = self._engine_thread
            if engine is not None and not engine.is_alive() and not self._stop.is_set():
                self._restart_lane()

    def _restart_lane(self) -> None:
        """The engine thread died: fail its job, respawn over the warm engine.

        The engine's memo tables only ever hold complete entries
        (verdicts are cached after the kernel returns), so the warm
        caches are safe to keep; the dispatch plumbing is rebuilt in
        case the old lane died holding the goal batcher's lock.
        """
        self._count("lane_restarts")
        job = self._current_job
        self._current_job = None
        if job is not None and not job.done.is_set():
            job.response = error_response(
                job.request,
                "internal-error",
                f"engine lane died ({self._lane_failure or 'unknown'}); "
                "lane restarted",
            )
            job.done.set()
        self._lane_failure = None
        self.batcher = GoalBatcher(window=self.config.batch_window)
        self.logic.dispatch = BatchingTheoryDispatch(self.logic, self.batcher)
        self._spawn_engine_thread()

    # ------------------------------------------------------------------
    # connection side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            self._conn_threads.add(thread)
            thread.start()

    def _job_budget(self, request: Dict[str, Any]) -> Optional[Budget]:
        """The request's budget: its deadline, or the default, or
        cancel-only (the watchdog needs a token even without a deadline)."""
        op = request["op"]
        if op not in DEADLINE_OPS:
            return None
        deadline_ms = request.get("deadline_ms", self.config.default_deadline_ms)
        return Budget(deadline_ms)

    def _ping_response(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._count("pings")
        engine = self._engine_thread
        return self._respond(
            request,
            ok=True,
            protocol=PROTOCOL_VERSION,
            uptime_seconds=round(time.monotonic() - self._started_at, 3),
            queue_depth=self._queue.qsize(),
            engine_alive=bool(engine is not None and engine.is_alive()),
        )

    def _handle_connection(self, conn: socket.socket) -> None:
        stream = MessageStream(conn)
        self._streams.append(stream)
        with self._sessions_lock:
            self._session_counter += 1
            session = ServerSession(f"s{self._session_counter}", self.logic)
            self._sessions[session.id] = session
        try:
            while not self._stop.is_set():
                try:
                    message = stream.receive()
                except ProtocolError as exc:
                    # framing is broken; report and drop the connection
                    try:
                        stream.send(error_response(None, "protocol-error", str(exc)))
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                try:
                    request = validate_request(message)
                except ProtocolError as exc:
                    stream.send(error_response(message, "bad-request", str(exc)))
                    continue
                if request["op"] == "ping":
                    # answered right here: the health probe must work
                    # even when the engine lane is wedged.
                    stream.send(self._ping_response(request))
                    continue
                job = _Job(request, session, self._job_budget(request))
                with self._inflight_lock:
                    self._inflight.add(job)
                try:
                    if self._stop.is_set():
                        job.response = error_response(
                            request, "internal-error", "server is stopping"
                        )
                    else:
                        try:
                            self._queue.put_nowait(job)
                        except queue.Full:
                            # load shedding: reject now, retryably,
                            # instead of queueing unboundedly
                            self._count("shed_overloaded")
                            job.response = error_response(
                                request,
                                "overloaded",
                                "job queue is full "
                                f"(max_queue_depth={self.config.max_queue_depth}); "
                                "retry with backoff",
                                retryable=True,
                            )
                        else:
                            # no polling: stop() fails + wakes in-flight
                            # jobs, so this wait cannot outlive the server
                            job.done.wait()
                finally:
                    with self._inflight_lock:
                        self._inflight.discard(job)
                stream.send(job.response)
                if request["op"] == "shutdown":
                    return
        except OSError:
            return  # peer vanished mid-conversation
        finally:
            stream.close()
            if stream in self._streams:
                self._streams.remove(stream)
            with self._sessions_lock:
                self._sessions.pop(session.id, None)
            self._conn_threads.discard(threading.current_thread())

    # ------------------------------------------------------------------
    # engine lane
    # ------------------------------------------------------------------
    def _fail_queued_jobs(self, reason: str) -> None:
        """Answer every still-queued job so no connection waits forever."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            job.response = error_response(job.request, "internal-error", reason)
            job.done.set()

    def _engine_loop(self) -> None:
        try:
            self._engine_loop_inner()
        except BaseException as exc:  # lane death: supervised, not fatal
            if not self._stop.is_set():
                # per-job exceptions are caught in _run_group, so this
                # is group bookkeeping dying; record why and let the
                # watchdog respawn a fresh lane over the warm engine.
                self._lane_failure = f"{type(exc).__name__}: {exc}"
                return
            raise
        finally:
            if self._stop.is_set():
                # jobs enqueued around the moment of shutdown still get
                # a response (stop() sweeps once more for the race)
                self._fail_queued_jobs("server is stopping")

    def _engine_loop_inner(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            group = [job]
            while len(group) < self.config.group_max:
                try:
                    group.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self.groups_total += 1
            self.requests_total += len(group)
            try:
                self._run_group(group)
            finally:
                self._current_job = None
                # only reachable when the group was abandoned: the lane
                # is dying (watchdog respawns it) or the server stopping
                for pending in group:
                    if not pending.done.is_set():
                        pending.response = error_response(
                            pending.request,
                            "internal-error",
                            "engine lane died mid-group; lane restarting",
                            retryable=True,
                        )
                        pending.done.set()

    def _begin_job(self, job: _Job) -> None:
        job.started_at = time.monotonic()
        self._current_job = job

    def _cancelled_response(
        self, request: Dict[str, Any], exc: CancelledError
    ) -> Dict[str, Any]:
        self._count(
            "deadline_exceeded" if exc.code == "deadline_exceeded" else "cancelled"
        )
        return error_response(request, exc.code, str(exc), retryable=True)

    def _run_group(self, group: List[_Job]) -> None:
        # Merge the group's multi-file check workload into one resident
        # pool dispatch; everything else runs on the warm engine lane.
        pooled: List[_Job] = []
        if self.pool is not None:
            pooled = [
                j for j in group if j.request["op"] == "check"
            ]
            if sum(len(j.request["paths"]) for j in pooled) < 2:
                pooled = []
        if pooled:
            # budgets do not cross the fork boundary, so the deadline is
            # enforced only before dispatch: jobs already expired while
            # queued are answered without any pool work.
            live: List[_Job] = []
            for job in pooled:
                if job.budget is not None:
                    try:
                        job.budget.check()
                    except CancelledError as exc:
                        job.response = self._cancelled_response(job.request, exc)
                        job.done.set()
                        continue
                live.append(job)
            if live:
                self._run_pooled_checks(live)
        #: group-level memo — identical in-flight sources check once
        text_memo: Dict[str, Tuple[bool, str, Dict[str, str]]] = {}
        for job in group:
            if job in pooled:
                continue
            self._begin_job(job)
            try:
                self._execute(job, text_memo)
            except CancelledError as exc:
                # belt-and-braces: _execute turns cancellations into
                # responses itself; a late tick (e.g. inside the stats
                # delta) must still leave the lane alive.
                job.response = self._cancelled_response(job.request, exc)
            except Exception as exc:  # the lane must survive anything
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
            finally:
                self._current_job = None
            job.done.set()

    def _run_pooled_checks(self, jobs: List[_Job]) -> None:
        merged: List[str] = []
        slices: List[Tuple[_Job, int, int]] = []
        for job in jobs:
            paths = job.request["paths"]
            slices.append((job, len(merged), len(merged) + len(paths)))
            merged.extend(paths)
        try:
            report = self.pool.check_many(merged)
        except Exception as exc:
            for job, _, _ in slices:
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
                job.done.set()
            return
        stats = report.stats.as_dict()
        for job, start, end in slices:
            verdicts = report.verdicts[start:end]
            job.response = self._respond(
                job.request,
                ok=all(v.ok for v in verdicts),
                verdicts=[
                    {
                        "path": v.path,
                        "ok": v.ok,
                        "error": v.error,
                        "types": v.types,
                        "from_cache": v.from_cache,
                    }
                    for v in verdicts
                ],
                stats=stats,
                batched_requests=len(jobs),
                pooled=True,
            )
            job.done.set()

    def _execute(self, job: _Job, text_memo) -> None:
        request = job.request
        op = request["op"]
        session = job.session
        budget = job.budget
        if budget is not None:
            try:
                # expired while queued: answer without touching the engine
                budget.check()
            except CancelledError as exc:
                job.response = self._cancelled_response(request, exc)
                return
        baseline = self.logic.stats.copy()
        try:
            with self.logic.budgeted(budget):
                result = self._execute_op(op, request, session, text_memo)
        except CancelledError as exc:
            # mid-proof abort: the budget raise unwound through
            # exception-safe paths only (push/pop brackets, cache
            # writes that happen after success), so the lane stays
            # warm; report retryably and keep serving.
            response = self._cancelled_response(request, exc)
            response["stats"] = self.logic.stats.delta_from(baseline).as_dict()
            job.response = response
            return
        if op in ("check", "check_text", "eval"):
            result["stats"] = self.logic.stats.delta_from(baseline).as_dict()
        job.response = self._respond(request, **result)

    def _execute_op(
        self, op: str, request: Dict[str, Any], session: ServerSession, text_memo
    ) -> Dict[str, Any]:
        if op == "check":
            return self._check_paths(request["paths"])
        if op == "check_text":
            memo_key = request["text"]
            precomputed = text_memo.get(memo_key)
            result = session.check_text(
                request["name"], request["text"], precomputed
            )
            if precomputed is not None:
                result["deduplicated"] = True
            elif not result["cached"]:
                state = session._modules[request["name"]]
                text_memo[memo_key] = (state.ok, state.error, state.types)
            return result
        if op == "eval":
            return session.eval(request["expr"])
        if op == "stats":
            return self._stats(session)
        if op == "reset":
            self.logic.reset_caches()
            with self._sessions_lock:
                live_sessions = list(self._sessions.values())
            for live in live_sessions:  # engine lane: safe to touch sessions
                live.guard_epoch()
            if self.pool is not None:
                # resident workers hold pre-reset engine caches; tear
                # them down so the next pooled check re-forks cold
                # from the freshly-reset parent.
                self.pool.close()
            return {"ok": True, "epoch": self.logic.epoch}
        if op == "shutdown":
            self._shutdown_requested.set()
            return {"ok": True, "stopping": True}
        # unreachable: validate_request gates ops
        return error_response(request, "bad-request", f"unknown op {op!r}")

    def _check_paths(self, paths: List[str]) -> Dict[str, Any]:
        report = check_many(paths, jobs=1, logic=self.logic)
        return {
            "ok": report.ok,
            "verdicts": [
                {
                    "path": v.path,
                    "ok": v.ok,
                    "error": v.error,
                    "types": v.types,
                    "from_cache": v.from_cache,
                }
                for v in report.verdicts
            ],
            "pooled": False,
        }

    def _stats(self, session: ServerSession) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = len(self._sessions)
        pool_info: Dict[str, Any] = {"jobs": self.config.jobs, "resident": False}
        if self.pool is not None:
            pool_info = {
                "jobs": self.pool.jobs,
                "resident": self.pool.alive,
                "batches": self.pool.batches,
            }
        with self._robust_lock:
            robustness = dict(self.robustness)
        robustness["cache_shards_skipped"] = (
            self._persist.shards_skipped if self._persist is not None else 0
        )
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "epoch": self.logic.epoch,
            "engine": self.logic.stats.as_dict(),
            "server": {
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "requests_total": self.requests_total,
                "groups_total": self.groups_total,
                "sessions": sessions,
                "pool": pool_info,
                "goal_batcher": {
                    "submissions": self.batcher.submissions,
                    "dispatches": self.batcher.dispatches,
                    "merged": self.batcher.merged,
                },
                "queue": {
                    "depth": self._queue.qsize(),
                    "max_depth": self.config.max_queue_depth,
                },
                "robustness": robustness,
            },
            "session": session.describe(),
        }

    @staticmethod
    def _respond(request: Dict[str, Any], **fields) -> Dict[str, Any]:
        response: Dict[str, Any] = {"op": request["op"]}
        if "id" in request:
            response["id"] = request["id"]
        response.update(fields)
        response.setdefault("ok", True)
        return response
