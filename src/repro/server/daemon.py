"""The checking daemon: N warm engine lanes serving many connections.

Threading model — chosen for the engine we actually have, not the one
we wish we had:

* **Connection threads** do I/O only: they frame requests off the
  socket, validate them, enqueue :class:`_Job`\\ s on their routed
  lane and write responses back.  They never touch an engine.
  ``ping`` is answered here directly — a health probe must work even
  when every engine lane is wedged.
* **Engine lanes** (``--lanes N``) each own a warm
  :class:`~repro.logic.prove.Logic` — lane 0 the engine the server was
  built over, lanes 1..N-1 replicas of it
  (:meth:`~repro.logic.prove.Logic.replica`).  An engine's solver
  contexts are not thread-safe, so each lane's work is serialized on
  its own thread; the value layer underneath is shared safely (intern
  ids are allocated atomically, the fresh-name stream is thread-local)
  and every judgment cache is content-addressed, so lanes cannot
  observe each other through the engine — verdicts are bit-identical
  to a fresh single engine, pinned by the differential suite in
  ``tests/test_server_lanes.py``.
* **Routing is sticky with optional affinity.**  A connection is
  assigned a lane at its first queued request — by the request's
  ``affinity`` key (stable hash, so one logical session always lands
  on the same warm lane across reconnects) or to the least-loaded lane
  — and keeps it for the connection's lifetime, so session-scoped
  incremental re-checking keeps hitting the same warm module store and
  engine caches.
* **Group draining** (per lane) and **theory-goal coalescing** (a
  :class:`~repro.server.batcher.GoalBatcher` per lane) work exactly as
  in the single-lane daemon: identical in-flight ``check_text``
  sources are checked once per group and multi-file ``check`` jobs
  merge into one :class:`~repro.batch.pipeline.WorkerPool` dispatch.
  The fork pool is shared by all lanes and serialized by a lock.

Epoch coordination — how replicas converge after ``reset``:

* The server keeps one **epoch**; ``reset`` (from any lane) bumps it,
  immediately resets the serving lane's engine, records the new epoch
  in the persistent cache's ``meta.json`` (so epochs stay monotone
  across daemon restarts over one cache directory) and tears down the
  shared pool.  Every *other* lane syncs lazily: before running any
  job it compares its engine's epoch to the server's and calls
  ``reset_caches(epoch=...)`` if behind.  A request enqueued after the
  reset response was sent is therefore always served post-reset state
  — no lane can ever serve a stale proof — while requests already
  in flight on other lanes complete under the old epoch, which is the
  usual linearizability for operations that overlap the reset.

Robustness layer (deadlines, backpressure, supervision) — all per lane:

* Every lane request carries a :class:`~repro.budget.Budget`; expired
  requests abort mid-proof with a structured, retryable
  ``deadline_exceeded`` while the lane stays warm.
* Each lane's job queue is **bounded** (``max_queue_depth``); a full
  lane rejects immediately with retryable ``overloaded``.
* A single **watchdog** thread supervises every lane: it cancels any
  job running past ``hang_seconds`` via its budget, and respawns any
  lane whose thread died — over the same warm engine replica — so one
  impossible request can never take a lane (let alone the daemon)
  down.  Robustness counters are kept per lane and merged for the
  ``stats`` op.
* ``stop()`` wakes every blocked connection wait immediately: queued
  jobs are failed, in-flight jobs are failed, and connection threads
  block on a plain ``Event.wait()`` with no polling timeout.

Isolation and resets are session concerns — see
:mod:`repro.server.session`; the wire protocol is
:mod:`repro.server.protocol`; the spec with examples is
``docs/SERVER.md``.
"""

from __future__ import annotations

import hashlib
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..batch.cache import ProofCache
from ..batch.pipeline import WorkerPool, check_many, logic_config_key
from ..budget import Budget, CancelledError
from ..checker.check import Checker
from ..logic.prove import EngineStats, Logic
from .batcher import BatchingTheoryDispatch, GoalBatcher
from .protocol import (
    DEADLINE_OPS,
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    error_response,
    validate_request,
)
from .session import ServerSession

__all__ = ["ServerConfig", "CheckingServer"]


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can configure."""

    #: unix-domain socket path; mutually exclusive with host/port
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral); ignored when ``socket_path`` is set
    port: int = 0
    #: worker processes for fanned-out multi-file ``check`` requests;
    #: 1 keeps everything on the engine lanes
    jobs: int = 1
    #: warm engine lanes; each owns a Logic replica and a bounded queue
    lanes: int = 1
    #: persistent proof-cache directory (see :mod:`repro.batch.cache`)
    cache_dir: Optional[str] = None
    #: max in-flight jobs drained into one engine group
    group_max: int = 16
    #: GoalBatcher merge window in seconds (0 = flush immediately)
    batch_window: float = 0.0
    #: bounded per-lane job queue; a full lane sheds load with a
    #: retryable ``overloaded`` error instead of queueing unboundedly
    #: (0 = unbounded)
    max_queue_depth: int = 64
    #: deadline applied to engine requests that carry none (ms; None =
    #: no default — such requests run until the watchdog objects)
    default_deadline_ms: Optional[float] = None
    #: watchdog: cancel any job running longer than this (seconds;
    #: 0 disables hang detection)
    hang_seconds: float = 30.0
    #: watchdog poll interval (seconds)
    watchdog_interval: float = 0.05


class _Job:
    """One validated request waiting for an engine lane."""

    __slots__ = (
        "request", "session", "response", "done", "budget", "started_at",
        "poison",
    )

    def __init__(
        self,
        request: Dict[str, Any],
        session: Optional[ServerSession],
        budget: Optional[Budget] = None,
        poison: bool = False,
    ) -> None:
        self.request = request
        self.session = session
        self.response: Dict[str, Any] = {}
        self.done = threading.Event()
        #: deadline / cancellation token (None for stats/shutdown)
        self.budget = budget
        #: monotonic time the engine lane picked the job up (0 = queued)
        self.started_at = 0.0
        #: chaos hook: a poison job kills its lane thread outright
        #: (``poison_lane``), exercising the watchdog's respawn path
        self.poison = poison


class _LanePoison(BaseException):
    """Raised by a poison job; escapes the per-job ``except Exception``
    so the lane thread genuinely dies (threads cannot be SIGKILLed)."""


#: the per-lane robustness counters; merged (summed) for ``stats``
_LANE_COUNTERS = (
    "deadline_exceeded",
    "cancelled",
    "shed_overloaded",
    "watchdog_cancels",
    "lane_restarts",
)


def _snapshot_stats(stats: EngineStats) -> EngineStats:
    """Copy another lane's live counters without stopping that lane.

    A lane mutates its dict-valued counters while we iterate; CPython
    then raises ``RuntimeError`` from the iteration, never corrupts —
    so retry a few times and fall back to a zero snapshot rather than
    failing the ``stats`` request.
    """
    for _ in range(8):
        try:
            return stats.copy()
        except RuntimeError:
            continue
    return EngineStats()


class _Lane:
    """One warm engine lane: a Logic, a bounded queue, one thread."""

    def __init__(self, server: "CheckingServer", index: int, logic: Logic) -> None:
        self.server = server
        self.index = index
        self.logic = logic
        config = server.config
        self.batcher = GoalBatcher(window=config.batch_window)
        #: restored by server.stop() — lane 0's engine may outlive the
        #: server (it is the process-wide shared one by default).
        self._original_dispatch = logic.dispatch
        logic.dispatch = BatchingTheoryDispatch(logic, self.batcher)
        #: per-lane handle over the *shared* cache directory; flushes
        #: are atomic per shard with re-read-before-write, so
        #: concurrent lane flushes lose nothing but the race
        self.persist: Optional[ProofCache] = None
        if config.cache_dir is not None:
            self.persist = ProofCache(config.cache_dir, logic_config_key(logic))
            logic.attach_persistent_cache(self.persist)
        depth = max(0, config.max_queue_depth)
        self.queue: "queue.Queue[_Job]" = queue.Queue(maxsize=depth)
        self.thread: Optional[threading.Thread] = None
        #: the job this lane is currently running (watchdog input)
        self.current_job: Optional[_Job] = None
        self.failure: Optional[str] = None
        self.requests_total = 0
        self.groups_total = 0
        #: engine-busy wall clock, for the utilization figure in stats
        self.busy_seconds = 0.0
        #: live connections routed here (router input)
        self.connections = 0
        #: per-lane robustness counters (guarded by server._robust_lock)
        self.robustness: Dict[str, int] = {key: 0 for key in _LANE_COUNTERS}

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.thread is not None and self.thread.is_alive()

    def count(self, key: str, amount: int = 1) -> None:
        with self.server._robust_lock:
            self.robustness[key] = self.robustness.get(key, 0) + amount

    def spawn(self) -> None:
        thread = threading.Thread(
            target=self._engine_loop,
            name=f"repro-server-lane-{self.index}",
            daemon=True,
        )
        self.thread = thread
        self.server._threads.append(thread)
        thread.start()

    # ------------------------------------------------------------------
    # epoch coordination
    # ------------------------------------------------------------------
    def sync_epoch(self) -> None:
        """Catch this lane's engine up to the server epoch (lazy).

        Called before any job runs; a lane that missed resets while
        busy (or respawning) converges in one ``reset_caches`` call, so
        a job enqueued after a reset response can never see pre-reset
        engine state, whichever lane it lands on.
        """
        target = self.server._epoch
        if self.logic.epoch < target:
            self.logic.reset_caches(epoch=target)

    # ------------------------------------------------------------------
    # the engine loop
    # ------------------------------------------------------------------
    def _engine_loop(self) -> None:
        server = self.server
        try:
            self._engine_loop_inner()
        except BaseException as exc:  # lane death: supervised, not fatal
            if not server._stop.is_set():
                # per-job exceptions are caught in _run_group, so this
                # is group bookkeeping dying (or a poison job); record
                # why and let the watchdog respawn a fresh lane thread
                # over the warm engine.
                self.failure = f"{type(exc).__name__}: {exc}"
                return
            raise
        finally:
            if server._stop.is_set():
                # jobs enqueued around the moment of shutdown still get
                # a response (stop() sweeps once more for the race)
                server._fail_lane_queue(self, "server is stopping")

    def _engine_loop_inner(self) -> None:
        server = self.server
        config = server.config
        while not server._stop.is_set():
            try:
                job = self.queue.get(timeout=0.1)
            except queue.Empty:
                continue
            group = [job]
            while len(group) < config.group_max:
                try:
                    group.append(self.queue.get_nowait())
                except queue.Empty:
                    break
            self.sync_epoch()
            self.groups_total += 1
            self.requests_total += len(group)
            busy_from = time.monotonic()
            try:
                self._run_group(group)
            finally:
                self.current_job = None
                self.busy_seconds += time.monotonic() - busy_from
                # only reachable when the group was abandoned: the lane
                # is dying (watchdog respawns it) or the server stopping
                for pending in group:
                    if not pending.done.is_set():
                        pending.response = error_response(
                            pending.request,
                            "internal-error",
                            "engine lane died mid-group; lane restarting",
                            retryable=True,
                        )
                        pending.response.setdefault("lane", self.index)
                        pending.done.set()

    def _begin_job(self, job: _Job) -> None:
        job.started_at = time.monotonic()
        self.current_job = job

    def _cancelled_response(
        self, request: Dict[str, Any], exc: CancelledError
    ) -> Dict[str, Any]:
        self.count(
            "deadline_exceeded" if exc.code == "deadline_exceeded" else "cancelled"
        )
        return error_response(request, exc.code, str(exc), retryable=True)

    def _run_group(self, group: List[_Job]) -> None:
        for job in group:
            if job.poison:
                raise _LanePoison(f"lane {self.index} poisoned (chaos)")
        # Merge the group's multi-file check workload into one resident
        # pool dispatch; everything else runs on this warm lane.
        pooled: List[_Job] = []
        if self.server.pool is not None:
            pooled = [j for j in group if j.request["op"] == "check"]
            if sum(len(j.request["paths"]) for j in pooled) < 2:
                pooled = []
        if pooled:
            # budgets do not cross the fork boundary, so the deadline is
            # enforced only before dispatch: jobs already expired while
            # queued are answered without any pool work.
            live: List[_Job] = []
            for job in pooled:
                if job.budget is not None:
                    try:
                        job.budget.check()
                    except CancelledError as exc:
                        job.response = self._cancelled_response(job.request, exc)
                        job.response.setdefault("lane", self.index)
                        job.done.set()
                        continue
                live.append(job)
            if live:
                self._run_pooled_checks(live)
        #: group-level memo — identical in-flight sources check once
        text_memo: Dict[str, Tuple[bool, str, Dict[str, str]]] = {}
        for job in group:
            if job in pooled:
                continue
            self._begin_job(job)
            try:
                self._execute(job, text_memo)
            except CancelledError as exc:
                # belt-and-braces: _execute turns cancellations into
                # responses itself; a late tick (e.g. inside the stats
                # delta) must still leave the lane alive.
                job.response = self._cancelled_response(job.request, exc)
            except Exception as exc:  # the lane must survive anything
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
            finally:
                self.current_job = None
            job.response.setdefault("lane", self.index)
            job.done.set()

    def _run_pooled_checks(self, jobs: List[_Job]) -> None:
        merged: List[str] = []
        slices: List[Tuple[_Job, int, int]] = []
        for job in jobs:
            paths = job.request["paths"]
            slices.append((job, len(merged), len(merged) + len(paths)))
            merged.extend(paths)
        try:
            # one pool, many lanes: dispatches are serialized — the
            # fork pool's map/watchdog machinery is not reentrant
            with self.server._pool_lock:
                report = self.server.pool.check_many(merged)
        except Exception as exc:
            for job, _, _ in slices:
                job.response = error_response(
                    job.request, "internal-error", f"{type(exc).__name__}: {exc}"
                )
                job.response.setdefault("lane", self.index)
                job.done.set()
            return
        stats = report.stats.as_dict()
        for job, start, end in slices:
            verdicts = report.verdicts[start:end]
            job.response = self.server._respond(
                job.request,
                ok=all(v.ok for v in verdicts),
                verdicts=[
                    {
                        "path": v.path,
                        "ok": v.ok,
                        "error": v.error,
                        "types": v.types,
                        "from_cache": v.from_cache,
                    }
                    for v in verdicts
                ],
                stats=stats,
                batched_requests=len(jobs),
                pooled=True,
            )
            job.response.setdefault("lane", self.index)
            job.done.set()

    def _execute(self, job: _Job, text_memo) -> None:
        request = job.request
        op = request["op"]
        session = job.session
        budget = job.budget
        if budget is not None:
            try:
                # expired while queued: answer without touching the engine
                budget.check()
            except CancelledError as exc:
                job.response = self._cancelled_response(request, exc)
                return
        baseline = self.logic.stats.copy()
        try:
            with self.logic.budgeted(budget):
                result = self._execute_op(op, request, session, text_memo)
        except CancelledError as exc:
            # mid-proof abort: the budget raise unwound through
            # exception-safe paths only (push/pop brackets, cache
            # writes that happen after success), so the lane stays
            # warm; report retryably and keep serving.
            response = self._cancelled_response(request, exc)
            response["stats"] = self.logic.stats.delta_from(baseline).as_dict()
            job.response = response
            return
        if op in ("check", "check_text", "eval"):
            result["stats"] = self.logic.stats.delta_from(baseline).as_dict()
        job.response = self.server._respond(request, **result)

    def _execute_op(
        self, op: str, request: Dict[str, Any], session: ServerSession, text_memo
    ) -> Dict[str, Any]:
        if op == "check":
            return self._check_paths(request["paths"])
        if op == "check_text":
            memo_key = request["text"]
            precomputed = text_memo.get(memo_key)
            result = session.check_text(
                request["name"], request["text"], precomputed
            )
            if precomputed is not None:
                result["deduplicated"] = True
            elif not result["cached"]:
                state = session._modules[request["name"]]
                text_memo[memo_key] = (state.ok, state.error, state.types)
            return result
        if op == "eval":
            return session.eval(request["expr"])
        if op == "stats":
            return self.server._stats(session, self)
        if op == "reset":
            return self.server._reset(self)
        if op == "shutdown":
            self.server._shutdown_requested.set()
            return {"ok": True, "stopping": True}
        # unreachable: validate_request gates ops
        return error_response(request, "bad-request", f"unknown op {op!r}")

    def _check_paths(self, paths: List[str]) -> Dict[str, Any]:
        report = check_many(paths, jobs=1, logic=self.logic)
        return {
            "ok": report.ok,
            "verdicts": [
                {
                    "path": v.path,
                    "ok": v.ok,
                    "error": v.error,
                    "types": v.types,
                    "from_cache": v.from_cache,
                }
                for v in report.verdicts
            ],
            "pooled": False,
        }

    def describe(self, uptime: float) -> Dict[str, Any]:
        """This lane's row in the ``stats`` response."""
        with self.server._robust_lock:
            robustness = dict(self.robustness)
        return {
            "index": self.index,
            "engine_alive": self.alive,
            "queue_depth": self.queue.qsize(),
            "connections": self.connections,
            "requests_total": self.requests_total,
            "groups_total": self.groups_total,
            "utilization": round(self.busy_seconds / uptime, 4) if uptime > 0 else 0.0,
            "epoch": self.logic.epoch,
            "robustness": robustness,
        }


class CheckingServer:
    """A long-running checking service over N warm engine lanes.

    Lifecycle: :meth:`start` binds the socket and spins up the lane
    and accept threads (returns the bound address);
    :meth:`serve_forever` additionally blocks until a ``shutdown``
    request or :meth:`stop`.  Safe to run in-process for tests — every
    thread is a daemon thread and :meth:`stop` is idempotent.
    """

    def __init__(self, config: ServerConfig, logic: Optional[Logic] = None) -> None:
        self.config = config
        #: lane 0's engine is the caller's (default: the process-wide
        #: shared one, so pool workers fork with every cache the daemon
        #: has built up); extra lanes get configuration-equal replicas.
        base = logic if logic is not None else Checker().logic
        lane_count = max(1, config.lanes)
        self._robust_lock = threading.Lock()
        self._lanes: List[_Lane] = []
        self._threads: List[threading.Thread] = []
        for index in range(lane_count):
            engine = base if index == 0 else base.replica()
            self._lanes.append(_Lane(self, index, engine))
        self.pool: Optional[WorkerPool] = (
            WorkerPool(config.jobs, config.cache_dir) if config.jobs > 1 else None
        )
        self._pool_lock = threading.Lock()
        #: the server epoch every lane converges to; resumed from the
        #: cache directory's meta.json so it is monotone across daemon
        #: restarts over one cache dir
        self._epoch = base.epoch
        self._persist = self._lanes[0].persist
        if self._persist is not None:
            self._epoch = max(self._epoch, self._persist.epoch)
        self._epoch_lock = threading.Lock()
        for lane in self._lanes:
            lane.logic.epoch = self._epoch
        self._sessions: Dict[str, ServerSession] = {}
        self._sessions_lock = threading.Lock()
        self._route_lock = threading.Lock()
        self._conn_threads: set = set()
        self._streams: List[MessageStream] = []
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._shutdown_requested = threading.Event()
        self._started = False
        self._session_counter = 0
        self._started_at = 0.0
        #: server-level robustness counters (everything else is per lane)
        self._server_robustness: Dict[str, int] = {"pings": 0}
        #: jobs whose connection thread is blocked on ``done`` — stop()
        #: fails and wakes every one of them so no wait outlives the server
        self._inflight: Set[_Job] = set()
        self._inflight_lock = threading.Lock()
        self.address: Optional[Tuple[str, Any]] = None

    # ------------------------------------------------------------------
    # single-lane compatibility surface (lane 0 is "the" engine)
    # ------------------------------------------------------------------
    @property
    def logic(self) -> Logic:
        return self._lanes[0].logic

    @property
    def batcher(self) -> GoalBatcher:
        return self._lanes[0].batcher

    @property
    def lanes(self) -> List[_Lane]:
        return self._lanes

    @property
    def requests_total(self) -> int:
        return sum(lane.requests_total for lane in self._lanes)

    @property
    def groups_total(self) -> int:
        return sum(lane.groups_total for lane in self._lanes)

    @property
    def robustness(self) -> Dict[str, int]:
        """Merged robustness counters across lanes (+ server-level)."""
        with self._robust_lock:
            merged = dict(self._server_robustness)
            for lane in self._lanes:
                for key, value in lane.robustness.items():
                    merged[key] = merged.get(key, 0) + value
        return merged

    def _count(self, key: str, amount: int = 1) -> None:
        with self._robust_lock:
            self._server_robustness[key] = (
                self._server_robustness.get(key, 0) + amount
            )

    @staticmethod
    def lane_index_for(affinity: str, lanes: int) -> int:
        """The lane an ``affinity`` key routes to — a *stable* hash.

        sha256 rather than Python's ``hash()``: the mapping must agree
        across processes and interpreter runs (``PYTHONHASHSEED``), so
        a client can rely on one affinity key always warming one lane.
        """
        digest = hashlib.sha256(affinity.encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % max(1, lanes)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind, start the lane/accept threads; returns the address.

        The address is ``("unix", path)`` or ``("tcp", (host, port))``
        with the actually-bound port (useful with ``port=0``).
        """
        if self._started:
            return self.address
        self._started = True
        self._started_at = time.monotonic()
        if self.config.socket_path is not None:
            path = self.config.socket_path
            if os.path.exists(path):
                os.unlink(path)  # a stale socket from a dead daemon
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.address = ("unix", path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.address = ("tcp", listener.getsockname())
        listener.listen(64)
        listener.settimeout(0.2)  # so the accept loop can observe stop
        self._listener = listener
        for lane in self._lanes:
            lane.spawn()
        for target, name in (
            (self._accept_loop, "repro-server-accept"),
            (self._shutdown_watcher, "repro-server-shutdown"),
            (self._watchdog_loop, "repro-server-watchdog"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def serve_forever(self) -> None:
        self.start()
        self._stop.wait()

    def stop(self) -> None:
        """Shut everything down (idempotent)."""
        if self._stop.is_set():
            return
        self._stop.set()
        # wake the shutdown watcher (it blocks on this event forever);
        # with _stop already set it exits instead of re-entering stop().
        # Without the wake, every stop() paid the full join timeout
        # below waiting on a thread that could never observe it.
        self._shutdown_requested.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for stream in list(self._streams):
            stream.close()
        self._fail_queued_jobs("server is stopping")
        # wake every blocked connection wait *now*: connection threads
        # block on a plain Event.wait(), so without this they would
        # only notice the shutdown when their job completed.
        with self._inflight_lock:
            inflight = list(self._inflight)
        for job in inflight:
            if not job.done.is_set():
                if job.budget is not None:
                    job.budget.cancel("server is stopping")
                job.response = error_response(
                    job.request, "internal-error", "server is stopping"
                )
                job.done.set()
        current = threading.current_thread()
        for thread in list(self._threads) + list(self._conn_threads):
            if thread is not current:
                thread.join(timeout=5.0)
        if self.pool is not None:
            with self._pool_lock:
                self.pool.close()
        for lane in self._lanes:
            lane.logic.dispatch = lane._original_dispatch
            if lane.persist is not None:
                lane.logic.detach_persistent_cache()
                lane.persist.flush()
                lane.persist = None
        self._persist = None
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def _shutdown_watcher(self) -> None:
        self._shutdown_requested.wait()
        if not self._stop.is_set():
            time.sleep(0.05)  # let the shutdown response reach its client
            self.stop()

    # ------------------------------------------------------------------
    # watchdog: hung-job cancellation + lane supervision, all lanes
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        interval = max(0.01, self.config.watchdog_interval)
        hang = self.config.hang_seconds
        while not self._stop.wait(interval):
            for lane in self._lanes:
                job = lane.current_job
                if job is not None and hang > 0:
                    started = job.started_at
                    budget = job.budget
                    if (
                        started
                        and budget is not None
                        and not budget.cancelled
                        and time.monotonic() - started > hang
                    ):
                        # cooperative abort: the lane notices at its next
                        # budget tick and answers with a retryable error.
                        budget.cancel(
                            "watchdog: job exceeded hang threshold "
                            f"({hang:g}s); aborted to keep the lane live"
                        )
                        lane.count("watchdog_cancels")
                if (
                    lane.thread is not None
                    and not lane.thread.is_alive()
                    and not self._stop.is_set()
                ):
                    self._restart_lane(lane)

    def _restart_lane(self, lane: _Lane) -> None:
        """A lane thread died: fail its job, respawn over the warm engine.

        The engine's memo tables only ever hold complete entries
        (verdicts are cached after the kernel returns), so the warm
        caches are safe to keep; the dispatch plumbing is rebuilt in
        case the old lane died holding the goal batcher's lock.
        """
        lane.count("lane_restarts")
        job = lane.current_job
        lane.current_job = None
        if job is not None and not job.done.is_set():
            job.response = error_response(
                job.request,
                "internal-error",
                f"engine lane {lane.index} died "
                f"({lane.failure or 'unknown'}); lane restarted",
            )
            job.done.set()
        lane.failure = None
        lane.batcher = GoalBatcher(window=self.config.batch_window)
        lane.logic.dispatch = BatchingTheoryDispatch(lane.logic, lane.batcher)
        lane.spawn()

    # ------------------------------------------------------------------
    # chaos hook
    # ------------------------------------------------------------------
    def poison_lane(self, index: int) -> None:
        """Kill lane ``index``'s thread via a poison job (chaos only).

        Threads cannot be SIGKILLed, so the poison job raises a
        ``BaseException`` subclass that escapes the lane's per-job
        exception handling — the closest honest analogue of a lane
        crash.  The watchdog detects the dead thread and respawns it;
        surviving lanes keep answering throughout.
        """
        job = _Job({"op": "ping"}, None, poison=True)
        self._lanes[index].queue.put(job, timeout=5.0)

    # ------------------------------------------------------------------
    # connection side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            self._conn_threads.add(thread)
            thread.start()

    def _job_budget(self, request: Dict[str, Any]) -> Optional[Budget]:
        """The request's budget: its deadline, or the default, or
        cancel-only (the watchdog needs a token even without a deadline)."""
        op = request["op"]
        if op not in DEADLINE_OPS:
            return None
        deadline_ms = request.get("deadline_ms", self.config.default_deadline_ms)
        return Budget(deadline_ms)

    def _ping_response(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._count("pings")
        lanes_alive = sum(1 for lane in self._lanes if lane.alive)
        return self._respond(
            request,
            ok=True,
            protocol=PROTOCOL_VERSION,
            uptime_seconds=round(time.monotonic() - self._started_at, 3),
            queue_depth=sum(lane.queue.qsize() for lane in self._lanes),
            engine_alive=lanes_alive == len(self._lanes),
            lanes=len(self._lanes),
            lanes_alive=lanes_alive,
        )

    def _route(self, request: Dict[str, Any]) -> _Lane:
        """Pick the connection's lane, once, at its first queued request.

        An ``affinity`` key pins the connection to a stable lane (one
        logical session always lands on the same warm module/engine
        caches, across reconnects); without one the least-loaded lane
        (fewest connections, then shortest queue) wins.
        """
        affinity = request.get("affinity")
        with self._route_lock:
            if isinstance(affinity, str):
                lane = self._lanes[self.lane_index_for(affinity, len(self._lanes))]
            else:
                lane = min(
                    self._lanes,
                    key=lambda l: (l.connections, l.queue.qsize(), l.index),
                )
            lane.connections += 1
        return lane

    def _make_session(self, lane: _Lane) -> ServerSession:
        with self._sessions_lock:
            self._session_counter += 1
            session = ServerSession(
                f"s{self._session_counter}", lane.logic, lane_index=lane.index
            )
            self._sessions[session.id] = session
        return session

    def _handle_connection(self, conn: socket.socket) -> None:
        stream = MessageStream(conn)
        self._streams.append(stream)
        lane: Optional[_Lane] = None
        session: Optional[ServerSession] = None
        try:
            while not self._stop.is_set():
                try:
                    message = stream.receive()
                except ProtocolError as exc:
                    # framing is broken; report and drop the connection
                    try:
                        stream.send(error_response(None, "protocol-error", str(exc)))
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                try:
                    request = validate_request(message)
                except ProtocolError as exc:
                    stream.send(error_response(message, "bad-request", str(exc)))
                    continue
                if request["op"] == "ping":
                    # answered right here: the health probe must work
                    # even when every engine lane is wedged.
                    stream.send(self._ping_response(request))
                    continue
                if lane is None:
                    # routed once, at the first queued request; sticky
                    # for the connection's (= the session's) lifetime
                    lane = self._route(request)
                    session = self._make_session(lane)
                job = _Job(request, session, self._job_budget(request))
                with self._inflight_lock:
                    self._inflight.add(job)
                try:
                    if self._stop.is_set():
                        job.response = error_response(
                            request, "internal-error", "server is stopping"
                        )
                    else:
                        try:
                            lane.queue.put_nowait(job)
                        except queue.Full:
                            # load shedding: reject now, retryably,
                            # instead of queueing unboundedly
                            lane.count("shed_overloaded")
                            job.response = error_response(
                                request,
                                "overloaded",
                                f"lane {lane.index} job queue is full "
                                f"(max_queue_depth={self.config.max_queue_depth}); "
                                "retry with backoff",
                                retryable=True,
                            )
                            job.response.setdefault("lane", lane.index)
                        else:
                            # no polling: stop() fails + wakes in-flight
                            # jobs, so this wait cannot outlive the server
                            job.done.wait()
                finally:
                    with self._inflight_lock:
                        self._inflight.discard(job)
                stream.send(job.response)
                if request["op"] == "shutdown":
                    return
        except OSError:
            return  # peer vanished mid-conversation
        finally:
            stream.close()
            if stream in self._streams:
                self._streams.remove(stream)
            if session is not None:
                with self._sessions_lock:
                    self._sessions.pop(session.id, None)
            if lane is not None:
                with self._route_lock:
                    lane.connections -= 1
            self._conn_threads.discard(threading.current_thread())

    # ------------------------------------------------------------------
    # queue sweeping
    # ------------------------------------------------------------------
    def _fail_lane_queue(self, lane: _Lane, reason: str) -> None:
        """Answer every job still queued on ``lane``."""
        while True:
            try:
                job = lane.queue.get_nowait()
            except queue.Empty:
                return
            job.response = error_response(job.request, "internal-error", reason)
            job.done.set()

    def _fail_queued_jobs(self, reason: str) -> None:
        """Answer every still-queued job so no connection waits forever."""
        for lane in self._lanes:
            self._fail_lane_queue(lane, reason)

    # ------------------------------------------------------------------
    # ops that need the whole server (run on the serving lane's thread)
    # ------------------------------------------------------------------
    def _reset(self, lane: _Lane) -> Dict[str, Any]:
        """Bump the server epoch; converge this lane now, others lazily.

        The serving lane resets immediately, so the connection that
        asked observes cold state on its very next request.  Every
        other lane converges via :meth:`_Lane.sync_epoch` before its
        next job — which is exactly strong enough: any request
        enqueued after this response was sent runs post-reset,
        wherever it lands.  The epoch is also recorded in the shared
        cache's ``meta.json``, so a restarted daemon resumes the count.
        """
        with self._epoch_lock:
            self._epoch += 1
            target = self._epoch
        lane.logic.reset_caches(epoch=target)
        if lane.persist is not None:
            lane.persist.bump_epoch(target)
        with self._sessions_lock:
            live_sessions = list(self._sessions.values())
        for live in live_sessions:
            # stale sessions self-heal via guard_epoch on their own
            # lane; the serving lane's can be guarded right here
            if live.lane_index == lane.index:
                live.guard_epoch()
        if self.pool is not None:
            # resident workers hold pre-reset engine caches; tear
            # them down so the next pooled check re-forks cold
            # from the freshly-reset parent.
            with self._pool_lock:
                self.pool.close()
        return {"ok": True, "epoch": target}

    def _stats(self, session: ServerSession, lane: _Lane) -> Dict[str, Any]:
        uptime = time.monotonic() - self._started_at
        with self._sessions_lock:
            sessions = len(self._sessions)
        pool_info: Dict[str, Any] = {"jobs": self.config.jobs, "resident": False}
        if self.pool is not None:
            pool_info = {
                "jobs": self.pool.jobs,
                "resident": self.pool.alive,
                "batches": self.pool.batches,
            }
        robustness = self.robustness
        robustness["cache_shards_skipped"] = sum(
            l.persist.shards_skipped for l in self._lanes if l.persist is not None
        )
        engine = EngineStats()
        for peer in self._lanes:
            # other lanes keep mutating their counters; snapshot with
            # retries rather than pausing the fleet for a stats call
            engine.merge(
                peer.logic.stats if peer is lane
                else _snapshot_stats(peer.logic.stats)
            )
        batcher_totals = {"submissions": 0, "dispatches": 0, "merged": 0}
        for peer in self._lanes:
            batcher_totals["submissions"] += peer.batcher.submissions
            batcher_totals["dispatches"] += peer.batcher.dispatches
            batcher_totals["merged"] += peer.batcher.merged
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "epoch": self._epoch,
            "engine": engine.as_dict(),
            "server": {
                "uptime_seconds": round(uptime, 3),
                "requests_total": self.requests_total,
                "groups_total": self.groups_total,
                "sessions": sessions,
                "pool": pool_info,
                "goal_batcher": batcher_totals,
                "queue": {
                    "depth": sum(l.queue.qsize() for l in self._lanes),
                    "max_depth": self.config.max_queue_depth,
                },
                "robustness": robustness,
                "lanes": [l.describe(uptime) for l in self._lanes],
            },
            "session": session.describe(),
        }

    @staticmethod
    def _respond(request: Dict[str, Any], **fields) -> Dict[str, Any]:
        response: Dict[str, Any] = {"op": request["op"]}
        if "id" in request:
            response["id"] = request["id"]
        response.update(fields)
        response.setdefault("ok", True)
        return response
