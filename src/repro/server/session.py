"""Per-connection sessions: isolated state over one shared engine.

Everything a connection accumulates lives here, and *only* here:

* a **module store** for ``check_text`` — source digests mapped to
  verdicts, so re-submitting an unchanged module answers instantly and
  an edited module re-checks incrementally on the warm engine (the
  session-scoped incremental re-checking the daemon exists for);
* a **REPL scope** for ``eval`` — definitions accumulate exactly like
  an interactive :class:`repro.repl.Session`, so a connection can build
  up context across requests;
* a :class:`~repro.logic.prove.SessionLease` — the connection's
  epoch-guarded private theory handle.  Session-scoped assumptions
  layered through it (``lease.scoped(...)`` push/pop frames on a
  *derived clone*) are structurally unable to reach another connection
  or the engine's shared session map.  The serving path deliberately
  never injects session facts into checking — that is what keeps a
  daemon verdict bit-identical to one-shot ``repro check`` — so the
  lease's serving-path job is the epoch guard; the assumption-layering
  API is there for embedders and is pinned by
  ``tests/test_session_lease.py``.

The shared engine itself needs no per-session partitioning: its caches
are content-addressed (exact environment fingerprints + goals), so two
sessions checking different programs can never observe each other's
facts through it.  Everything else a connection accumulates lives in
this object and dies with the connection.

Epoch guard: every session remembers the engine epoch it last checked
under.  A ``reset`` (from *any* connection) bumps the epoch; stale
sessions then drop their cached module verdicts and rebuild their
lease before serving again, so a reset really does produce a cold
re-check rather than a replay from session-level state.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from ..checker.check import Checker
from ..checker.errors import CheckError
from ..interp.values import RacketError, UnsafeMemoryError
from ..logic.prove import Logic
from ..repl import Session as ReplSession
from ..sexp.reader import ReaderError
from ..syntax.parser import ParseError, parse_program
from ..tr.pretty import pretty_type

__all__ = ["ServerSession"]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class _ModuleState:
    """One checked module's last-known verdict inside a session."""

    __slots__ = ("digest", "ok", "error", "types")

    def __init__(self, digest: str, ok: bool, error: str, types: Dict[str, str]):
        self.digest = digest
        self.ok = ok
        self.error = error
        self.types = types


class ServerSession:
    """One connection's isolated view of the shared warm engine."""

    def __init__(self, session_id: str, logic: Logic, lane_index: int = 0) -> None:
        self.id = session_id
        self._logic = logic
        #: the engine lane this session is pinned to (sticky routing)
        self.lane_index = lane_index
        self._epoch = logic.epoch
        self._lease = logic.lease_session()
        self._modules: Dict[str, _ModuleState] = {}
        self._scope = ReplSession()
        #: counters surfaced by the ``stats`` op
        self.requests = 0
        self.cached_rechecks = 0

    # ------------------------------------------------------------------
    # epoch guard
    # ------------------------------------------------------------------
    def guard_epoch(self) -> bool:
        """Drop session caches if the engine was reset; True if stale."""
        if self._epoch == self._logic.epoch:
            return False
        self._epoch = self._logic.epoch
        self._modules.clear()
        self._lease.invalidate()
        return True

    # ------------------------------------------------------------------
    # requests (engine-thread only; sessions are not thread-safe)
    # ------------------------------------------------------------------
    def check_text(
        self,
        name: str,
        text: str,
        precomputed: Optional[tuple] = None,
    ) -> Dict[str, Any]:
        """Check a named module, incrementally per session.

        An unchanged module (same content digest, same engine epoch)
        answers from the session's module store without touching the
        engine at all; an edited module re-checks on the warm engine
        and the store is updated.  ``precomputed`` is the daemon's
        group-level dedup: a ``(ok, error, types)`` verdict another
        in-flight request just computed for byte-identical source —
        sound to adopt because verdicts are a function of source text
        alone (the engine caches are content-addressed).
        """
        self.requests += 1
        self.guard_epoch()
        digest = _digest(text)
        state = self._modules.get(name)
        if state is not None and state.digest == digest:
            self.cached_rechecks += 1
            return self._module_response(name, state, cached=True)
        if precomputed is not None:
            ok, error, types = precomputed
        else:
            ok, error, types = self._check_source(text)
        state = _ModuleState(digest, ok, error, dict(types))
        self._modules[name] = state
        return self._module_response(name, state, cached=False)

    def eval(self, expr: str) -> Dict[str, Any]:
        """Check + evaluate one input in the session's REPL scope."""
        self.requests += 1
        self.guard_epoch()
        try:
            values = self._scope.submit(expr)
        except (ReaderError, ParseError) as exc:
            return {"ok": False, "code": "parse-error", "error": str(exc)}
        except CheckError as exc:
            return {"ok": False, "code": "check-error", "error": str(exc)}
        except (RacketError, UnsafeMemoryError) as exc:
            return {"ok": False, "code": "runtime-error", "error": str(exc)}
        return {"ok": True, "values": values, "names": self._scope.names()}

    def describe(self) -> Dict[str, Any]:
        """Session facts for the ``stats`` response."""
        return {
            "id": self.id,
            "lane": self.lane_index,
            "requests": self.requests,
            "modules": len(self._modules),
            "cached_rechecks": self.cached_rechecks,
            "scope_names": self._scope.names(),
            "lease_valid": self._lease.valid,
        }

    # ------------------------------------------------------------------
    def _check_source(self, text: str):
        try:
            program = parse_program(text)
            types = Checker(logic=self._logic).check_program(program)
        except (ReaderError, ParseError, CheckError) as exc:
            return False, str(exc), {}
        return True, "", {n: pretty_type(t) for n, t in types.items()}

    def _module_response(
        self, name: str, state: _ModuleState, cached: bool
    ) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "ok": state.ok,
            "name": name,
            "cached": cached,
        }
        if state.ok:
            response["types"] = dict(state.types)
        else:
            response["code"] = "check-error"
            response["error"] = state.error
        return response
